//! Determinism guarantees: identical seeds reproduce every artifact of the
//! pipeline bit-for-bit; different seeds genuinely differ.

use ppdm::prelude::*;

#[test]
fn generation_perturbation_training_are_deterministic() {
    let make = || {
        let (train_d, test_d) = generate_train_test(3_000, 500, LabelFunction::F4, 11);
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 75.0, DEFAULT_CONFIDENCE)
            .expect("valid privacy");
        let perturbed = plan.perturb_dataset(&train_d, 12);
        let mut cfg = TrainerConfig { cells_override: Some(20), ..TrainerConfig::default() };
        cfg.reconstruction.max_iterations = 300;
        let tree = train(TrainingAlgorithm::ByClass, None, &perturbed, &plan, &cfg)
            .expect("training succeeds");
        (perturbed, evaluate(&tree, &test_d), tree)
    };
    let (p1, e1, t1) = make();
    let (p2, e2, t2) = make();
    assert_eq!(p1, p2);
    assert_eq!(t1, t2);
    assert_eq!(e1.accuracy, e2.accuracy);
    assert_eq!(e1.confusion, e2.confusion);
}

#[test]
fn different_seeds_differ() {
    let (a, _) = generate_train_test(500, 100, LabelFunction::F1, 1);
    let (b, _) = generate_train_test(500, 100, LabelFunction::F1, 2);
    assert_ne!(a, b);

    let plan = PerturbPlan::for_privacy(NoiseKind::Uniform, 50.0, DEFAULT_CONFIDENCE)
        .expect("valid privacy");
    assert_ne!(plan.perturb_dataset(&a, 3), plan.perturb_dataset(&a, 4));
}

#[test]
fn csv_roundtrip_preserves_perturbed_dataset() {
    // Cross-crate: a perturbed dataset survives CSV serialization exactly.
    let data = generate(200, LabelFunction::F6, 21);
    let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 100.0, DEFAULT_CONFIDENCE)
        .expect("valid privacy");
    let perturbed = plan.perturb_dataset(&data, 22);
    let mut buf = Vec::new();
    ppdm::datagen::csv::write_csv(&perturbed, &mut buf).expect("write succeeds");
    let back = ppdm::datagen::csv::read_csv(std::io::Cursor::new(buf)).expect("read succeeds");
    assert_eq!(perturbed, back);
}
