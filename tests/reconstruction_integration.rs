//! Reconstruction quality on the benchmark's own attribute distributions
//! (datagen x core integration).

use ppdm::prelude::*;
use ppdm_core::domain::Partition;
use ppdm_core::reconstruct::ReconstructionConfig;
use ppdm_core::stats::{total_variation, Histogram};

fn reconstruction_beats_naive(attr: Attribute, privacy: f64, tolerance_ratio: f64) {
    let data = generate(30_000, LabelFunction::F2, 77);
    let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, privacy, DEFAULT_CONFIDENCE)
        .expect("valid privacy");
    let perturbed = plan.perturb_dataset(&data, 78);

    let partition = Partition::new(attr.partition_domain(), 40).expect("valid partition");
    let truth = Histogram::from_values(partition, &data.column(attr));
    let naive = Histogram::from_values(partition, &perturbed.column(attr));
    let result = reconstruct(
        plan.model(attr),
        partition,
        &perturbed.column(attr),
        &ReconstructionConfig::bayes(),
    )
    .expect("reconstruction succeeds");

    let tv_naive = total_variation(&naive, &truth).expect("same partition");
    let tv_recon = total_variation(&result.histogram, &truth).expect("same partition");
    assert!(
        tv_recon < tv_naive * tolerance_ratio,
        "{attr} at {privacy}%: reconstructed tv {tv_recon} vs naive {tv_naive}"
    );
}

#[test]
fn salary_distribution_recovered() {
    reconstruction_beats_naive(Attribute::Salary, 100.0, 0.6);
}

#[test]
fn commission_spike_recovered() {
    // Commission is zero for ~58% of the population (salary >= 75k) plus a
    // band [10k, 75k]: a point mass is the hardest deconvolution target,
    // and the TV ratio vs naive fluctuates widely (roughly 0.5-0.95 across
    // data/noise seeds under the default stopping rule). This test's seeds
    // are fixed, so the ratio is deterministic — observed ~0.90 — and the
    // tolerance sits just above it to catch regressions without encoding
    // a lucky draw; `zero_commission_mass_is_visible_after_reconstruction`
    // below guards the spike recovery itself.
    reconstruction_beats_naive(Attribute::Commission, 100.0, 0.92);
}

#[test]
fn age_distribution_recovered_at_high_privacy() {
    reconstruction_beats_naive(Attribute::Age, 200.0, 0.8);
}

#[test]
fn zero_commission_mass_is_visible_after_reconstruction() {
    let data = generate(30_000, LabelFunction::F1, 79);
    let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 100.0, DEFAULT_CONFIDENCE)
        .expect("valid privacy");
    let perturbed = plan.perturb_dataset(&data, 80);
    let attr = Attribute::Commission;
    let partition = Partition::new(attr.domain(), 25).expect("valid partition");

    let result = reconstruct(
        plan.model(attr),
        partition,
        &perturbed.column(attr),
        &ReconstructionConfig::bayes(),
    )
    .expect("reconstruction succeeds");

    // The first cell [0, 3k) should hold clearly more reconstructed mass
    // than the average cell: the zero spike survives deconvolution.
    let first = result.histogram.mass(0);
    let mean_mass = result.histogram.total() / partition.len() as f64;
    assert!(
        first > 2.0 * mean_mass,
        "zero-commission spike lost: first cell {first}, mean {mean_mass}"
    );
}

#[test]
fn em_and_bayes_agree_on_benchmark_data() {
    let data = generate(10_000, LabelFunction::F4, 81);
    let plan = PerturbPlan::for_privacy(NoiseKind::Uniform, 100.0, DEFAULT_CONFIDENCE)
        .expect("valid privacy");
    let perturbed = plan.perturb_dataset(&data, 82);
    let attr = Attribute::Loan;
    let partition = Partition::new(attr.domain(), 30).expect("valid partition");

    let bayes = reconstruct(
        plan.model(attr),
        partition,
        &perturbed.column(attr),
        &ReconstructionConfig::bayes(),
    )
    .expect("bayes succeeds");
    let em = reconstruct(
        plan.model(attr),
        partition,
        &perturbed.column(attr),
        &ReconstructionConfig::em(),
    )
    .expect("em succeeds");
    // With hard-edged uniform noise the midpoint and cell-average kernels
    // discretize the likelihood differently; the estimates agree on the
    // distribution's shape but not cell-for-cell.
    let tv = total_variation(&bayes.histogram, &em.histogram).expect("same partition");
    assert!(tv < 0.25, "bayes vs em tv {tv}");
}
