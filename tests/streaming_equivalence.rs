//! Property harness for the streaming subsystem: `SuffStats` merge
//! algebra, sharded-vs-monolithic solve equivalence, and warm-start
//! behavior.
//!
//! The load-bearing claims, each asserted *exactly* (no tolerances):
//!
//! * merging is associative and commutative, and totals add;
//! * ingesting batch-by-batch, across any shard layout, is
//!   indistinguishable from ingesting the concatenated sample;
//! * a cold solve over merged shard statistics is **bit-for-bit** equal
//!   to `ReconstructionEngine::reconstruct` on the concatenated sample
//!   (bucketed mode, both kernels) — sharding must be invisible;
//! * incompatible shards (different channel or partition) refuse to
//!   merge.
//!
//! Run with `PROPTEST_CASES=<n>` to rescale case counts (CI pins it).

use ppdm::prelude::*;
use ppdm_core::reconstruct::{JobInput, LikelihoodKernel, UpdateMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn noise_for(gaussian: bool, scale: f64) -> NoiseModel {
    if gaussian {
        NoiseModel::gaussian(scale).unwrap()
    } else {
        NoiseModel::uniform(scale).unwrap()
    }
}

/// A bimodal perturbed sample — structured enough that reconstruction
/// does real work.
fn sample(n: usize, seed: u64, noise: &NoiseModel) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 30.0 } else { 70.0 };
            center + rng.gen_range(-9.0..9.0)
        })
        .collect();
    noise.perturb_all(&xs, &mut rng)
}

/// Splits a sample into `pieces` contiguous batches (sizes drawn from the
/// seed), always covering the whole slice.
fn split(obs: &[f64], pieces: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cuts: Vec<usize> = (0..pieces - 1).map(|_| rng.gen_range(0..=obs.len())).collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for cut in cuts {
        out.push(obs[start..cut].to_vec());
        start = cut;
    }
    out.push(obs[start..].to_vec());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merge_is_associative_and_commutative(
        seed in 0u64..10_000,
        n in 1usize..400,
        cells in 4usize..30,
        gaussian in 0u32..2,
        scale in 2.0..30.0f64,
    ) {
        let noise = noise_for(gaussian == 1, scale);
        let obs = sample(n, seed, &noise);
        let thirds = split(&obs, 3, seed ^ 0xA5A5);
        let stats: Vec<SuffStats> = thirds
            .iter()
            .map(|b| SuffStats::from_values(&noise, part(cells), b).unwrap())
            .collect();
        let (a, b, c) = (&stats[0], &stats[1], &stats[2]);
        // Commutativity, exactly.
        prop_assert_eq!(a.merge(b).unwrap(), b.merge(a).unwrap());
        // Associativity, exactly.
        prop_assert_eq!(
            a.merge(b).unwrap().merge(c).unwrap(),
            a.merge(&b.merge(c).unwrap()).unwrap()
        );
        // Totals and counts add.
        let ab = a.merge(b).unwrap();
        prop_assert_eq!(ab.total(), a.total() + b.total());
        prop_assert_eq!(ab.count(), a.count() + b.count());
    }

    #[test]
    fn ingest_then_merge_equals_ingest_concatenated(
        seed in 0u64..10_000,
        n in 1usize..500,
        pieces in 1usize..7,
        cells in 4usize..30,
    ) {
        let noise = NoiseModel::gaussian(12.0).unwrap();
        let obs = sample(n, seed, &noise);
        let whole = SuffStats::from_values(&noise, part(cells), &obs).unwrap();
        // Piecewise ingestion into one sketch...
        let mut piecewise = SuffStats::new(&noise, part(cells)).unwrap();
        for batch in split(&obs, pieces, seed ^ 0x33) {
            piecewise.ingest(&batch).unwrap();
        }
        prop_assert_eq!(&piecewise, &whole);
        // ...and per-batch sketches merged in order.
        let mut merged = SuffStats::new(&noise, part(cells)).unwrap();
        for batch in split(&obs, pieces, seed ^ 0x34) {
            merged.merge_from(&SuffStats::from_values(&noise, part(cells), &batch).unwrap()).unwrap();
        }
        prop_assert_eq!(&merged, &whole);
    }

    #[test]
    fn sharded_solve_is_bit_identical_to_monolithic(
        seed in 0u64..10_000,
        n in 50usize..600,
        shards in 1usize..9,
        cells in 5usize..25,
        gaussian in 0u32..2,
        cell_average in 0u32..2,
    ) {
        let noise = noise_for(gaussian == 1, 14.0);
        let obs = sample(n, seed, &noise);
        let config = ReconstructionConfig {
            kernel: if cell_average == 1 { LikelihoodKernel::CellAverage } else { LikelihoodKernel::Midpoint },
            mode: UpdateMode::Bucketed,
            max_iterations: 500,
            ..ReconstructionConfig::default()
        };
        let engine = ReconstructionEngine::new();
        let monolithic = engine.reconstruct(&noise, part(cells), &obs, &config).unwrap();

        let mut acc = ShardedAccumulator::new(&noise, part(cells), shards).unwrap();
        acc.ingest_batches(&split(&obs, shards.max(2) * 2, seed ^ 0x77)).unwrap();
        let merged = acc.merged().unwrap();
        prop_assert_eq!(merged.count(), n as u64);
        let sharded = engine.reconstruct_stats(&noise, &merged, &config, None).unwrap();
        // The headline proof obligation: sharding is invisible, bit for bit.
        prop_assert_eq!(&sharded, &monolithic);

        // The same statistics as a `reconstruct_many` job: identical again.
        let jobs = vec![ReconstructionJob::borrowed_stats(&noise, &merged, config)];
        prop_assert!(matches!(jobs[0].input, JobInput::Stats(_)));
        let via_jobs = engine.reconstruct_many(&jobs).remove(0).unwrap();
        prop_assert_eq!(&via_jobs, &monolithic);
    }

    #[test]
    fn incremental_warm_solve_tracks_cold_solve(
        seed in 0u64..10_000,
        n in 2_000usize..6_000,
        // Streaming regime: the append is 0.25%-2% of the accumulated
        // history. (A batch comparable to the whole history moves the
        // optimum far enough that a warm start has no a-priori advantage.)
        append_frac in 50usize..400,
    ) {
        let noise = NoiseModel::gaussian(15.0).unwrap();
        let config = ReconstructionConfig::default();
        let engine = ReconstructionEngine::new();
        let base = sample(n, seed, &noise);
        let append = sample(n / append_frac, seed ^ 0x9, &noise);

        let mut inc = IncrementalReconstructor::with_engine(&noise, part(20), config, &engine).unwrap();
        inc.ingest(&base).unwrap();
        let first = inc.solve().unwrap();
        prop_assert!(first.converged);
        inc.ingest(&append).unwrap();
        let warm = inc.solve().unwrap();
        prop_assert!(warm.converged);

        // Cold solve over the identical statistics for comparison.
        let cold = engine.reconstruct_stats(&noise, inc.stats(), &config, None).unwrap();
        prop_assert!(
            warm.iterations <= cold.iterations,
            "warm start must not be slower: warm {} vs cold {}", warm.iterations, cold.iterations
        );
        // Deconvolution is ill-conditioned: two starting points stopping at
        // the same log-likelihood flatness land on *nearby* estimates, not
        // bit-identical ones. The bound here is the stopping tolerance's
        // practical TV radius at these sample sizes (the bit-for-bit claim
        // belongs to the cold sharded path above).
        let tv = ppdm_core::stats::total_variation(&warm.histogram, &cold.histogram).unwrap();
        prop_assert!(tv < 0.06, "warm and cold optima must agree in distribution, tv {}", tv);
    }
}

#[test]
fn mismatched_shards_refuse_to_merge() {
    let gaussian = NoiseModel::gaussian(10.0).unwrap();
    let wider = NoiseModel::gaussian(11.0).unwrap();
    let uniform = NoiseModel::uniform(10.0).unwrap();
    let base = SuffStats::from_values(&gaussian, part(10), &[5.0, 50.0]).unwrap();
    for other in [
        SuffStats::new(&wider, part(10)).unwrap(), // same family, different parameter
        SuffStats::new(&uniform, part(10)).unwrap(), // different family
        SuffStats::new(&gaussian, part(12)).unwrap(), // different cell count
        SuffStats::new(
            &gaussian,
            Partition::new(Domain::new(0.0, 90.0).unwrap(), 10).unwrap(), // different domain
        )
        .unwrap(),
    ] {
        let err = base.merge(&other).unwrap_err();
        assert!(matches!(err, Error::ShardMismatch(_)), "expected ShardMismatch, got {err:?}");
        // merge_from must leave the receiver untouched on failure.
        let mut copy = base.clone();
        assert!(copy.merge_from(&other).is_err());
        assert_eq!(copy, base);
    }
}

#[test]
fn solving_stats_with_the_wrong_channel_fails_fast() {
    let gaussian = NoiseModel::gaussian(10.0).unwrap();
    let uniform = NoiseModel::uniform(10.0).unwrap();
    let stats = SuffStats::from_values(&gaussian, part(10), &sample(100, 1, &gaussian)).unwrap();
    let engine = ReconstructionEngine::new();
    let err = engine
        .reconstruct_stats(&uniform, &stats, &ReconstructionConfig::default(), None)
        .unwrap_err();
    assert!(matches!(err, Error::ShardMismatch(_)), "got {err:?}");
}

#[test]
fn empty_stats_solve_is_no_observations() {
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let stats = SuffStats::new(&noise, part(10)).unwrap();
    let engine = ReconstructionEngine::new();
    assert_eq!(
        engine
            .reconstruct_stats(&noise, &stats, &ReconstructionConfig::default(), None)
            .unwrap_err(),
        Error::NoObservations
    );
}

#[test]
fn identity_channel_stats_solve_is_the_empirical_histogram() {
    let stats = SuffStats::from_values(&NoiseModel::None, part(5), &[10.0, 15.0, 95.0]).unwrap();
    let engine = ReconstructionEngine::new();
    let r = engine
        .reconstruct_stats(&NoiseModel::None, &stats, &ReconstructionConfig::default(), None)
        .unwrap();
    assert_eq!(r.iterations, 0);
    assert!(r.converged);
    assert_eq!(r.histogram.masses(), &[2.0, 0.0, 0.0, 0.0, 1.0]);
}
