//! Golden-fixture regression: reconstruction outputs for fixed seeds must
//! reproduce the committed `tests/fixtures/*.json` files **bit for bit**.
//!
//! A failure here means a PR changed reconstruction numerics — kernel
//! evaluation, iterate arithmetic, stopping behavior, RNG streams, or the
//! streaming/sharded path. If the change is intentional, regenerate with
//! `cargo run --bin regen_fixtures` and commit the diff (reviewably);
//! if it is not, the diff in this assertion is the bug report. See
//! `tests/README.md`.

#[path = "support/fixtures.rs"]
mod fixtures;

use fixtures::{
    discrete_scenarios, federate_scenarios, fixture_path, render, render_discrete, render_federate,
    scenarios,
};

fn assert_fixture_reproduces(name: &str, actual: String) {
    let path = fixture_path(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run `cargo run --bin regen_fixtures` and commit it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "fixture {name} drifted; if intentional, `cargo run --bin regen_fixtures` and commit"
    );
}

#[test]
fn fixtures_reproduce_bit_for_bit() {
    let mut checked = 0;
    for scenario in scenarios() {
        assert_fixture_reproduces(scenario.name, render(&scenario));
        checked += 1;
    }
    assert!(checked >= 6, "expected the full fixture set, checked {checked}");
}

#[test]
fn discrete_fixtures_reproduce_bit_for_bit() {
    let mut checked = 0;
    for scenario in discrete_scenarios() {
        assert_fixture_reproduces(scenario.name(), render_discrete(&scenario));
        checked += 1;
    }
    assert!(checked >= 2, "expected both discrete fixtures, checked {checked}");
}

#[test]
fn federate_fixtures_reproduce_bit_for_bit() {
    // These pin the federation *wire bytes* (plain and masked, per
    // party, as hex) on top of the merged counts and the solve — a
    // wire-format or mask-derivation change is a fixture diff here.
    let mut checked = 0;
    for scenario in federate_scenarios() {
        assert_fixture_reproduces(scenario.name(), render_federate(&scenario));
        checked += 1;
    }
    assert!(checked >= 2, "expected both federate fixtures, checked {checked}");
}

#[test]
fn monolithic_and_streaming_twins_agree() {
    // The sharded twins pin the same numbers as their monolithic
    // counterparts (same seed/kernel/channel): sharding must be invisible
    // in the committed artifacts too, not just in the property tests.
    let all = scenarios();
    let masses = |name: &str| -> String {
        let s = all.iter().find(|s| s.name == name).expect("scenario exists");
        let json = render(s);
        json.split("\"masses\":").nth(1).expect("masses field").to_string()
    };
    assert_eq!(masses("bayes_gaussian"), masses("streaming_bayes_gaussian"));
    assert_eq!(masses("em_uniform"), masses("streaming_em_uniform"));
}
