//! End-to-end test of the association-rule extension: planted patterns
//! survive randomization + channel-inversion mining.

use std::collections::HashSet;

use ppdm::assoc::apriori::{frequent_itemsets, mine_with, AprioriConfig};
use ppdm::assoc::{
    estimated_support, estimated_support_oracle, generate_baskets, BasketConfig, ItemRandomizer,
};

#[test]
fn planted_patterns_survive_randomized_mining() {
    let db = generate_baskets(&BasketConfig::retail_demo(), 30_000, 1);
    let config = AprioriConfig { min_support: 0.06, max_len: 3 };
    let randomizer = ItemRandomizer::new(0.8, 0.05).expect("valid channel");
    let randomized = randomizer.perturb_set(&db, 2);

    let oracle = estimated_support_oracle(&randomized, &randomizer);
    let mined: HashSet<Vec<u32>> =
        mine_with(&randomized, &config, oracle).into_iter().map(|f| f.items).collect();

    assert!(mined.contains(&vec![1, 2]), "pattern {{1,2}} missed");
    assert!(mined.contains(&vec![5, 6, 7]), "pattern {{5,6,7}} missed");
}

#[test]
fn estimated_supports_match_truth_within_sampling_error() {
    let db = generate_baskets(&BasketConfig::retail_demo(), 30_000, 3);
    let randomizer = ItemRandomizer::new(0.7, 0.05).expect("valid channel");
    let randomized = randomizer.perturb_set(&db, 4);
    for itemset in [vec![1u32], vec![1, 2], vec![5, 6, 7]] {
        let truth = db.support(&itemset);
        let est = estimated_support(&randomized, &itemset, &randomizer).expect("estimable");
        assert!((est - truth).abs() < 0.02, "{itemset:?}: true {truth}, estimated {est}");
    }
}

#[test]
fn mining_randomized_without_inversion_loses_patterns() {
    // The control: raw supports in the randomized database fall below the
    // threshold, so naive mining misses the triple pattern.
    let db = generate_baskets(&BasketConfig::retail_demo(), 30_000, 5);
    let config = AprioriConfig { min_support: 0.06, max_len: 3 };
    let randomizer = ItemRandomizer::new(0.6, 0.05).expect("valid channel");
    let randomized = randomizer.perturb_set(&db, 6);

    let naive: HashSet<Vec<u32>> =
        frequent_itemsets(&randomized, &config).into_iter().map(|f| f.items).collect();
    assert!(
        !naive.contains(&vec![5, 6, 7]),
        "triple pattern should be invisible without channel inversion"
    );

    let oracle = estimated_support_oracle(&randomized, &randomizer);
    let inverted: HashSet<Vec<u32>> =
        mine_with(&randomized, &config, oracle).into_iter().map(|f| f.items).collect();
    assert!(inverted.contains(&vec![5, 6, 7]), "inversion should recover it");
}
