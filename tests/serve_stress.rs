//! Stress suite for the serving layer: concurrent ingest equivalence,
//! snapshot publication under reader/writer races, and backpressure
//! behavior.
//!
//! The load-bearing claims:
//!
//! * K concurrent producers feeding N shard workers, then a merged cold
//!   solve, is **bit-for-bit** equal to a monolithic solve over the same
//!   records — concurrency must be invisible in the result;
//! * snapshot epochs observed by racing readers are strictly monotonic,
//!   and no reader ever sees a torn posterior (every snapshot is
//!   internally consistent: mass total matches its record stamp);
//! * a full mailbox refuses admission losslessly: records are either
//!   fully in (counted, merged) or fully out (rejected, recounted by
//!   the caller) — never partially ingested.
//!
//! Run with `PROPTEST_CASES=<n>` to rescale the property cases (CI pins
//! it); the thread-stress tests are fixed-size.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppdm::prelude::*;
use ppdm_core::serve::SnapshotCell;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn noise() -> Arc<dyn NoiseDensity> {
    Arc::new(NoiseModel::gaussian(12.0).unwrap())
}

/// A bimodal perturbed sample — structured enough that reconstruction
/// does real work.
fn sample(n: usize, seed: u64) -> Vec<f64> {
    let channel = NoiseModel::gaussian(12.0).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 30.0 } else { 70.0 };
            center + rng.gen_range(-9.0..9.0)
        })
        .collect();
    channel.perturb_all(&xs, &mut rng)
}

fn serve_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        mailbox_capacity: 8,
        batch_capacity: 256,
        max_pooled: 64,
        resolve_interval: Duration::from_millis(5),
        ..ServeConfig::default()
    }
}

/// Drives `producers` threads through one service, each ingesting its
/// disjoint slice of `observed` in `batch`-sized chunks (retrying on
/// backpressure), and returns the shutdown report.
fn concurrent_ingest(
    observed: &[f64],
    producers: usize,
    shards: usize,
    batch: usize,
) -> ppdm_core::serve::ServeReport {
    let service = IngestService::spawn(noise(), part(24), serve_config(shards)).unwrap();
    std::thread::scope(|s| {
        let slice_len = observed.len().div_ceil(producers);
        for slice in observed.chunks(slice_len) {
            let mut handle = service.handle();
            s.spawn(move || {
                for chunk in slice.chunks(batch) {
                    loop {
                        match handle.try_ingest(chunk) {
                            Ok(_) => break,
                            Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected ingest error: {e}"),
                        }
                    }
                }
            });
        }
    });
    service.shutdown().unwrap()
}

#[test]
fn concurrent_sharded_ingest_solves_bit_identically_to_monolithic() {
    let observed = sample(20_000, 1);
    let engine = ReconstructionEngine::new();
    let cfg = ReconstructionConfig::default();
    let monolithic = engine
        .reconstruct(&NoiseModel::gaussian(12.0).unwrap(), part(24), &observed, &cfg)
        .unwrap();
    for (producers, shards) in [(1usize, 1usize), (2, 3), (4, 2), (3, 4)] {
        let report = concurrent_ingest(&observed, producers, shards, 190);
        assert_eq!(report.merged.count(), observed.len() as u64, "{producers}x{shards}");
        // The cold solve of the concurrently-built merge must be
        // bit-for-bit the monolithic solve: concurrency is invisible.
        let sharded = engine
            .reconstruct_stats(&NoiseModel::gaussian(12.0).unwrap(), &report.merged, &cfg, None)
            .unwrap();
        assert_eq!(
            sharded, monolithic,
            "{producers} producers x {shards} shards diverged from the monolithic solve"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(8),
    })]

    // Any (producers, shards, batch size, sample) combination merges to
    // exactly the monolithic sketch.
    #[test]
    fn any_concurrency_layout_merges_exactly(
        producers in 1usize..5,
        shards in 1usize..5,
        batch in 16usize..300,
        n in 500usize..4_000,
        seed in 0u64..1_000,
    ) {
        let observed = sample(n, seed);
        let report = concurrent_ingest(&observed, producers, shards, batch);
        let mut monolithic = report.merged.clone();
        monolithic.clear();
        monolithic.ingest(&observed).unwrap();
        prop_assert_eq!(report.merged.counts(), monolithic.counts());
        prop_assert_eq!(report.merged.count(), monolithic.count());
    }
}

#[test]
fn snapshot_epochs_are_strictly_monotonic_under_racing_readers() {
    let (cell, mut publisher) = SnapshotCell::new();
    let partition = part(8);
    let published = Arc::new(AtomicU64::new(0));
    const EPOCHS: u64 = 20_000;
    const READERS: usize = 4;
    std::thread::scope(|s| {
        for _ in 0..READERS {
            let mut reader = cell.reader();
            let cell = cell.clone();
            let published = published.clone();
            s.spawn(move || {
                let mut last_epoch = reader.epoch();
                while published.load(Ordering::Acquire) < EPOCHS {
                    if let Some(snap) = reader.refresh() {
                        // Strictly monotonic: refresh never goes back.
                        assert!(
                            snap.epoch >= last_epoch,
                            "epoch regressed: {} after {last_epoch}",
                            snap.epoch
                        );
                        last_epoch = snap.epoch;
                        // Torn-posterior check: every snapshot is
                        // internally consistent — the histogram's total
                        // mass equals its record stamp, and the epoch
                        // equals the mass of its first cell (a seal the
                        // publisher writes below).
                        assert_eq!(snap.histogram.total(), snap.records as f64);
                        assert_eq!(snap.histogram.masses()[0], snap.epoch as f64);
                        // Lag is observable and never negative (the
                        // publisher may race ahead between loads, so
                        // only the direction is stable).
                        assert!(cell.epoch() >= snap.epoch);
                    }
                    std::hint::spin_loop();
                }
            });
        }
        s.spawn(|| {
            for epoch in 1..=EPOCHS {
                // A snapshot whose internal invariants encode its epoch:
                // cell 0 carries the epoch, the rest pads the total to
                // `records`. Any torn read breaks an equality above.
                let mut masses = vec![0.0; partition.len()];
                masses[0] = epoch as f64;
                masses[1] = (2 * epoch) as f64;
                let records = epoch + 2 * epoch;
                let hist = Histogram::from_mass(partition, masses).unwrap();
                let stamped = publisher.publish(records, hist, 1, true, false);
                assert_eq!(stamped, epoch, "publisher epochs are sequential");
                published.store(epoch, Ordering::Release);
            }
        });
    });
    assert_eq!(cell.epoch(), EPOCHS);
    assert_eq!(cell.latest().unwrap().epoch, EPOCHS);
}

#[test]
fn backpressure_floods_lose_nothing() {
    // Tiny mailboxes and a slow resolver: plenty of refusals, and at the
    // end every admitted record — and only those — is in the merge.
    let config = ServeConfig {
        shards: 2,
        mailbox_capacity: 1,
        batch_capacity: 64,
        max_pooled: 16,
        resolve_interval: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let service = IngestService::spawn(noise(), part(10), config).unwrap();
    let admitted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for p in 0..4u64 {
            let mut handle = service.handle();
            let admitted = admitted.clone();
            let rejected = rejected.clone();
            s.spawn(move || {
                let batch = sample(50, 100 + p);
                for _ in 0..500 {
                    match handle.try_ingest(&batch) {
                        Ok(_) => {
                            admitted.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        }
                        Err(Error::Backpressure { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });
    let report = service.shutdown().unwrap();
    assert!(rejected.load(Ordering::Relaxed) > 0, "1-slot mailboxes must refuse under flood");
    assert_eq!(
        report.merged.count(),
        admitted.load(Ordering::Relaxed),
        "every admitted record is merged; every refusal left no residue"
    );
    assert_eq!(report.stats.rejected_batches, rejected.load(Ordering::Relaxed));
}

#[test]
fn staleness_tracks_service_age_until_the_first_publish() {
    // A service with a fast resolver but no ingest never publishes
    // (empty drains are skipped), yet every resolver cycle stamps its
    // completion time. The staleness gauge must not mistake those empty
    // cycles for freshness: before epoch 1 it reports time since start.
    let service = IngestService::spawn(noise(), part(10), serve_config(1)).unwrap();
    std::thread::sleep(Duration::from_millis(80));
    let stats = service.stats();
    assert_eq!(stats.epoch, 0, "no ingest, so nothing to publish");
    assert!(
        stats.staleness >= Duration::from_millis(60),
        "pre-publish staleness must track service age, got {:?}",
        stats.staleness
    );
    assert_eq!(stats.solve_duration_last, Duration::ZERO, "no solve has run yet");
    assert_eq!(stats.solve_duration_max, Duration::ZERO, "no solve has run yet");

    // After the first real publish the gauge switches to cycle age and
    // drops far below the service age.
    let mut handle = service.handle();
    loop {
        match handle.try_ingest(&sample(500, 42)) {
            Ok(_) => break,
            Err(Error::Backpressure { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected ingest error: {e}"),
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let published = loop {
        let stats = service.stats();
        if stats.epoch >= 1 {
            break stats;
        }
        assert!(std::time::Instant::now() < deadline, "service never published");
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        published.staleness < Duration::from_millis(80),
        "post-publish staleness should be cycle-scale, got {:?}",
        published.staleness
    );
    assert!(
        published.solve_duration_last > Duration::ZERO,
        "a published epoch implies a timed solve"
    );
    assert!(
        published.solve_duration_max >= published.solve_duration_last,
        "max solve duration bounds the last: {:?} < {:?}",
        published.solve_duration_max,
        published.solve_duration_last
    );
    service.shutdown().unwrap();
}

#[test]
fn warm_epochs_match_final_coverage_and_share_the_kernel() {
    let engine = Arc::new(ReconstructionEngine::new());
    let service =
        IngestService::spawn_with_engine(noise(), part(24), serve_config(2), engine.clone())
            .unwrap();
    let observed = sample(6_000, 7);
    let mut handle = service.handle();
    for chunk in observed.chunks(200) {
        loop {
            match handle.try_ingest(chunk) {
                Ok(_) => break,
                Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = service.shutdown().unwrap();
    let snap = report.final_snapshot.expect("snapshot published");
    assert_eq!(snap.records, observed.len() as u64, "final snapshot covers every record");
    assert!((snap.histogram.total() - observed.len() as f64).abs() < 1e-6);
    assert_eq!(engine.kernel_builds(), 1, "all warm epochs share one kernel");
    assert!(engine.cache_stats().hits >= report.stats.solves as usize - 1);
    assert!(
        report.stats.solve_duration_last > Duration::ZERO,
        "completed solves must leave a timed last-solve gauge"
    );
    assert!(report.stats.solve_duration_max >= report.stats.solve_duration_last);
    // A fault-free run reports itself healthy on every axis: no
    // supervised restarts, no failed solves, no degradation, and no WAL
    // footprint when none was configured.
    assert_eq!(report.stats.worker_restarts, 0, "no worker panicked");
    assert_eq!(report.stats.resolver_restarts, 0, "the resolver never crashed");
    assert_eq!(report.stats.solve_failures, 0);
    assert_eq!(report.stats.consecutive_solve_failures, 0);
    assert!(!report.stats.degraded, "every posterior was a fresh, on-time solve");
    assert_eq!(report.stats.wal_bytes, 0, "no WAL configured, no WAL bytes");
    assert_eq!(report.stats.wal_frames, 0);
    assert!(report.wal_error.is_none());
    assert!(!snap.degraded, "published snapshots carry the degraded flag, unset here");
}

#[test]
fn health_report_reflects_a_clean_service() {
    let service = IngestService::spawn(noise(), part(10), serve_config(2)).unwrap();
    let mut handle = service.handle();
    loop {
        match handle.try_ingest(&sample(800, 11)) {
            Ok(_) => break,
            Err(Error::Backpressure { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected ingest error: {e}"),
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.stats().epoch == 0 {
        assert!(std::time::Instant::now() < deadline, "service never published");
        std::thread::sleep(Duration::from_millis(2));
    }
    let health = service.health();
    assert!(health.is_healthy(), "clean run: {health:?}");
    assert_eq!(health.consecutive_solve_failures, 0);
    assert_eq!(health.worker_restarts, 0);
    assert_eq!(health.resolver_restarts, 0);
    assert_eq!(health.wal_lag_records, 0, "no WAL means no durability lag by definition");
    assert!(health.epoch >= 1);
    service.shutdown().unwrap();
}
