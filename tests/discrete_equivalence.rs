//! Property harness for the discrete-channel unification: engine-routed
//! inversions vs the legacy bespoke paths, the `DiscreteSuffStats` merge
//! algebra, and fingerprint fail-fast behavior.
//!
//! The load-bearing claims:
//!
//! * engine-routed assoc support estimates match the legacy
//!   `channel_matrix` + `solve` path within 1e-10 (they are in fact
//!   bit-identical — the LU factorization replays the same elimination);
//! * engine-routed randomized-response reconstruction matches the legacy
//!   closed-form inversion within 1e-10;
//! * `DiscreteSuffStats` merging is exactly associative and commutative,
//!   ingest order is invisible, and fingerprint mismatches refuse to
//!   merge;
//! * solving from a sketch is bit-identical to solving from its counts;
//! * the vectorized shared iterate core (the `Iterative` solver) stays
//!   within 1e-10 of the retired scalar loop — reproduced here verbatim
//!   as `scalar_discrete_oracle` — for cold and warm starts alike.
//!
//! Run with `PROPTEST_CASES=<n>` to rescale case counts (CI pins it).

use ppdm::assoc::{estimated_support, estimated_support_reference, ItemRandomizer};
use ppdm::assoc::{Transaction, TransactionSet};
use ppdm::core::randomize::RandomizedResponse;
use ppdm::core::reconstruct::{
    shared_discrete_engine, DiscreteReconstructionConfig, DiscreteReconstructionEngine,
    DiscreteSolver, DiscreteSuffStats, FactoredChannel, StoppingRule,
};
use ppdm::core::Error;
use proptest::prelude::*;

/// The retired scalar discrete Bayes/EM loop (uniform or warm start,
/// zero-denominator skip, stall breakout), kept verbatim as the oracle
/// the vectorized shared iterate core is bounded against.
fn scalar_discrete_oracle(
    factored: &FactoredChannel,
    observed_counts: &[f64],
    max_iterations: usize,
    initial: Option<&[f64]>,
) -> Vec<f64> {
    let k = factored.states();
    let n: f64 = observed_counts.iter().sum();
    let mut probs = match initial {
        Some(prior) => {
            // floored_prior's semantics: floor at 1e-12, renormalize.
            let mut floored: Vec<f64> = prior.iter().map(|p| p.max(1e-12)).collect();
            let total: f64 = floored.iter().sum();
            floored.iter_mut().for_each(|p| *p /= total);
            floored
        }
        None => vec![1.0 / k as f64; k],
    };
    let mut scratch = vec![0.0f64; k];
    for _ in 0..max_iterations {
        scratch.iter_mut().for_each(|s| *s = 0.0);
        let mut used_weight = 0.0;
        for (observed, &weight) in observed_counts.iter().enumerate() {
            if weight <= 0.0 {
                continue;
            }
            let row = factored.row(observed);
            let denom: f64 = row.iter().zip(&probs).map(|(l, p)| l * p).sum();
            if denom <= f64::MIN_POSITIVE {
                continue;
            }
            used_weight += weight;
            let inv = weight / denom;
            for (s, (l, p)) in scratch.iter_mut().zip(row.iter().zip(&probs)) {
                *s += l * p * inv;
            }
        }
        if used_weight <= 0.0 {
            break;
        }
        let total: f64 = scratch.iter().sum();
        for s in &mut scratch {
            *s /= total;
        }
        let stalled = probs.iter().zip(&scratch).map(|(o, w)| (w - o).abs()).sum::<f64>() < 1e-12;
        std::mem::swap(&mut probs, &mut scratch);
        if stalled {
            break;
        }
    }
    probs.iter().map(|p| p * n).collect()
}

/// A deterministic small basket database parameterized by a seed-ish
/// layout integer (proptest shrinks it nicely).
fn basket_db(layout: u64, transactions: usize) -> TransactionSet {
    let universe = 5u32;
    let db: Vec<Transaction> = (0..transactions)
        .map(|i| {
            let x = (layout >> (i % 13)).wrapping_add(i as u64);
            let items: Vec<u32> = (0..universe).filter(|item| (x >> item) & 1 == 1).collect();
            Transaction::new(items)
        })
        .collect();
    TransactionSet::new(db, universe).expect("items stay inside the universe")
}

proptest! {
    // Acceptance bar of the unification: engine (cached LU) and legacy
    // (per-call Gaussian elimination) support estimates agree within
    // 1e-10 on arbitrary channels, databases, and itemset sizes.
    #[test]
    fn prop_assoc_engine_matches_legacy_within_1e10(
        keep in 0.3..1.0f64,
        insert in 0.0..0.4f64,
        layout in 0..u64::MAX,
        perturb_seed in 0u64..500,
        size in 1usize..4,
    ) {
        let randomizer = ItemRandomizer::new(keep, insert).expect("valid parameters");
        let db = basket_db(layout, 300);
        let randomized = randomizer.perturb_set(&db, perturb_seed);
        let itemset: Vec<u32> = (0..size as u32).collect();
        let engine = estimated_support(&randomized, &itemset, &randomizer).expect("solvable");
        let legacy =
            estimated_support_reference(&randomized, &itemset, &randomizer).expect("solvable");
        prop_assert!(
            (engine - legacy).abs() < 1e-10,
            "engine {engine} vs legacy {legacy} (keep {keep}, insert {insert}, size {size})"
        );
    }

    // Engine-routed randomized-response reconstruction agrees with the
    // legacy closed form `pi_j = (q_j/total - (1-p)/k) / p` (clamped,
    // rescaled) within 1e-10 of the total.
    #[test]
    fn prop_randomized_response_engine_matches_closed_form(
        counts in prop::collection::vec(0.0..5e4f64, 3..7),
        keep in 0.15..1.0f64,
    ) {
        let k = counts.len();
        let channel = RandomizedResponse::new(k, keep).expect("valid parameters");
        let total: f64 = counts.iter().sum();
        prop_assume!(total > 0.0);
        let engine = channel.reconstruct(&counts).expect("valid counts");
        // Legacy formula.
        let background = (1.0 - keep) / k as f64;
        let mut legacy: Vec<f64> =
            counts.iter().map(|&c| (((c / total) - background) / keep).max(0.0)).collect();
        let legacy_total: f64 = legacy.iter().sum();
        if legacy_total <= 0.0 {
            legacy = vec![total / k as f64; k];
        } else {
            for e in &mut legacy {
                *e *= total / legacy_total;
            }
        }
        for (e, l) in engine.iter().zip(&legacy) {
            prop_assert!((e - l).abs() < 1e-10 * total.max(1.0), "engine {e} vs legacy {l}");
        }
    }

    // Merge algebra: exactly associative, exactly commutative, totals
    // add, and ingest layout is invisible.
    #[test]
    fn prop_suff_stats_merge_is_exact(
        a in prop::collection::vec(0usize..4, 0..40),
        b in prop::collection::vec(0usize..4, 0..40),
        c in prop::collection::vec(0usize..4, 0..40),
        keep in 0.2..1.0f64,
    ) {
        let channel = RandomizedResponse::new(4, keep).expect("valid parameters");
        let sa = DiscreteSuffStats::from_states(&channel, &a).expect("in range");
        let sb = DiscreteSuffStats::from_states(&channel, &b).expect("in range");
        let sc = DiscreteSuffStats::from_states(&channel, &c).expect("in range");
        // Commutative and associative, exactly.
        prop_assert_eq!(sa.merge(&sb).unwrap(), sb.merge(&sa).unwrap());
        prop_assert_eq!(
            sa.merge(&sb).unwrap().merge(&sc).unwrap(),
            sa.merge(&sb.merge(&sc).unwrap()).unwrap()
        );
        // Merged shards == one sketch over the concatenation.
        let concat: Vec<usize> = a.iter().chain(&b).chain(&c).copied().collect();
        let merged = sa.merge(&sb).unwrap().merge(&sc).unwrap();
        let monolithic = DiscreteSuffStats::from_states(&channel, &concat).expect("in range");
        prop_assert_eq!(&merged, &monolithic);
        prop_assert_eq!(merged.count() as usize, concat.len());
    }

    // The vectorized shared iterate core vs the retired scalar loop:
    // estimates within 1e-10 of the total, cold start, across channel
    // sizes and truthfulness levels. (Fixed iteration cap + the shared
    // stall breakout; both arms stall at the same fixpoint, so only the
    // lane-reordering divergence remains.)
    #[test]
    fn prop_iterative_engine_matches_scalar_oracle_cold(
        counts in prop::collection::vec(0.0..5e4f64, 3..8),
        keep in 0.2..1.0f64,
    ) {
        let k = counts.len();
        let channel = RandomizedResponse::new(k, keep).expect("valid parameters");
        let total: f64 = counts.iter().sum();
        prop_assume!(total > 0.0);
        let factored = FactoredChannel::build(&channel).expect("non-singular");
        let config = DiscreteReconstructionConfig {
            solver: DiscreteSolver::Iterative,
            stopping: StoppingRule::MaxIterationsOnly,
            max_iterations: 200,
            ..Default::default()
        };
        let engine = DiscreteReconstructionEngine::new();
        let engined = engine.reconstruct(&channel, &counts, &config).expect("valid counts");
        let oracle = scalar_discrete_oracle(&factored, &counts, 200, None);
        for (state, (o, e)) in oracle.iter().zip(&engined.estimate).enumerate() {
            prop_assert!(
                (o - e).abs() <= 1e-10 * total.max(1.0),
                "state {state}: oracle {o} vs engine {e} (keep {keep})"
            );
        }
    }

    // Same bound for warm starts through the sketch path.
    #[test]
    fn prop_iterative_engine_matches_scalar_oracle_warm(
        state_counts in prop::collection::vec(0u32..400, 3..7),
        keep in 0.25..1.0f64,
        warm_tilt in 1usize..5,
    ) {
        let k = state_counts.len();
        let channel = RandomizedResponse::new(k, keep).expect("valid parameters");
        let states: Vec<usize> = state_counts
            .iter()
            .enumerate()
            .flat_map(|(s, &c)| std::iter::repeat_n(s, c as usize))
            .collect();
        prop_assume!(!states.is_empty());
        let stats = DiscreteSuffStats::from_states(&channel, &states).expect("in range");
        let warm: Vec<f64> = {
            let raw: Vec<f64> = (0..k).map(|i| 1.0 + ((i * warm_tilt) % 5) as f64).collect();
            let t: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / t).collect()
        };
        let config = DiscreteReconstructionConfig {
            solver: DiscreteSolver::Iterative,
            stopping: StoppingRule::MaxIterationsOnly,
            max_iterations: 200,
            ..Default::default()
        };
        let engine = DiscreteReconstructionEngine::new();
        let engined =
            engine.reconstruct_stats(&channel, &stats, &config, Some(&warm)).expect("non-empty");
        let factored = FactoredChannel::build(&channel).expect("non-singular");
        let oracle = scalar_discrete_oracle(&factored, &stats.counts_f64(), 200, Some(&warm));
        let total = stats.count() as f64;
        for (state, (o, e)) in oracle.iter().zip(&engined.estimate).enumerate() {
            prop_assert!(
                (o - e).abs() <= 1e-10 * total.max(1.0),
                "state {state}: oracle {o} vs engine {e} (keep {keep})"
            );
        }
    }

    // Sketch-backed solves are bit-identical to count-backed solves.
    #[test]
    fn prop_stats_solve_equals_counts_solve(
        states in prop::collection::vec(0usize..5, 1..200),
        keep in 0.2..1.0f64,
        iterative in 0usize..2,
    ) {
        let channel = RandomizedResponse::new(5, keep).expect("valid parameters");
        let stats = DiscreteSuffStats::from_states(&channel, &states).expect("in range");
        let config = if iterative == 1 {
            DiscreteReconstructionConfig::iterative()
        } else {
            DiscreteReconstructionConfig::closed_form()
        };
        let engine = shared_discrete_engine();
        let via_stats = engine.reconstruct_stats(&channel, &stats, &config, None).expect("non-empty");
        let via_counts = engine.reconstruct(&channel, &stats.counts_f64(), &config).expect("non-empty");
        prop_assert_eq!(via_stats, via_counts);
    }
}

#[test]
fn mismatched_fingerprints_fail_fast() {
    let a = RandomizedResponse::new(4, 0.5).unwrap();
    let different_keep = RandomizedResponse::new(4, 0.6).unwrap();
    let sa = DiscreteSuffStats::from_states(&a, &[0, 1, 2]).unwrap();
    let sb = DiscreteSuffStats::from_states(&different_keep, &[3]).unwrap();
    assert!(matches!(sa.merge(&sb), Err(Error::ShardMismatch(_))));
    // The failed merge leaves the receiver untouched.
    let mut sa_mut = sa.clone();
    assert!(sa_mut.merge_from(&sb).is_err());
    assert_eq!(sa_mut, sa);
    // And the engine refuses a sketch from another channel.
    let engine = shared_discrete_engine();
    let err = engine
        .reconstruct_stats(&different_keep, &sa, &DiscreteReconstructionConfig::default(), None)
        .unwrap_err();
    assert!(matches!(err, Error::ShardMismatch(_)));
}

#[test]
fn engine_and_legacy_are_bit_identical_on_a_real_workload() {
    // Stronger than the 1e-10 acceptance bar: on a realistic randomized
    // database the two paths agree to the last bit, because the cached
    // LU replays the legacy elimination's arithmetic exactly.
    let randomizer = ItemRandomizer::new(0.8, 0.1).unwrap();
    let db = basket_db(0xDEADBEEF, 2_000);
    let randomized = randomizer.perturb_set(&db, 99);
    for itemset in [vec![0u32], vec![1, 3], vec![0, 2, 4], vec![0, 1, 2, 3]] {
        let engine = estimated_support(&randomized, &itemset, &randomizer).unwrap();
        let legacy = estimated_support_reference(&randomized, &itemset, &randomizer).unwrap();
        assert_eq!(engine, legacy, "{itemset:?}");
    }
}
