//! Property harness for the discrete-channel unification: engine-routed
//! inversions vs the legacy bespoke paths, the `DiscreteSuffStats` merge
//! algebra, and fingerprint fail-fast behavior.
//!
//! The load-bearing claims:
//!
//! * engine-routed assoc support estimates match the legacy
//!   `channel_matrix` + `solve` path within 1e-10 (they are in fact
//!   bit-identical — the LU factorization replays the same elimination);
//! * engine-routed randomized-response reconstruction matches the legacy
//!   closed-form inversion within 1e-10;
//! * `DiscreteSuffStats` merging is exactly associative and commutative,
//!   ingest order is invisible, and fingerprint mismatches refuse to
//!   merge;
//! * solving from a sketch is bit-identical to solving from its counts.
//!
//! Run with `PROPTEST_CASES=<n>` to rescale case counts (CI pins it).

use ppdm::assoc::{estimated_support, estimated_support_reference, ItemRandomizer};
use ppdm::assoc::{Transaction, TransactionSet};
use ppdm::core::randomize::RandomizedResponse;
use ppdm::core::reconstruct::{
    shared_discrete_engine, DiscreteReconstructionConfig, DiscreteSuffStats,
};
use ppdm::core::Error;
use proptest::prelude::*;

/// A deterministic small basket database parameterized by a seed-ish
/// layout integer (proptest shrinks it nicely).
fn basket_db(layout: u64, transactions: usize) -> TransactionSet {
    let universe = 5u32;
    let db: Vec<Transaction> = (0..transactions)
        .map(|i| {
            let x = (layout >> (i % 13)).wrapping_add(i as u64);
            let items: Vec<u32> = (0..universe).filter(|item| (x >> item) & 1 == 1).collect();
            Transaction::new(items)
        })
        .collect();
    TransactionSet::new(db, universe).expect("items stay inside the universe")
}

proptest! {
    // Acceptance bar of the unification: engine (cached LU) and legacy
    // (per-call Gaussian elimination) support estimates agree within
    // 1e-10 on arbitrary channels, databases, and itemset sizes.
    #[test]
    fn prop_assoc_engine_matches_legacy_within_1e10(
        keep in 0.3..1.0f64,
        insert in 0.0..0.4f64,
        layout in 0..u64::MAX,
        perturb_seed in 0u64..500,
        size in 1usize..4,
    ) {
        let randomizer = ItemRandomizer::new(keep, insert).expect("valid parameters");
        let db = basket_db(layout, 300);
        let randomized = randomizer.perturb_set(&db, perturb_seed);
        let itemset: Vec<u32> = (0..size as u32).collect();
        let engine = estimated_support(&randomized, &itemset, &randomizer).expect("solvable");
        let legacy =
            estimated_support_reference(&randomized, &itemset, &randomizer).expect("solvable");
        prop_assert!(
            (engine - legacy).abs() < 1e-10,
            "engine {engine} vs legacy {legacy} (keep {keep}, insert {insert}, size {size})"
        );
    }

    // Engine-routed randomized-response reconstruction agrees with the
    // legacy closed form `pi_j = (q_j/total - (1-p)/k) / p` (clamped,
    // rescaled) within 1e-10 of the total.
    #[test]
    fn prop_randomized_response_engine_matches_closed_form(
        counts in prop::collection::vec(0.0..5e4f64, 3..7),
        keep in 0.15..1.0f64,
    ) {
        let k = counts.len();
        let channel = RandomizedResponse::new(k, keep).expect("valid parameters");
        let total: f64 = counts.iter().sum();
        prop_assume!(total > 0.0);
        let engine = channel.reconstruct(&counts).expect("valid counts");
        // Legacy formula.
        let background = (1.0 - keep) / k as f64;
        let mut legacy: Vec<f64> =
            counts.iter().map(|&c| (((c / total) - background) / keep).max(0.0)).collect();
        let legacy_total: f64 = legacy.iter().sum();
        if legacy_total <= 0.0 {
            legacy = vec![total / k as f64; k];
        } else {
            for e in &mut legacy {
                *e *= total / legacy_total;
            }
        }
        for (e, l) in engine.iter().zip(&legacy) {
            prop_assert!((e - l).abs() < 1e-10 * total.max(1.0), "engine {e} vs legacy {l}");
        }
    }

    // Merge algebra: exactly associative, exactly commutative, totals
    // add, and ingest layout is invisible.
    #[test]
    fn prop_suff_stats_merge_is_exact(
        a in prop::collection::vec(0usize..4, 0..40),
        b in prop::collection::vec(0usize..4, 0..40),
        c in prop::collection::vec(0usize..4, 0..40),
        keep in 0.2..1.0f64,
    ) {
        let channel = RandomizedResponse::new(4, keep).expect("valid parameters");
        let sa = DiscreteSuffStats::from_states(&channel, &a).expect("in range");
        let sb = DiscreteSuffStats::from_states(&channel, &b).expect("in range");
        let sc = DiscreteSuffStats::from_states(&channel, &c).expect("in range");
        // Commutative and associative, exactly.
        prop_assert_eq!(sa.merge(&sb).unwrap(), sb.merge(&sa).unwrap());
        prop_assert_eq!(
            sa.merge(&sb).unwrap().merge(&sc).unwrap(),
            sa.merge(&sb.merge(&sc).unwrap()).unwrap()
        );
        // Merged shards == one sketch over the concatenation.
        let concat: Vec<usize> = a.iter().chain(&b).chain(&c).copied().collect();
        let merged = sa.merge(&sb).unwrap().merge(&sc).unwrap();
        let monolithic = DiscreteSuffStats::from_states(&channel, &concat).expect("in range");
        prop_assert_eq!(&merged, &monolithic);
        prop_assert_eq!(merged.count() as usize, concat.len());
    }

    // Sketch-backed solves are bit-identical to count-backed solves.
    #[test]
    fn prop_stats_solve_equals_counts_solve(
        states in prop::collection::vec(0usize..5, 1..200),
        keep in 0.2..1.0f64,
        iterative in 0usize..2,
    ) {
        let channel = RandomizedResponse::new(5, keep).expect("valid parameters");
        let stats = DiscreteSuffStats::from_states(&channel, &states).expect("in range");
        let config = if iterative == 1 {
            DiscreteReconstructionConfig::iterative()
        } else {
            DiscreteReconstructionConfig::closed_form()
        };
        let engine = shared_discrete_engine();
        let via_stats = engine.reconstruct_stats(&channel, &stats, &config, None).expect("non-empty");
        let via_counts = engine.reconstruct(&channel, &stats.counts_f64(), &config).expect("non-empty");
        prop_assert_eq!(via_stats, via_counts);
    }
}

#[test]
fn mismatched_fingerprints_fail_fast() {
    let a = RandomizedResponse::new(4, 0.5).unwrap();
    let different_keep = RandomizedResponse::new(4, 0.6).unwrap();
    let sa = DiscreteSuffStats::from_states(&a, &[0, 1, 2]).unwrap();
    let sb = DiscreteSuffStats::from_states(&different_keep, &[3]).unwrap();
    assert!(matches!(sa.merge(&sb), Err(Error::ShardMismatch(_))));
    // The failed merge leaves the receiver untouched.
    let mut sa_mut = sa.clone();
    assert!(sa_mut.merge_from(&sb).is_err());
    assert_eq!(sa_mut, sa);
    // And the engine refuses a sketch from another channel.
    let engine = shared_discrete_engine();
    let err = engine
        .reconstruct_stats(&different_keep, &sa, &DiscreteReconstructionConfig::default(), None)
        .unwrap_err();
    assert!(matches!(err, Error::ShardMismatch(_)));
}

#[test]
fn engine_and_legacy_are_bit_identical_on_a_real_workload() {
    // Stronger than the 1e-10 acceptance bar: on a realistic randomized
    // database the two paths agree to the last bit, because the cached
    // LU replays the legacy elimination's arithmetic exactly.
    let randomizer = ItemRandomizer::new(0.8, 0.1).unwrap();
    let db = basket_db(0xDEADBEEF, 2_000);
    let randomized = randomizer.perturb_set(&db, 99);
    for itemset in [vec![0u32], vec![1, 3], vec![0, 2, 4], vec![0, 1, 2, 3]] {
        let engine = estimated_support(&randomized, &itemset, &randomizer).unwrap();
        let legacy = estimated_support_reference(&randomized, &itemset, &randomizer).unwrap();
        assert_eq!(engine, legacy, "{itemset:?}");
    }
}
