//! Determinism harness for the block-parallel E-step: the parallel
//! iterate must be **bit-identical** to the untouched serial path — not
//! merely close — for every block geometry and every thread count,
//! because the block partition depends only on the problem geometry and
//! the scalar combines replay the serial order exactly (see the
//! `reconstruct::iterate` module docs).
//!
//! The load-bearing claims:
//!
//! * bucketed solves (both likelihood kernels), Exact dense solves,
//!   and discrete `Iterative` solves under `ParallelPolicy::Forced`
//!   reproduce the `Serial` result bit for bit across a grid of block
//!   shapes × `RAYON_NUM_THREADS ∈ {1, 2, 4}`;
//! * warm starts (sketch-backed, continuous and discrete) preserve the
//!   same equality;
//! * Exact *streamed* solves ignore `Forced` (the `O(m)` memory
//!   contract keeps them serial) and never count as parallel;
//! * `reconstruct_many` on a batch at least as large as the pool never
//!   engages inner parallelism under `Auto` (the outer `par_iter` owns
//!   the pool), while the same problem solved as a single job does.
//!
//! Every test mutates `RAYON_NUM_THREADS`, so they all serialize on one
//! lock; the engines re-read the variable at solve time.

use std::sync::{Mutex, MutexGuard, OnceLock};

use ppdm::prelude::*;
use ppdm_core::reconstruct::{
    DiscreteReconstructionConfig, DiscreteReconstructionEngine, DiscreteSolver, DiscreteSuffStats,
    LikelihoodKernel, ParallelPolicy, ReconstructionConfig, ReconstructionEngine,
    ReconstructionJob, StoppingRule, SuffStats, UpdateMode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Block shapes the grid sweeps: degenerate (every row/cell its own
/// block), deliberately misaligned, SIMD-width-ish, and the production
/// default. The block *count* these induce depends only on the problem
/// geometry, never on the thread count.
const BLOCK_SHAPES: [(usize, usize); 4] = [(1, 1), (3, 2), (8, 4), (512, 4)];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// All tests mutate the process-wide `RAYON_NUM_THREADS`; this lock
/// keeps them from trampling each other under the parallel test runner.
fn env_guard(threads: usize) -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard =
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    guard
}

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

/// A bimodal perturbed sample — structured enough that EM does real work.
fn sample(n: usize, seed: u64, noise: &NoiseModel) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 30.0 } else { 70.0 };
            center + rng.gen_range(-9.0..9.0)
        })
        .collect();
    noise.perturb_all(&xs, &mut rng)
}

fn cfg(policy: ParallelPolicy, mode: UpdateMode, kernel: LikelihoodKernel) -> ReconstructionConfig {
    ReconstructionConfig {
        mode,
        kernel,
        stopping: StoppingRule::MaxIterationsOnly,
        max_iterations: 40,
        parallel: policy,
    }
}

fn bits(masses: &[f64]) -> Vec<u64> {
    masses.iter().map(|m| m.to_bits()).collect()
}

#[test]
fn forced_bucketed_solves_are_bit_identical_to_serial_for_every_shape_and_thread_count() {
    let noise = NoiseModel::gaussian(12.0).unwrap();
    let partition = part(64);
    let observed = sample(4_000, 7, &noise);
    for kernel in [LikelihoodKernel::Midpoint, LikelihoodKernel::CellAverage] {
        let serial = {
            let _env = env_guard(1);
            ReconstructionEngine::new()
                .reconstruct(
                    &noise,
                    partition,
                    &observed,
                    &cfg(ParallelPolicy::Serial, UpdateMode::Bucketed, kernel),
                )
                .unwrap()
        };
        for (row_block, col_block) in BLOCK_SHAPES {
            for threads in THREAD_COUNTS {
                let _env = env_guard(threads);
                let engine = ReconstructionEngine::new().with_parallel_blocks(row_block, col_block);
                let parallel = engine
                    .reconstruct(
                        &noise,
                        partition,
                        &observed,
                        &cfg(ParallelPolicy::Forced, UpdateMode::Bucketed, kernel),
                    )
                    .unwrap();
                assert_eq!(engine.parallel_solves(), 1, "Forced must engage");
                assert_eq!(
                    bits(serial.histogram.masses()),
                    bits(parallel.histogram.masses()),
                    "blocks ({row_block},{col_block}) x {threads} threads, {kernel:?}"
                );
                assert_eq!(serial.iterations, parallel.iterations);
                assert_eq!(serial.converged, parallel.converged);
            }
        }
    }
}

#[test]
fn forced_exact_dense_solves_are_bit_identical_to_serial() {
    let noise = NoiseModel::uniform(25.0).unwrap();
    let partition = part(24);
    let observed = sample(3_000, 11, &noise);
    let entries = observed.len() * partition.len();
    let serial = {
        let _env = env_guard(1);
        ReconstructionEngine::new()
            .with_exact_materialize_entries(entries)
            .reconstruct(
                &noise,
                partition,
                &observed,
                &cfg(ParallelPolicy::Serial, UpdateMode::Exact, LikelihoodKernel::Midpoint),
            )
            .unwrap()
    };
    for (row_block, col_block) in BLOCK_SHAPES {
        for threads in THREAD_COUNTS {
            let _env = env_guard(threads);
            let engine = ReconstructionEngine::new()
                .with_exact_materialize_entries(entries)
                .with_parallel_blocks(row_block, col_block);
            let parallel = engine
                .reconstruct(
                    &noise,
                    partition,
                    &observed,
                    &cfg(ParallelPolicy::Forced, UpdateMode::Exact, LikelihoodKernel::Midpoint),
                )
                .unwrap();
            assert_eq!(engine.parallel_solves(), 1, "Forced dense Exact must engage");
            assert_eq!(
                bits(serial.histogram.masses()),
                bits(parallel.histogram.masses()),
                "blocks ({row_block},{col_block}) x {threads} threads"
            );
            assert_eq!(serial.iterations, parallel.iterations);
        }
    }
}

#[test]
fn forced_exact_streamed_solves_stay_serial_and_bit_identical() {
    let noise = NoiseModel::uniform(25.0).unwrap();
    let partition = part(24);
    let observed = sample(1_500, 13, &noise);
    let _env = env_guard(4);
    let serial = ReconstructionEngine::new()
        .with_exact_materialize_entries(0)
        .reconstruct(
            &noise,
            partition,
            &observed,
            &cfg(ParallelPolicy::Serial, UpdateMode::Exact, LikelihoodKernel::Midpoint),
        )
        .unwrap();
    // Forced cannot override the streamed path's O(m) memory contract:
    // the solve must neither count as parallel nor change a single bit.
    let engine = ReconstructionEngine::new().with_exact_materialize_entries(0);
    let forced = engine
        .reconstruct(
            &noise,
            partition,
            &observed,
            &cfg(ParallelPolicy::Forced, UpdateMode::Exact, LikelihoodKernel::Midpoint),
        )
        .unwrap();
    assert_eq!(engine.parallel_solves(), 0, "streamed Exact never engages");
    assert_eq!(bits(serial.histogram.masses()), bits(forced.histogram.masses()));
}

#[test]
fn warm_started_stats_solves_are_bit_identical_to_serial() {
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let partition = part(48);
    let observed = sample(5_000, 17, &noise);
    let mut stats = SuffStats::new(&noise, partition).unwrap();
    stats.ingest(&observed).unwrap();
    let kernel = LikelihoodKernel::Midpoint;

    // A first (serial) solve provides the warm start both paths share.
    let _env = env_guard(1);
    let warm = ReconstructionEngine::new()
        .reconstruct_stats(
            &noise,
            &stats,
            &cfg(ParallelPolicy::Serial, UpdateMode::Bucketed, kernel),
            None,
        )
        .unwrap()
        .histogram
        .probabilities();
    drop(_env);

    let serial = {
        let _env = env_guard(1);
        ReconstructionEngine::new()
            .reconstruct_stats(
                &noise,
                &stats,
                &cfg(ParallelPolicy::Serial, UpdateMode::Bucketed, kernel),
                Some(&warm),
            )
            .unwrap()
    };
    for (row_block, col_block) in BLOCK_SHAPES {
        for threads in THREAD_COUNTS {
            let _env = env_guard(threads);
            let parallel = ReconstructionEngine::new()
                .with_parallel_blocks(row_block, col_block)
                .reconstruct_stats(
                    &noise,
                    &stats,
                    &cfg(ParallelPolicy::Forced, UpdateMode::Bucketed, kernel),
                    Some(&warm),
                )
                .unwrap();
            assert_eq!(
                bits(serial.histogram.masses()),
                bits(parallel.histogram.masses()),
                "warm start, blocks ({row_block},{col_block}) x {threads} threads"
            );
            assert_eq!(serial.iterations, parallel.iterations);
        }
    }
}

#[test]
fn forced_discrete_iterative_is_bit_identical_cold_and_warm() {
    let k = 6;
    let channel = RandomizedResponse::new(k, 0.7).unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let states: Vec<usize> = (0..4_000).map(|_| rng.gen_range(0..k)).collect();
    let stats = DiscreteSuffStats::from_states(&channel, &states).unwrap();
    let warm: Vec<f64> = {
        let raw: Vec<f64> = (0..k).map(|i| 1.0 + (i % 3) as f64).collect();
        let t: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / t).collect()
    };
    let dcfg = |policy| DiscreteReconstructionConfig {
        solver: DiscreteSolver::Iterative,
        stopping: StoppingRule::MaxIterationsOnly,
        max_iterations: 120,
        parallel: policy,
    };
    for warm_start in [None, Some(warm.as_slice())] {
        let serial = {
            let _env = env_guard(1);
            DiscreteReconstructionEngine::new()
                .reconstruct_stats(&channel, &stats, &dcfg(ParallelPolicy::Serial), warm_start)
                .unwrap()
        };
        for (row_block, col_block) in BLOCK_SHAPES {
            for threads in THREAD_COUNTS {
                let _env = env_guard(threads);
                let engine =
                    DiscreteReconstructionEngine::new().with_parallel_blocks(row_block, col_block);
                let parallel = engine
                    .reconstruct_stats(&channel, &stats, &dcfg(ParallelPolicy::Forced), warm_start)
                    .unwrap();
                assert_eq!(engine.parallel_solves(), 1, "Forced must engage");
                assert_eq!(
                    bits(&serial.estimate),
                    bits(&parallel.estimate),
                    "warm={} blocks ({row_block},{col_block}) x {threads} threads",
                    warm_start.is_some()
                );
                assert_eq!(serial.iterations, parallel.iterations);
            }
        }
    }
}

/// The anti-oversubscription rule, end to end: a batch at least as large
/// as the pool claims every worker at the job level, so `Auto` must stay
/// serial inside each job — while the *same* problem solved as a single
/// job (where the pool is otherwise idle) engages.
#[test]
fn reconstruct_many_on_a_saturating_batch_never_engages_inner_parallelism() {
    let noise = NoiseModel::gaussian(10.0).unwrap();
    // 512 cells x ~650 *active* extended buckets (the sample below is
    // dense enough to populate nearly every covered bucket) comfortably
    // clears the Auto work threshold, so only the pool state decides.
    let partition = part(512);
    let observed = sample(8_000, 29, &noise);
    let config = cfg(ParallelPolicy::Auto, UpdateMode::Bucketed, LikelihoodKernel::Midpoint);

    let _env = env_guard(4);
    let engine = ReconstructionEngine::new();
    let jobs: Vec<ReconstructionJob<'_>> =
        (0..8).map(|_| ReconstructionJob::borrowed(&noise, partition, &observed, config)).collect();
    for result in engine.reconstruct_many(&jobs) {
        result.unwrap();
    }
    assert_eq!(
        engine.parallel_solves(),
        0,
        "a saturating Auto batch must leave inner parallelism disengaged"
    );

    // The identical problem as a single job sees a free pool and engages.
    engine.reconstruct(&noise, partition, &observed, &config).unwrap();
    assert_eq!(engine.parallel_solves(), 1, "a lone Auto solve above the threshold must engage");

    // A one-job batch runs inline on the caller with the pool untouched,
    // so it keeps the full inner budget and engages too.
    engine.reconstruct_many(&jobs[..1]).pop().unwrap().unwrap();
    assert_eq!(engine.parallel_solves(), 2, "a single-job batch keeps the inner budget");
}
