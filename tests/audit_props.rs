//! Property harness for the `ppdm_core::audit` attacker models.
//!
//! The load-bearing claims:
//!
//! * a calibrated single-shot linkage attack — records drawn from the
//!   attack prior (uniform within bucket), perturbed by the public
//!   channel — tracks its analytic expectation
//!   (`nominal_linkage_rate` / `nominal_discrete_rate`) within sampling
//!   error, and the discrete nominal rate never exceeds the worst-case
//!   `posterior_breach`;
//! * the correlated two-column adversary on an independence (product)
//!   joint collapses *exactly* to the single-column attack, and on real
//!   correlated data it can only help;
//! * the repeated-observation breach rate is monotone non-decreasing in
//!   the number of epochs for **any** inputs, and at heavy noise it
//!   demonstrably exceeds both the single-shot rate and the nominal one;
//! * zero-mass prior buckets never produce NaN — excluded buckets are
//!   excluded, degenerate records are counted `undecided`, not breached;
//! * the attack composes with the live serving layer: a cohort
//!   re-perturbed every epoch into an [`IngestService`], audited with
//!   the priors actually published through a [`SnapshotReader`], leaks
//!   more with every epoch observed.
//!
//! Run with `PROPTEST_CASES=<n>` to rescale case counts (CI pins it).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppdm::core::audit::{
    audit_repeated, audit_snapshot_stream, nominal_discrete_rate, nominal_linkage_rate,
    BreachReport, CorrelatedLinkage, DiscreteLinkage, EpochObservation, JointPrior,
    PosteriorLinkage,
};
use ppdm::core::privacy::discrete::posterior_breach;
use ppdm::prelude::*;
use ppdm_datagen::correlated_pair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

/// A noise model from a shrinkable (kind, scale) pair.
fn noise_model(kind: usize, scale: f64) -> NoiseModel {
    match kind % 3 {
        0 => NoiseModel::uniform(scale).unwrap(),
        1 => NoiseModel::gaussian(scale).unwrap(),
        _ => NoiseModel::laplace(scale).unwrap(),
    }
}

/// Draws `n` values distributed exactly as the attack model assumes:
/// bucket sampled from `prior`, value uniform within the bucket. Under
/// this population the nominal MAP rate is the exact expected breach.
fn draw_from_prior(prior: &[f64], partition: &Partition, n: usize, seed: u64) -> Vec<f64> {
    let total: f64 = prior.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut u = rng.gen_range(0.0..total);
            let mut bucket = prior.len() - 1;
            for (b, &p) in prior.iter().enumerate() {
                if u < p {
                    bucket = b;
                    break;
                }
                u -= p;
            }
            let (lo, hi) = partition.interval(bucket);
            rng.gen_range(lo..hi)
        })
        .collect()
}

/// Perturbs `truth` with one fresh noise draw.
fn perturb(noise: &NoiseModel, truth: &[f64], seed: u64) -> Vec<f64> {
    let mut col = vec![0.0; truth.len()];
    NoiseDensity::fill_noise(noise, seed, &mut col);
    truth.iter().zip(&col).map(|(x, e)| x + e).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(16),
    })]

    // Empirical single-shot linkage tracks the analytic rate when the
    // attack prior is the true generating prior (n = 4000: binomial
    // sampling error ~0.8%, bound at 5%).
    #[test]
    fn prop_linkage_tracks_nominal_with_the_true_prior(
        kind in 0usize..3,
        scale in 5.0..30.0f64,
        weights in proptest::collection::vec(0.05..1.0f64, 8),
        seed in 0u64..1_000,
    ) {
        let noise = noise_model(kind, scale);
        let partition = part(weights.len());
        let truth = draw_from_prior(&weights, &partition, 4_000, seed);
        let observed = perturb(&noise, &truth, seed ^ 0xABCD);
        let attacker = PosteriorLinkage::new(&noise, partition, &weights).unwrap();
        let empirical = attacker.audit(&observed, &truth).unwrap().rate();
        let nominal = nominal_linkage_rate(&noise, &partition, &weights).unwrap();
        prop_assert!(
            (empirical - nominal).abs() < 0.05,
            "empirical {empirical} vs nominal {nominal} ({kind}, {scale})"
        );
    }

    // Discrete face: same tracking property, plus the analytic ordering
    // nominal MAP rate <= worst-case posterior breach (an average can
    // never beat the worst case under a shared prior).
    #[test]
    fn prop_discrete_linkage_tracks_nominal_and_is_bounded_by_breach(
        k in 3usize..6,
        keep in 0.05..0.95f64,
        weights in proptest::collection::vec(0.05..1.0f64, 6),
        seed in 0u64..1_000,
    ) {
        let channel = RandomizedResponse::new(k, keep).unwrap();
        let prior = &weights[..k];
        let total: f64 = prior.iter().sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<usize> = (0..4_000)
            .map(|_| {
                let mut u = rng.gen_range(0.0..total);
                let mut state = k - 1;
                for (s, &p) in prior.iter().enumerate() {
                    if u < p { state = s; break; }
                    u -= p;
                }
                state
            })
            .collect();
        let mut observed = vec![0usize; truth.len()];
        channel.fill_states(seed ^ 0x5A5A, &truth, &mut observed).unwrap();
        let attacker = DiscreteLinkage::new(&channel, prior).unwrap();
        let empirical = attacker.audit(&observed, &truth).unwrap().rate();
        let nominal = nominal_discrete_rate(&channel, prior).unwrap();
        let breach = posterior_breach(&channel, prior).unwrap();
        prop_assert!(nominal <= breach + 1e-9, "nominal {nominal} > breach {breach}");
        prop_assert!(
            (empirical - nominal).abs() < 0.05,
            "empirical {empirical} vs nominal {nominal} (k {k}, keep {keep})"
        );
    }

    // Independence is the control: on a product joint the correlated
    // adversary's posterior equals the single-column one exactly. (The
    // side observation stays inside the feasible support — an impossible
    // side value zeroes the side factor and legitimately leaves the
    // correlated adversary undecided where the single-column one is not.)
    #[test]
    fn prop_product_joint_reduces_to_single_column(
        target_weights in proptest::collection::vec(0.05..1.0f64, 5),
        side_weights in proptest::collection::vec(0.05..1.0f64, 4),
        zt in -30.0..130.0f64,
        zs in -10.0..110.0f64,
    ) {
        let tn = NoiseModel::gaussian(10.0).unwrap();
        let sn = NoiseModel::uniform(15.0).unwrap();
        let joint = JointPrior::product(&target_weights, &side_weights).unwrap();
        let corr = CorrelatedLinkage::new(&tn, part(5), &sn, part(4), joint).unwrap();
        let single = PosteriorLinkage::new(&tn, part(5), &target_weights).unwrap();
        let pc = corr.posterior(zt, zs);
        let ps = single.posterior(zt);
        for (a, b) in pc.iter().zip(&ps) {
            prop_assert!((a - b).abs() < 1e-9, "{pc:?} vs {ps:?}");
        }
        prop_assert_eq!(corr.map_guess(zt, zs), single.map_guess(zt));
    }

    // On real correlated data the side column can only help (up to
    // sampling noise of the empirical joint and the finite cohort).
    #[test]
    fn prop_correlated_side_column_only_helps(
        rho in 0.0..0.95f64,
        scale in 8.0..25.0f64,
        seed in 0u64..1_000,
    ) {
        let pair = correlated_pair(3_000, Domain::new(0.0, 100.0).unwrap(), rho, seed).unwrap();
        let noise = NoiseModel::gaussian(scale).unwrap();
        let (tp, sp) = (part(10), part(10));
        let joint = JointPrior::from_samples(&tp, &sp, &pair.target, &pair.side).unwrap();
        let marginal = joint.target_marginal();
        let zt = perturb(&noise, &pair.target, seed ^ 0x11);
        let zs = perturb(&noise, &pair.side, seed ^ 0x22);
        let corr_rate = CorrelatedLinkage::new(&noise, tp, &noise, sp, joint)
            .unwrap()
            .audit(&zt, &zs, &pair.target)
            .unwrap()
            .rate();
        let single_rate = PosteriorLinkage::new(&noise, tp, &marginal)
            .unwrap()
            .audit(&zt, &pair.target)
            .unwrap()
            .rate();
        prop_assert!(
            corr_rate > single_rate - 0.03,
            "side column hurt: corr {corr_rate} vs single {single_rate} (rho {rho})"
        );
    }

    // Structural monotonicity: whatever the inputs — wild observations,
    // shifting priors, tiny cohorts — the cumulative breach rate never
    // decreases with more epochs.
    #[test]
    fn prop_repeated_breach_is_monotone(
        n in 1usize..30,
        epochs in 1usize..5,
        cells in 2usize..8,
        scale in 3.0..40.0f64,
        seed in 0u64..10_000,
    ) {
        let noise = NoiseModel::gaussian(scale).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let streams: Vec<Vec<f64>> = (0..epochs)
            .map(|_| (0..n).map(|_| rng.gen_range(-200.0..300.0)).collect())
            .collect();
        let prior: Vec<f64> = (0..cells).map(|_| rng.gen_range(0.0..1.0)).collect();
        let prior = if prior.iter().sum::<f64>() > 0.0 { prior } else { vec![1.0; cells] };
        let reports = audit_repeated(&noise, &part(cells), &prior, &streams, &truth).unwrap();
        for w in reports.windows(2) {
            prop_assert!(w[1].hits >= w[0].hits, "{reports:?}");
            prop_assert!(w[1].records == w[0].records);
        }
    }

    // Degenerate priors: zero-mass buckets are excluded, nothing is NaN,
    // and a prior that excludes every feasible bucket yields undecided
    // records, not breaches.
    #[test]
    fn prop_zero_mass_priors_never_produce_nan(
        alive in 1usize..5,
        z in -50.0..150.0f64,
    ) {
        let noise = NoiseModel::uniform(10.0).unwrap();
        let mut prior = vec![0.0; 5];
        for p in prior.iter_mut().take(alive) {
            *p = 1.0;
        }
        let attacker = PosteriorLinkage::new(&noise, part(5), &prior).unwrap();
        let posterior = attacker.posterior(z);
        for (b, p) in posterior.iter().enumerate() {
            prop_assert!(p.is_finite(), "bucket {b} went non-finite: {posterior:?}");
            if b >= alive {
                prop_assert_eq!(*p, 0.0, "excluded bucket got mass: {:?}", posterior);
            }
        }
        // A record living entirely in the excluded region is undecided.
        let report = attacker.audit(&[95.0], &[95.0]).unwrap();
        if alive <= 3 {
            prop_assert_eq!(report.hits, 0);
            prop_assert_eq!(report.undecided, 1, "{:?}", report);
        }
    }
}

/// Heavy noise, eight epochs: the repeated-observation attack must beat
/// both its own first epoch and the single-shot analytic rate by a wide
/// margin — this is the leak the nominal accounting cannot see.
#[test]
fn repeated_observations_beat_the_single_shot_nominal_rate() {
    let noise = NoiseModel::gaussian(35.0).unwrap();
    let partition = part(10);
    let prior = vec![1.0; 10];
    let truth = draw_from_prior(&prior, &partition, 2_000, 77);
    let epochs: Vec<Vec<f64>> = (0..8).map(|t| perturb(&noise, &truth, 1_000 + t as u64)).collect();
    let reports = audit_repeated(&noise, &partition, &prior, &epochs, &truth).unwrap();
    let nominal = nominal_linkage_rate(&noise, &partition, &prior).unwrap();
    let (first, last) = (reports[0].rate(), reports[7].rate());
    assert!(last > first + 0.1, "no growth: {first} -> {last}");
    assert!(last > nominal + 0.1, "eight epochs did not beat nominal {nominal}: {last}");
    // The single shot itself tracks nominal — the leak is the
    // repetition, not a miscalibrated attacker.
    assert!((first - nominal).abs() < 0.05, "first epoch {first} vs nominal {nominal}");
}

/// Fixed-seed correlated gain: a heavily-noised target column next to a
/// lightly-noised side column at rho = 0.9 — the side column must add
/// real breach rate over the single-column control. This is the classic
/// failure the per-column accounting misses: each column's own privacy
/// budget can be honest while their *pair* is not.
#[test]
fn correlated_attack_gains_at_high_rho() {
    let pair = correlated_pair(6_000, Domain::new(0.0, 100.0).unwrap(), 0.9, 3).unwrap();
    let target_noise = NoiseModel::gaussian(40.0).unwrap();
    let side_noise = NoiseModel::gaussian(8.0).unwrap();
    let (tp, sp) = (part(10), part(10));
    let joint = JointPrior::from_samples(&tp, &sp, &pair.target, &pair.side).unwrap();
    let marginal = joint.target_marginal();
    let zt = perturb(&target_noise, &pair.target, 31);
    let zs = perturb(&side_noise, &pair.side, 32);
    let corr_rate = CorrelatedLinkage::new(&target_noise, tp, &side_noise, sp, joint)
        .unwrap()
        .audit(&zt, &zs, &pair.target)
        .unwrap()
        .rate();
    let single_rate = PosteriorLinkage::new(&target_noise, tp, &marginal)
        .unwrap()
        .audit(&zt, &pair.target)
        .unwrap()
        .rate();
    assert!(
        corr_rate > single_rate + 0.05,
        "no correlation gain: corr {corr_rate} vs single {single_rate}"
    );
}

/// End-to-end streaming attack against the real serving stack: a cohort
/// re-perturbed every epoch is ingested into an [`IngestService`]; the
/// adversary records each epoch's published posterior through a
/// [`SnapshotReader`] plus the epoch's perturbed reports, and replays
/// them through [`audit_snapshot_stream`]. More epochs observed, more
/// records breached.
#[test]
fn snapshot_stream_attack_breaches_more_each_epoch() {
    const EPOCHS: usize = 6;
    const N: usize = 800;
    let noise = NoiseModel::gaussian(25.0).unwrap();
    let partition = part(12);
    // Bimodal cohort, the shape the serving layer's tests use.
    let mut rng = StdRng::seed_from_u64(5);
    let truth: Vec<f64> = (0..N)
        .map(|_| {
            let center: f64 = if rng.gen_bool(0.5) { 30.0 } else { 70.0 };
            let x: f64 = center + rng.gen_range(-9.0..9.0);
            x.clamp(0.0, 100.0)
        })
        .collect();

    let service = IngestService::spawn(
        Arc::new(noise),
        partition,
        ServeConfig {
            shards: 2,
            mailbox_capacity: 8,
            batch_capacity: 256,
            max_pooled: 64,
            resolve_interval: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut reader = service.reader();
    let mut handle = service.handle();

    let mut streams: Vec<Vec<f64>> = Vec::with_capacity(EPOCHS);
    let mut published_priors: Vec<Vec<f64>> = Vec::with_capacity(EPOCHS);
    for t in 0..EPOCHS {
        let observed = perturb(&noise, &truth, 400 + t as u64);
        for chunk in observed.chunks(128) {
            loop {
                match handle.try_ingest(chunk) {
                    Ok(_) => break,
                    Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected ingest error: {e}"),
                }
            }
        }
        // Wait for a publication that reflects everything ingested so
        // far — that snapshot is what the adversary records this epoch.
        let deadline = Instant::now() + Duration::from_secs(10);
        let prior = loop {
            if let Some(snap) = reader.refresh().or_else(|| reader.current()) {
                if snap.records >= ((t + 1) * N) as u64 {
                    break snap.histogram.masses().to_vec();
                }
            }
            assert!(Instant::now() < deadline, "epoch {t} never published");
            std::thread::sleep(Duration::from_millis(2));
        };
        published_priors.push(prior);
        streams.push(observed);
    }
    service.shutdown().unwrap();

    let observations: Vec<EpochObservation<'_>> = streams
        .iter()
        .zip(&published_priors)
        .map(|(observed, prior)| EpochObservation { prior, observed })
        .collect();
    let reports: Vec<BreachReport> =
        audit_snapshot_stream(&noise, &partition, &observations, &truth).unwrap();
    assert_eq!(reports.len(), EPOCHS);
    for w in reports.windows(2) {
        assert!(w[1].hits >= w[0].hits, "cumulative breach regressed: {reports:?}");
    }
    let (first, last) = (reports[0].rate(), reports[EPOCHS - 1].rate());
    assert!(
        last > first + 0.05,
        "observing {EPOCHS} epochs gained nothing: {first} -> {last} ({reports:?})"
    );
}
