//! Golden-fixture scenarios: deterministic reconstruction outputs
//! committed under `tests/fixtures/` and asserted bit-for-bit.
//!
//! Statistical drift — a re-tuned stopping rule, a reordered summation, a
//! "harmless" kernel tweak — rarely trips tolerance-based tests, and when
//! it does the failure is flaky rather than attributable. These fixtures
//! pin the *exact* output of the reconstruction pipeline for a handful of
//! fixed seeds, so any PR that changes the numbers shows up as a crisp
//! fixture diff instead. Every quantity involved is deterministic: the
//! vendored RNG streams, the EM iterate (serial within one solve), and
//! the JSON float rendering (shortest round-trip via `{:?}`).
//!
//! The test `tests/golden_reconstruction.rs` recomputes every scenario
//! and compares against the committed files; `cargo run --bin
//! regen_fixtures` rewrites them after an *intentional* change (see
//! `tests/README.md` for the workflow).

use ppdm_core::domain::{Domain, Partition};
use ppdm_core::randomize::NoiseModel;
use ppdm_core::reconstruct::{
    LikelihoodKernel, ReconstructionConfig, ReconstructionEngine, ShardedAccumulator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// How a scenario feeds the sample to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixturePath {
    /// One monolithic `ReconstructionEngine::reconstruct` call.
    Monolithic,
    /// Sharded streaming: 16 batches over 3 shards, merged `SuffStats`,
    /// solved cold. Pins the streaming subsystem's semantics alongside
    /// the monolithic path (the two must agree bit-for-bit anyway —
    /// property-tested in `streaming_equivalence.rs` — so these fixtures
    /// are intentionally identical to their monolithic twins' numbers).
    Sharded,
}

/// One golden scenario: a fixed seed, channel, kernel, and solve path.
pub struct FixtureScenario {
    /// Fixture file stem under `tests/fixtures/`.
    pub name: &'static str,
    /// The noise channel the sample goes through.
    pub noise: NoiseModel,
    /// Likelihood kernel (Bayes = midpoint, EM = cell-average).
    pub kernel: LikelihoodKernel,
    /// RNG seed of the original + noise sample.
    pub seed: u64,
    /// Sample size.
    pub n: usize,
    /// Reconstruction cells.
    pub cells: usize,
    /// Monolithic or sharded-streaming solve.
    pub path: FixturePath,
}

/// The serialized fixture payload.
#[derive(Debug, Serialize)]
struct FixtureOutput {
    name: String,
    kernel: String,
    noise: String,
    seed: u64,
    n: usize,
    cells: usize,
    path: String,
    iterations: usize,
    converged: bool,
    masses: Vec<f64>,
}

/// Every committed scenario: Bayes (midpoint) + EM (cell-average) across
/// all four noise families, plus a sharded-streaming twin per kernel.
///
/// The Laplace and mixture channels are sized so their noise standard
/// deviations are comparable to the Gaussian scenario's (sqrt(2)*10.6 ~
/// 15 for Laplace; the mixture mixes sigma 8 and 30 at 25% wide weight).
pub fn scenarios() -> Vec<FixtureScenario> {
    let gaussian = NoiseModel::gaussian(15.0).expect("static parameter");
    let uniform = NoiseModel::uniform(25.0).expect("static parameter");
    let laplace = NoiseModel::laplace(10.6).expect("static parameter");
    let mixture = NoiseModel::gaussian_mixture(8.0, 30.0, 0.25).expect("static parameters");
    vec![
        FixtureScenario {
            name: "bayes_gaussian",
            noise: gaussian,
            kernel: LikelihoodKernel::Midpoint,
            seed: 101,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "bayes_uniform",
            noise: uniform,
            kernel: LikelihoodKernel::Midpoint,
            seed: 102,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_gaussian",
            noise: gaussian,
            kernel: LikelihoodKernel::CellAverage,
            seed: 103,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_uniform",
            noise: uniform,
            kernel: LikelihoodKernel::CellAverage,
            seed: 104,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "bayes_laplace",
            noise: laplace,
            kernel: LikelihoodKernel::Midpoint,
            seed: 105,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_laplace",
            noise: laplace,
            kernel: LikelihoodKernel::CellAverage,
            seed: 105,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "bayes_mixture",
            noise: mixture,
            kernel: LikelihoodKernel::Midpoint,
            seed: 106,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_mixture",
            noise: mixture,
            kernel: LikelihoodKernel::CellAverage,
            seed: 106,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "streaming_bayes_gaussian",
            noise: gaussian,
            kernel: LikelihoodKernel::Midpoint,
            seed: 101,
            n: 2_000,
            cells: 20,
            path: FixturePath::Sharded,
        },
        FixtureScenario {
            name: "streaming_em_uniform",
            noise: uniform,
            kernel: LikelihoodKernel::CellAverage,
            seed: 104,
            n: 2_000,
            cells: 20,
            path: FixturePath::Sharded,
        },
    ]
}

/// The bimodal population every scenario samples (two triangles at 25
/// and 75 on `[0, 100]`), perturbed through the scenario's channel.
fn perturbed_sample(scenario: &FixtureScenario) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let originals: Vec<f64> = (0..scenario.n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 25.0 } else { 75.0 };
            center + rng.gen_range(-10.0..10.0) + rng.gen_range(-10.0..10.0)
        })
        .collect();
    scenario.noise.perturb_all(&originals, &mut rng)
}

/// Renders one scenario's reconstruction as its canonical JSON fixture
/// (newline-terminated).
pub fn render(scenario: &FixtureScenario) -> String {
    let partition = Partition::new(Domain::new(0.0, 100.0).expect("static"), scenario.cells)
        .expect("static cell count");
    let config = ReconstructionConfig { kernel: scenario.kernel, ..Default::default() };
    let observed = perturbed_sample(scenario);
    let engine = ReconstructionEngine::new();
    let result = match scenario.path {
        FixturePath::Monolithic => engine
            .reconstruct(&scenario.noise, partition, &observed, &config)
            .expect("non-empty fixture sample"),
        FixturePath::Sharded => {
            let mut acc =
                ShardedAccumulator::new(&scenario.noise, partition, 3).expect("static geometry");
            let size = observed.len().div_ceil(16);
            let batches: Vec<Vec<f64>> = observed.chunks(size).map(<[f64]>::to_vec).collect();
            acc.ingest_batches(&batches).expect("finite observations");
            let merged = acc.merged().expect("compatible shards");
            engine
                .reconstruct_stats(&scenario.noise, &merged, &config, None)
                .expect("non-empty fixture sample")
        }
    };
    let output = FixtureOutput {
        name: scenario.name.to_string(),
        kernel: format!("{:?}", scenario.kernel),
        noise: format!("{:?}", scenario.noise),
        seed: scenario.seed,
        n: scenario.n,
        cells: scenario.cells,
        path: format!("{:?}", scenario.path),
        iterations: result.iterations,
        converged: result.converged,
        masses: result.histogram.masses().to_vec(),
    };
    let mut json = serde_json::to_string(&output).expect("fixture output is JSON-representable");
    json.push('\n');
    json
}

/// Absolute path of a scenario's fixture file in this repository.
pub fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.json"))
}
