//! Golden-fixture scenarios: deterministic reconstruction outputs
//! committed under `tests/fixtures/` and asserted bit-for-bit.
//!
//! Statistical drift — a re-tuned stopping rule, a reordered summation, a
//! "harmless" kernel tweak — rarely trips tolerance-based tests, and when
//! it does the failure is flaky rather than attributable. These fixtures
//! pin the *exact* output of the reconstruction pipeline for a handful of
//! fixed seeds, so any PR that changes the numbers shows up as a crisp
//! fixture diff instead. Every quantity involved is deterministic: the
//! vendored RNG streams, the EM iterate (serial within one solve), and
//! the JSON float rendering (shortest round-trip via `{:?}`).
//!
//! The test `tests/golden_reconstruction.rs` recomputes every scenario
//! and compares against the committed files; `cargo run --bin
//! regen_fixtures` rewrites them after an *intentional* change (see
//! `tests/README.md` for the workflow).

use ppdm_assoc::{estimated_supports, generate_baskets, BasketConfig, ItemRandomizer};
use ppdm_core::domain::{Domain, Partition};
use ppdm_core::federate::{Coordinator, DiscreteCoordinator, DiscreteParty, Party};
use ppdm_core::randomize::{DiscreteChannel, NoiseModel, RandomizedResponse};
use ppdm_core::reconstruct::{
    DiscreteReconstructionConfig, DiscreteReconstructionEngine, DiscreteSolver, LikelihoodKernel,
    ReconstructionConfig, ReconstructionEngine, ShardedAccumulator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// How a scenario feeds the sample to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixturePath {
    /// One monolithic `ReconstructionEngine::reconstruct` call.
    Monolithic,
    /// Sharded streaming: 16 batches over 3 shards, merged `SuffStats`,
    /// solved cold. Pins the streaming subsystem's semantics alongside
    /// the monolithic path (the two must agree bit-for-bit anyway —
    /// property-tested in `streaming_equivalence.rs` — so these fixtures
    /// are intentionally identical to their monolithic twins' numbers).
    Sharded,
}

/// One golden scenario: a fixed seed, channel, kernel, and solve path.
pub struct FixtureScenario {
    /// Fixture file stem under `tests/fixtures/`.
    pub name: &'static str,
    /// The noise channel the sample goes through.
    pub noise: NoiseModel,
    /// Likelihood kernel (Bayes = midpoint, EM = cell-average).
    pub kernel: LikelihoodKernel,
    /// RNG seed of the original + noise sample.
    pub seed: u64,
    /// Sample size.
    pub n: usize,
    /// Reconstruction cells.
    pub cells: usize,
    /// Monolithic or sharded-streaming solve.
    pub path: FixturePath,
}

/// The serialized fixture payload.
#[derive(Debug, Serialize)]
struct FixtureOutput {
    name: String,
    kernel: String,
    noise: String,
    seed: u64,
    n: usize,
    cells: usize,
    path: String,
    iterations: usize,
    converged: bool,
    masses: Vec<f64>,
}

/// Every committed scenario: Bayes (midpoint) + EM (cell-average) across
/// all four noise families, plus a sharded-streaming twin per kernel.
///
/// The Laplace and mixture channels are sized so their noise standard
/// deviations are comparable to the Gaussian scenario's (sqrt(2)*10.6 ~
/// 15 for Laplace; the mixture mixes sigma 8 and 30 at 25% wide weight).
pub fn scenarios() -> Vec<FixtureScenario> {
    let gaussian = NoiseModel::gaussian(15.0).expect("static parameter");
    let uniform = NoiseModel::uniform(25.0).expect("static parameter");
    let laplace = NoiseModel::laplace(10.6).expect("static parameter");
    let mixture = NoiseModel::gaussian_mixture(8.0, 30.0, 0.25).expect("static parameters");
    vec![
        FixtureScenario {
            name: "bayes_gaussian",
            noise: gaussian,
            kernel: LikelihoodKernel::Midpoint,
            seed: 101,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "bayes_uniform",
            noise: uniform,
            kernel: LikelihoodKernel::Midpoint,
            seed: 102,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_gaussian",
            noise: gaussian,
            kernel: LikelihoodKernel::CellAverage,
            seed: 103,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_uniform",
            noise: uniform,
            kernel: LikelihoodKernel::CellAverage,
            seed: 104,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "bayes_laplace",
            noise: laplace,
            kernel: LikelihoodKernel::Midpoint,
            seed: 105,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_laplace",
            noise: laplace,
            kernel: LikelihoodKernel::CellAverage,
            seed: 105,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "bayes_mixture",
            noise: mixture,
            kernel: LikelihoodKernel::Midpoint,
            seed: 106,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "em_mixture",
            noise: mixture,
            kernel: LikelihoodKernel::CellAverage,
            seed: 106,
            n: 2_000,
            cells: 20,
            path: FixturePath::Monolithic,
        },
        FixtureScenario {
            name: "streaming_bayes_gaussian",
            noise: gaussian,
            kernel: LikelihoodKernel::Midpoint,
            seed: 101,
            n: 2_000,
            cells: 20,
            path: FixturePath::Sharded,
        },
        FixtureScenario {
            name: "streaming_em_uniform",
            noise: uniform,
            kernel: LikelihoodKernel::CellAverage,
            seed: 104,
            n: 2_000,
            cells: 20,
            path: FixturePath::Sharded,
        },
    ]
}

/// The bimodal population every scenario samples (two triangles at 25
/// and 75 on `[0, 100]`), perturbed through the scenario's channel.
fn perturbed_sample(scenario: &FixtureScenario) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let originals: Vec<f64> = (0..scenario.n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 25.0 } else { 75.0 };
            center + rng.gen_range(-10.0..10.0) + rng.gen_range(-10.0..10.0)
        })
        .collect();
    scenario.noise.perturb_all(&originals, &mut rng)
}

/// Renders one scenario's reconstruction as its canonical JSON fixture
/// (newline-terminated).
pub fn render(scenario: &FixtureScenario) -> String {
    let partition = Partition::new(Domain::new(0.0, 100.0).expect("static"), scenario.cells)
        .expect("static cell count");
    let config = ReconstructionConfig { kernel: scenario.kernel, ..Default::default() };
    let observed = perturbed_sample(scenario);
    let engine = ReconstructionEngine::new();
    let result = match scenario.path {
        FixturePath::Monolithic => engine
            .reconstruct(&scenario.noise, partition, &observed, &config)
            .expect("non-empty fixture sample"),
        FixturePath::Sharded => {
            let mut acc =
                ShardedAccumulator::new(&scenario.noise, partition, 3).expect("static geometry");
            let size = observed.len().div_ceil(16);
            let batches: Vec<Vec<f64>> = observed.chunks(size).map(<[f64]>::to_vec).collect();
            acc.ingest_batches(&batches).expect("finite observations");
            let merged = acc.merged().expect("compatible shards");
            engine
                .reconstruct_stats(&scenario.noise, &merged, &config, None)
                .expect("non-empty fixture sample")
        }
    };
    let output = FixtureOutput {
        name: scenario.name.to_string(),
        kernel: format!("{:?}", scenario.kernel),
        noise: format!("{:?}", scenario.noise),
        seed: scenario.seed,
        n: scenario.n,
        cells: scenario.cells,
        path: format!("{:?}", scenario.path),
        iterations: result.iterations,
        converged: result.converged,
        masses: result.histogram.masses().to_vec(),
    };
    let mut json = serde_json::to_string(&output).expect("fixture output is JSON-representable");
    json.push('\n');
    json
}

/// One golden scenario of the *discrete* engine: a fixed seed and channel,
/// solved through `DiscreteReconstructionEngine`.
pub enum DiscreteFixtureScenario {
    /// `n` categorical survey answers drawn from a fixed skewed
    /// multinomial, randomized-response-perturbed, reconstructed with
    /// both engine solvers.
    RandomizedResponse {
        /// Fixture file stem under `tests/fixtures/`.
        name: &'static str,
        /// Number of categories.
        categories: usize,
        /// Keep probability of the channel.
        keep_prob: f64,
        /// RNG seed of the true-state sample and the channel stream.
        seed: u64,
        /// Sample size.
        n: usize,
    },
    /// Supports of a fixed candidate list over a randomized basket
    /// database, estimated through the engine-routed assoc path.
    AssocSupport {
        /// Fixture file stem under `tests/fixtures/`.
        name: &'static str,
        /// Item keep probability.
        keep_prob: f64,
        /// Absent-item insertion probability.
        insert_prob: f64,
        /// RNG seed of the basket database and its randomization.
        seed: u64,
        /// Transactions in the database.
        n: usize,
    },
}

impl DiscreteFixtureScenario {
    /// Fixture file stem under `tests/fixtures/`.
    pub fn name(&self) -> &'static str {
        match self {
            DiscreteFixtureScenario::RandomizedResponse { name, .. }
            | DiscreteFixtureScenario::AssocSupport { name, .. } => name,
        }
    }
}

/// The committed discrete scenarios: one per retired bespoke inversion
/// path (randomized response, assoc support estimation).
pub fn discrete_scenarios() -> Vec<DiscreteFixtureScenario> {
    vec![
        DiscreteFixtureScenario::RandomizedResponse {
            name: "discrete_randomized_response",
            categories: 5,
            keep_prob: 0.6,
            seed: 201,
            n: 2_000,
        },
        DiscreteFixtureScenario::AssocSupport {
            name: "discrete_assoc_support",
            keep_prob: 0.85,
            insert_prob: 0.08,
            seed: 202,
            n: 2_000,
        },
    ]
}

/// The serialized discrete-fixture payload.
#[derive(Debug, Serialize)]
struct DiscreteFixtureOutput {
    name: String,
    channel: String,
    seed: u64,
    n: usize,
    /// Per-solver (or per-itemset) labeled result vectors.
    results: Vec<DiscreteFixtureResult>,
}

#[derive(Debug, Serialize)]
struct DiscreteFixtureResult {
    label: String,
    iterations: usize,
    converged: bool,
    values: Vec<f64>,
}

/// Renders one discrete scenario as its canonical JSON fixture
/// (newline-terminated).
pub fn render_discrete(scenario: &DiscreteFixtureScenario) -> String {
    let output = match *scenario {
        DiscreteFixtureScenario::RandomizedResponse { name, categories, keep_prob, seed, n } => {
            let channel =
                RandomizedResponse::new(categories, keep_prob).expect("static parameters");
            // Fixed skewed multinomial over the categories: weights
            // proportional to k, k-1, ..., 1.
            let mut rng = StdRng::seed_from_u64(seed);
            let total_weight = (categories * (categories + 1) / 2) as f64;
            let truth: Vec<usize> = (0..n)
                .map(|_| {
                    let u: f64 = rng.gen_range(0.0..1.0) * total_weight;
                    let mut acc = 0.0;
                    for (state, w) in (1..=categories).rev().enumerate() {
                        acc += w as f64;
                        if u < acc {
                            return state;
                        }
                    }
                    categories - 1
                })
                .collect();
            let mut observed_states = vec![0usize; n];
            channel
                .fill_states(seed.wrapping_add(1), &truth, &mut observed_states)
                .expect("states in range");
            let mut observed = vec![0.0f64; categories];
            for &s in &observed_states {
                observed[s] += 1.0;
            }
            let engine = DiscreteReconstructionEngine::new();
            let results = [DiscreteSolver::ClosedForm, DiscreteSolver::Iterative]
                .into_iter()
                .map(|solver| {
                    let config = DiscreteReconstructionConfig { solver, ..Default::default() };
                    let recon =
                        engine.reconstruct(&channel, &observed, &config).expect("non-empty");
                    DiscreteFixtureResult {
                        label: format!("{solver:?}"),
                        iterations: recon.iterations,
                        converged: recon.converged,
                        values: recon.estimate,
                    }
                })
                .collect();
            DiscreteFixtureOutput {
                name: name.to_string(),
                channel: format!("RandomizedResponse(k={categories}, p={keep_prob})"),
                seed,
                n,
                results,
            }
        }
        DiscreteFixtureScenario::AssocSupport { name, keep_prob, insert_prob, seed, n } => {
            let randomizer =
                ItemRandomizer::new(keep_prob, insert_prob).expect("static parameters");
            let db = generate_baskets(&BasketConfig::retail_demo(), n, seed);
            let randomized = randomizer.perturb_set(&db, seed.wrapping_add(1));
            let itemsets: Vec<Vec<u32>> =
                vec![vec![0], vec![1], vec![2], vec![1, 2], vec![0, 2], vec![1, 2, 3]];
            let supports =
                estimated_supports(&randomized, &itemsets, &randomizer).expect("solvable");
            let results = itemsets
                .iter()
                .zip(&supports)
                .map(|(itemset, support)| DiscreteFixtureResult {
                    label: format!("{itemset:?}"),
                    iterations: 0,
                    converged: true,
                    values: vec![*support],
                })
                .collect();
            DiscreteFixtureOutput {
                name: name.to_string(),
                channel: format!("ItemRandomizer(p={keep_prob}, q={insert_prob})"),
                seed,
                n,
                results,
            }
        }
    };
    let mut json = serde_json::to_string(&output).expect("fixture output is JSON-representable");
    json.push('\n');
    json
}

/// One golden scenario of the federation wire protocol: a fixed cohort,
/// session seed, and round, with every party's exact wire bytes (plain
/// *and* masked) committed as hex alongside the merged counts and the
/// coordinator's solve.
///
/// These pin the byte layout of [`ppdm_core::federate::WireSketch`]: any
/// change to the header, the checksum, the mask derivation, or the count
/// encoding shows up as a hex diff in the fixture file — a wire-format
/// break is then a reviewed decision, never an accident.
pub enum FederateFixtureScenario {
    /// A continuous cohort over a Gaussian channel.
    Continuous {
        /// Fixture file stem under `tests/fixtures/`.
        name: &'static str,
        /// RNG seed of the original + noise sample.
        seed: u64,
        /// Total records across the cohort.
        n: usize,
        /// Reconstruction cells.
        cells: usize,
        /// Cohort size.
        parties: u32,
        /// Protocol round the frames are emitted for.
        round: u32,
        /// Shared secret the pairwise masks derive from.
        session_seed: u64,
    },
    /// A discrete cohort over a randomized-response channel.
    Discrete {
        /// Fixture file stem under `tests/fixtures/`.
        name: &'static str,
        /// RNG seed of the true-state sample.
        seed: u64,
        /// Total records across the cohort.
        n: usize,
        /// Number of categories.
        categories: usize,
        /// Keep probability of the channel.
        keep_prob: f64,
        /// Cohort size.
        parties: u32,
        /// Protocol round the frames are emitted for.
        round: u32,
        /// Shared secret the pairwise masks derive from.
        session_seed: u64,
    },
}

impl FederateFixtureScenario {
    /// Fixture file stem under `tests/fixtures/`.
    pub fn name(&self) -> &'static str {
        match self {
            FederateFixtureScenario::Continuous { name, .. }
            | FederateFixtureScenario::Discrete { name, .. } => name,
        }
    }
}

/// The committed federation scenarios: one continuous, one discrete.
pub fn federate_scenarios() -> Vec<FederateFixtureScenario> {
    vec![
        FederateFixtureScenario::Continuous {
            name: "federate_continuous",
            seed: 301,
            n: 1_200,
            cells: 16,
            parties: 4,
            round: 3,
            session_seed: 0xF00D_FACE,
        },
        FederateFixtureScenario::Discrete {
            name: "federate_discrete",
            seed: 302,
            n: 1_500,
            categories: 5,
            keep_prob: 0.6,
            parties: 3,
            round: 1,
            session_seed: 0xCAFE_D00D,
        },
    ]
}

/// The serialized federation-fixture payload.
#[derive(Debug, Serialize)]
struct FederateFixtureOutput {
    name: String,
    channel: String,
    seed: u64,
    n: usize,
    cohort: u32,
    round: u32,
    session_seed: u64,
    parties: Vec<FederatePartyOutput>,
    merged_count: u64,
    merged_counts: Vec<f64>,
    iterations: usize,
    converged: bool,
    values: Vec<f64>,
}

#[derive(Debug, Serialize)]
struct FederatePartyOutput {
    party: u32,
    count: u64,
    plain_hex: String,
    masked_hex: String,
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Renders one federation scenario as its canonical JSON fixture
/// (newline-terminated): every party's exact plain and masked wire
/// bytes, the coordinator's merged counts (through the *masked* path —
/// the stricter one), and the resulting solve.
pub fn render_federate(scenario: &FederateFixtureScenario) -> String {
    let output = match *scenario {
        FederateFixtureScenario::Continuous {
            name,
            seed,
            n,
            cells,
            parties: k,
            round,
            session_seed,
        } => {
            let noise = NoiseModel::gaussian(15.0).expect("static parameter");
            let partition =
                Partition::new(Domain::new(0.0, 100.0).expect("static"), cells).expect("static");
            let mut rng = StdRng::seed_from_u64(seed);
            let originals: Vec<f64> = (0..n)
                .map(|_| {
                    let center = if rng.gen_bool(0.5) { 25.0 } else { 75.0 };
                    center + rng.gen_range(-10.0..10.0) + rng.gen_range(-10.0..10.0)
                })
                .collect();
            let observed = noise.perturb_all(&originals, &mut rng);

            // Deterministic uneven split: party i takes every record with
            // index ≡ i (mod k) — sizes differ when k does not divide n.
            let cohort: Vec<Party<'_>> = (0..k)
                .map(|id| {
                    let mut party =
                        Party::new(&noise, partition, id, k, session_seed).expect("static cohort");
                    let batch: Vec<f64> = observed
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i as u32 % k == id)
                        .map(|(_, &w)| w)
                        .collect();
                    party.ingest(&batch).expect("finite observations");
                    party
                })
                .collect();

            let mut coordinator =
                Coordinator::new(&noise, partition, k, round, true).expect("static geometry");
            let parties = cohort
                .iter()
                .map(|party| {
                    let masked = party.emit_masked(round).expect("masking succeeds");
                    coordinator.submit(&masked).expect("valid frame");
                    FederatePartyOutput {
                        party: party.id(),
                        count: party.stats().count(),
                        plain_hex: hex(&party.emit(round).expect("encoding succeeds")),
                        masked_hex: hex(&masked),
                    }
                })
                .collect();
            let merged = coordinator.merged().expect("complete cohort");
            let result = coordinator
                .reconstruct(&ReconstructionConfig::default())
                .expect("non-empty cohort");
            FederateFixtureOutput {
                name: name.to_string(),
                channel: format!("{noise:?}"),
                seed,
                n,
                cohort: k,
                round,
                session_seed,
                parties,
                merged_count: merged.count(),
                merged_counts: merged.counts().to_vec(),
                iterations: result.iterations,
                converged: result.converged,
                values: result.histogram.masses().to_vec(),
            }
        }
        FederateFixtureScenario::Discrete {
            name,
            seed,
            n,
            categories,
            keep_prob,
            parties: k,
            round,
            session_seed,
        } => {
            let channel =
                RandomizedResponse::new(categories, keep_prob).expect("static parameters");
            let mut rng = StdRng::seed_from_u64(seed);
            let truth: Vec<usize> = (0..n).map(|_| rng.gen_range(0..categories)).collect();
            let mut observed = vec![0usize; n];
            channel
                .fill_states(seed.wrapping_add(1), &truth, &mut observed)
                .expect("states in range");

            let cohort: Vec<DiscreteParty<'_>> = (0..k)
                .map(|id| {
                    let mut party =
                        DiscreteParty::new(&channel, id, k, session_seed).expect("static cohort");
                    let batch: Vec<usize> = observed
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i as u32 % k == id)
                        .map(|(_, &s)| s)
                        .collect();
                    party.ingest(&batch).expect("states in range");
                    party
                })
                .collect();

            let mut coordinator =
                DiscreteCoordinator::new(&channel, k, round, true).expect("static channel");
            let parties = cohort
                .iter()
                .map(|party| {
                    let masked = party.emit_masked(round).expect("masking succeeds");
                    coordinator.submit(&masked).expect("valid frame");
                    FederatePartyOutput {
                        party: party.id(),
                        count: party.stats().count(),
                        plain_hex: hex(&party.emit(round).expect("encoding succeeds")),
                        masked_hex: hex(&masked),
                    }
                })
                .collect();
            let merged = coordinator.merged().expect("complete cohort");
            let result = coordinator
                .reconstruct(&DiscreteReconstructionConfig::default())
                .expect("non-empty cohort");
            FederateFixtureOutput {
                name: name.to_string(),
                channel: format!("RandomizedResponse(k={categories}, p={keep_prob})"),
                seed,
                n,
                cohort: k,
                round,
                session_seed,
                parties,
                merged_count: merged.count(),
                merged_counts: merged.counts().iter().map(|&c| c as f64).collect(),
                iterations: result.iterations,
                converged: result.converged,
                values: result.estimate,
            }
        }
    };
    let mut json = serde_json::to_string(&output).expect("fixture output is JSON-representable");
    json.push('\n');
    json
}

/// Absolute path of a scenario's fixture file in this repository.
pub fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.json"))
}
