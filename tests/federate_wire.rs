//! Adversarial sweep over the federated wire layer.
//!
//! Byte-level claims, checked exhaustively rather than sampled:
//!
//! * **Every** single-bit flip of **every** byte of a valid encoding
//!   (continuous and discrete, masked and unmasked) is rejected — by
//!   the trailing checksum, or (for hypothetical future unprotected
//!   bytes) by fingerprint/partition validation. There is no input one
//!   bit away from a valid frame that silently changes the answer.
//! * Whole-byte (0xFF XOR) corruption is likewise rejected.
//! * Duplicate delivery is idempotent, conflicting resends are refused,
//!   and delivery order is immaterial: any permutation of the cohort's
//!   frames merges to bit-identical statistics.
//! * Wire-level geometry/fingerprint mismatches surface as the same
//!   [`Error::ShardMismatch`] (same message shape) as in-process sketch
//!   merges — one validation gate, two transports.

use ppdm::prelude::*;
use ppdm_core::federate::{
    drive_round, Coordinator, Delivery, DiscreteCoordinator, DiscreteParty, FaultPlan, Party,
    WireSketch,
};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn noise() -> NoiseModel {
    NoiseModel::gaussian(10.0).unwrap()
}

/// A cohort of `k` continuous parties with deterministic, distinct data.
fn continuous_cohort(noise: &NoiseModel, partition: Partition, k: u32) -> Vec<Party<'_>> {
    (0..k)
        .map(|id| {
            let mut party = Party::new(noise, partition, id, k, 99).unwrap();
            let batch: Vec<f64> = (0..(10 + 7 * id as usize))
                .map(|i| (i as f64 * 13.7 + id as f64 * 5.1) % 120.0 - 10.0)
                .collect();
            party.ingest(&batch).unwrap();
            party
        })
        .collect()
}

/// Asserts that `bytes` with every single-bit flip (and a whole-byte
/// flip) at every position is rejected: either `decode` errors, or the
/// decoded sketch fails validation against the expected channel. Returns
/// how many mutants decode rejected outright.
fn assert_all_flips_rejected(bytes: &[u8], validate: &dyn Fn(&WireSketch) -> bool) -> usize {
    let mut decode_rejected = 0;
    for idx in 0..bytes.len() {
        let masks: [u8; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 0xFF];
        for mask in masks {
            let mut mutant = bytes.to_vec();
            mutant[idx] ^= mask;
            match WireSketch::decode(&mutant) {
                Err(_) => decode_rejected += 1,
                Ok(sketch) => {
                    // A decode that survives must still die in validation;
                    // anything else is a silent wrong-answer path.
                    assert!(
                        !validate(&sketch),
                        "byte {idx} mask {mask:#04x}: corrupt frame accepted silently"
                    );
                }
            }
        }
    }
    decode_rejected
}

#[test]
fn every_single_byte_flip_of_a_continuous_frame_is_rejected() {
    let noise = noise();
    let partition = part(10);
    let parties = continuous_cohort(&noise, partition, 3);
    for (label, bytes) in
        [("plain", parties[1].emit(4).unwrap()), ("masked", parties[1].emit_masked(4).unwrap())]
    {
        let mutants = bytes.len() * 9;
        let rejected = assert_all_flips_rejected(&bytes, &|sketch: &WireSketch| {
            sketch.to_stats(&noise, partition).is_ok()
        });
        // With a trailing checksum over the whole body, decode itself
        // should reject every mutant — validation is a second fence, not
        // the first.
        assert_eq!(rejected, mutants, "{label}: some mutants passed decode");
    }
}

#[test]
fn every_single_byte_flip_of_a_discrete_frame_is_rejected() {
    let channel = RandomizedResponse::new(5, 0.7).unwrap();
    let mut party = DiscreteParty::new(&channel, 0, 2, 7).unwrap();
    party.ingest(&[0, 1, 2, 3, 4, 4, 3, 1, 0, 2, 2]).unwrap();
    for (label, bytes) in
        [("plain", party.emit(1).unwrap()), ("masked", party.emit_masked(1).unwrap())]
    {
        let mutants = bytes.len() * 9;
        let rejected = assert_all_flips_rejected(&bytes, &|sketch: &WireSketch| {
            sketch.to_discrete_stats(&channel).is_ok()
        });
        assert_eq!(rejected, mutants, "{label}: some mutants passed decode");
    }
}

#[test]
fn truncated_and_padded_frames_are_rejected() {
    let noise = noise();
    let partition = part(8);
    let parties = continuous_cohort(&noise, partition, 2);
    let bytes = parties[0].emit(0).unwrap();
    for cut in 0..bytes.len() {
        assert!(WireSketch::decode(&bytes[..cut]).is_err(), "accepted truncation at {cut}");
    }
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(WireSketch::decode(&padded).is_err(), "accepted one trailing junk byte");
    let mut doubled = bytes.clone();
    doubled.extend_from_slice(&bytes);
    assert!(WireSketch::decode(&doubled).is_err(), "accepted concatenated frames");
}

#[test]
fn duplicate_delivery_is_idempotent() {
    let noise = noise();
    let partition = part(12);
    let parties = continuous_cohort(&noise, partition, 4);
    let frames: Vec<Vec<u8>> = parties.iter().map(|p| p.emit_masked(9).unwrap()).collect();

    let mut once = Coordinator::new(&noise, partition, 4, 9, true).unwrap();
    for frame in &frames {
        assert!(matches!(once.submit(frame).unwrap(), Delivery::Accepted { .. }));
    }
    let reference = once.merged().unwrap();

    // Same frames, each delivered three times, interleaved.
    let mut thrice = Coordinator::new(&noise, partition, 4, 9, true).unwrap();
    for frame in frames.iter().chain(frames.iter()).chain(frames.iter().rev()) {
        thrice.submit(frame).unwrap();
    }
    assert!(thrice.is_complete());
    assert_eq!(thrice.merged().unwrap(), reference);

    // Redundant deliveries are reported as duplicates, not re-accepted.
    let mut tagged = Coordinator::new(&noise, partition, 4, 9, true).unwrap();
    assert!(matches!(tagged.submit(&frames[2]).unwrap(), Delivery::Accepted { party: 2 }));
    assert!(matches!(tagged.submit(&frames[2]).unwrap(), Delivery::Duplicate { party: 2 }));
}

#[test]
fn delivery_order_is_commutative() {
    let noise = noise();
    let partition = part(9);
    let parties = continuous_cohort(&noise, partition, 4);
    let frames: Vec<Vec<u8>> = parties.iter().map(|p| p.emit(3).unwrap()).collect();

    let merged_in = |order: &[usize]| {
        let mut coordinator = Coordinator::new(&noise, partition, 4, 3, false).unwrap();
        for &i in order {
            coordinator.submit(&frames[i]).unwrap();
        }
        coordinator.merged().unwrap()
    };
    let reference = merged_in(&[0, 1, 2, 3]);
    for order in [[3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1], [0, 2, 1, 3]] {
        assert_eq!(merged_in(&order), reference, "order {order:?} changed the merge");
    }
}

#[test]
fn conflicting_resend_is_refused() {
    let noise = noise();
    let partition = part(10);
    let mut party = Party::new(&noise, partition, 0, 1, 5).unwrap();
    party.ingest(&[10.0, 20.0]).unwrap();
    let first = party.emit(0).unwrap();
    // The party's sketch moves between emissions — a resend for the same
    // round no longer matches byte-for-byte.
    party.ingest(&[30.0]).unwrap();
    let second = party.emit(0).unwrap();
    assert_ne!(first, second);

    let mut coordinator = Coordinator::new(&noise, partition, 1, 0, false).unwrap();
    coordinator.submit(&first).unwrap();
    let err = coordinator.submit(&second).unwrap_err();
    assert!(matches!(err, Error::ShardMismatch(_)), "got {err:?}");
}

#[test]
fn wrong_round_cohort_or_mask_flag_is_refused() {
    let noise = noise();
    let partition = part(10);
    let parties = continuous_cohort(&noise, partition, 2);

    let mut coordinator = Coordinator::new(&noise, partition, 2, 5, false).unwrap();
    // Wrong round.
    let err = coordinator.submit(&parties[0].emit(6).unwrap()).unwrap_err();
    assert!(matches!(err, Error::ShardMismatch(_)), "got {err:?}");
    // Masked share into an unmasked round.
    let err = coordinator.submit(&parties[0].emit_masked(5).unwrap()).unwrap_err();
    assert!(matches!(err, Error::ShardMismatch(_)), "got {err:?}");
    // Frame from a differently-sized cohort.
    let mut stray = Party::new(&noise, partition, 0, 3, 99).unwrap();
    stray.ingest(&[50.0]).unwrap();
    let err = coordinator.submit(&stray.emit(5).unwrap()).unwrap_err();
    assert!(matches!(err, Error::ShardMismatch(_)), "got {err:?}");
    // The coordinator still accepts the correct frames afterwards.
    coordinator.submit(&parties[0].emit(5).unwrap()).unwrap();
    coordinator.submit(&parties[1].emit(5).unwrap()).unwrap();
    assert!(coordinator.is_complete());
}

#[test]
fn wire_mismatches_share_the_sketch_level_error_shape() {
    // Satellite to the in-process tests in `reconstruct::streaming`: the
    // wire decode path routes through the same `compatible` gate, so the
    // messages match its vocabulary exactly.
    let noise = noise();
    let partition = part(10);
    let parties = continuous_cohort(&noise, partition, 2);
    let sketch = WireSketch::decode(&parties[0].emit(0).unwrap()).unwrap();

    // Fingerprint mismatch: same geometry, different noise channel.
    let other_noise = NoiseModel::gaussian(11.0).unwrap();
    let err = sketch.to_stats(&other_noise, partition).unwrap_err();
    match err {
        Error::ShardMismatch(msg) => {
            assert!(msg.contains("fingerprint"), "unexpected message: {msg}")
        }
        other => panic!("expected ShardMismatch, got {other:?}"),
    }

    // Partition mismatch: same channel, different geometry.
    let err = sketch.to_stats(&noise, part(12)).unwrap_err();
    match err {
        Error::ShardMismatch(msg) => {
            assert!(msg.contains("partitions differ"), "unexpected message: {msg}")
        }
        other => panic!("expected ShardMismatch, got {other:?}"),
    }
}

#[test]
fn faulty_transport_with_retries_still_merges_exactly() {
    let noise = noise();
    let partition = part(14);
    let parties = continuous_cohort(&noise, partition, 5);
    let ids: Vec<u32> = parties.iter().map(|p| p.id()).collect();

    // Expected: the in-process merge of all party sketches.
    let mut expected = parties[0].stats().clone();
    for party in &parties[1..] {
        expected.merge_from(party.stats()).unwrap();
    }

    let plan = FaultPlan {
        drop: 0.25,
        duplicate: 0.25,
        corrupt: 0.25,
        reorder: true,
        seed: 2024,
        max_retries: 64,
        ..FaultPlan::default()
    };
    for masked in [false, true] {
        let mut coordinator = Coordinator::new(&noise, partition, 5, 1, masked).unwrap();
        let report = drive_round(
            &ids,
            &plan,
            |id| {
                let party = &parties[id as usize];
                if masked {
                    party.emit_masked(1)
                } else {
                    party.emit(1)
                }
            },
            |bytes| coordinator.submit(bytes),
        )
        .unwrap();
        assert!(report.complete, "masked={masked}: round did not complete: {report:?}");
        assert!(report.rejected >= report.corrupted, "corrupt frames must be rejected");
        assert_eq!(coordinator.merged().unwrap(), expected, "masked={masked}");
    }
}

#[test]
fn discrete_round_trip_through_faulty_transport() {
    let channel = RandomizedResponse::new(4, 0.55).unwrap();
    let observed: Vec<usize> = (0..500).map(|i| (i * 7 + i / 3) % 4).collect();
    let k = 3u32;
    let parties: Vec<DiscreteParty<'_>> = (0..k)
        .map(|id| {
            let mut party = DiscreteParty::new(&channel, id, k, 31).unwrap();
            let chunk = observed.len() / k as usize;
            let lo = id as usize * chunk;
            let hi = if id + 1 == k { observed.len() } else { lo + chunk };
            party.ingest(&observed[lo..hi]).unwrap();
            party
        })
        .collect();
    let ids: Vec<u32> = parties.iter().map(|p| p.id()).collect();
    let whole = DiscreteSuffStats::from_states(&channel, &observed).unwrap();

    let plan = FaultPlan {
        drop: 0.3,
        duplicate: 0.3,
        corrupt: 0.3,
        reorder: true,
        seed: 7,
        max_retries: 64,
        ..FaultPlan::default()
    };
    let mut coordinator = DiscreteCoordinator::new(&channel, k, 0, true).unwrap();
    let report = drive_round(
        &ids,
        &plan,
        |id| parties[id as usize].emit_masked(0),
        |bytes| coordinator.submit(bytes),
    )
    .unwrap();
    assert!(report.complete, "round did not complete: {report:?}");
    assert_eq!(coordinator.merged().unwrap(), whole);

    // And the federated solve equals the monolithic one, bit for bit.
    let config = DiscreteReconstructionConfig::default();
    let engine = DiscreteReconstructionEngine::new();
    let federated = coordinator.reconstruct_with(&engine, &config).unwrap();
    let monolithic = engine.reconstruct_stats(&channel, &whole, &config, None).unwrap();
    assert_eq!(federated, monolithic);
}
