//! End-to-end pipeline tests spanning all three crates: generate, perturb,
//! reconstruct, train, evaluate — asserting the orderings AS00's evaluation
//! reports.

use ppdm::prelude::*;
use ppdm_core::reconstruct::ReconstructionConfig;

fn quick_config() -> TrainerConfig {
    TrainerConfig {
        cells_override: Some(30),
        reconstruction: ReconstructionConfig { max_iterations: 800, ..Default::default() },
        ..TrainerConfig::default()
    }
}

struct Bench {
    train_d: Dataset,
    test_d: Dataset,
    perturbed: Dataset,
    plan: PerturbPlan,
}

fn bench(function: LabelFunction, privacy: f64, n: usize, seed: u64) -> Bench {
    let (train_d, test_d) = generate_train_test(n, n / 4, function, seed);
    let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, privacy, DEFAULT_CONFIDENCE)
        .expect("valid privacy level");
    let perturbed = plan.perturb_dataset(&train_d, seed + 1);
    Bench { train_d, test_d, perturbed, plan }
}

fn accuracy(b: &Bench, algorithm: TrainingAlgorithm) -> f64 {
    let tree = train(algorithm, Some(&b.train_d), &b.perturbed, &b.plan, &quick_config())
        .expect("training succeeds");
    evaluate(&tree, &b.test_d).accuracy
}

#[test]
fn original_is_the_upper_baseline() {
    let b = bench(LabelFunction::F2, 100.0, 12_000, 1);
    let original = accuracy(&b, TrainingAlgorithm::Original);
    assert!(original > 0.97, "Original should be near-perfect, got {original}");
    for algo in
        [TrainingAlgorithm::Randomized, TrainingAlgorithm::ByClass, TrainingAlgorithm::Local]
    {
        let acc = accuracy(&b, algo);
        assert!(acc <= original + 0.01, "{algo} ({acc}) cannot beat Original ({original})");
    }
}

#[test]
fn byclass_beats_randomized_at_high_privacy() {
    // The paper's central claim, on two functions.
    for (function, seed) in [(LabelFunction::F2, 2), (LabelFunction::F5, 3)] {
        let b = bench(function, 200.0, 16_000, seed);
        let randomized = accuracy(&b, TrainingAlgorithm::Randomized);
        let byclass = accuracy(&b, TrainingAlgorithm::ByClass);
        assert!(
            byclass > randomized + 0.015,
            "{function}: ByClass ({byclass}) should beat Randomized ({randomized})"
        );
    }
}

#[test]
fn local_tracks_byclass() {
    let b = bench(LabelFunction::F2, 100.0, 12_000, 4);
    let byclass = accuracy(&b, TrainingAlgorithm::ByClass);
    let local = accuracy(&b, TrainingAlgorithm::Local);
    assert!((byclass - local).abs() < 0.08, "Local ({local}) should track ByClass ({byclass})");
}

#[test]
fn f1_is_easy_for_everyone() {
    // F1 splits on age alone with wide bands; even Randomized holds up at
    // moderate privacy (the paper's figure shows all algorithms above 90%).
    let b = bench(LabelFunction::F1, 50.0, 8_000, 5);
    for algo in TrainingAlgorithm::ALL {
        let acc = accuracy(&b, algo);
        // Randomized blurs the two age boundaries and pays a few points;
        // everything else should stay comfortably above 90%.
        let floor = if algo == TrainingAlgorithm::Randomized { 0.84 } else { 0.9 };
        assert!(acc > floor, "{algo} on F1 at 50% privacy: {acc}");
    }
}

#[test]
fn accuracy_degrades_with_privacy() {
    // Monotone-ish: allow small non-monotonicity from seed noise, but the
    // ends of the sweep must be clearly ordered.
    let mut accs = Vec::new();
    for privacy in [25.0, 100.0, 200.0] {
        let b = bench(LabelFunction::F2, privacy, 12_000, 6);
        accs.push(accuracy(&b, TrainingAlgorithm::ByClass));
    }
    assert!(
        accs[0] > accs[2] + 0.05,
        "25% privacy ({}) should clearly beat 200% ({})",
        accs[0],
        accs[2]
    );
    assert!(accs[1] <= accs[0] + 0.02, "100% should not beat 25%: {accs:?}");
}

#[test]
fn trees_use_relevant_attributes() {
    // On clean data the tree must split only on the function's inputs.
    let b = bench(LabelFunction::F3, 25.0, 8_000, 7);
    let tree = train(
        TrainingAlgorithm::Original,
        Some(&b.train_d),
        &b.perturbed,
        &b.plan,
        &quick_config(),
    )
    .expect("training succeeds");
    let relevant: Vec<usize> =
        LabelFunction::F3.relevant_attributes().iter().map(|a| a.index()).collect();
    for attr in tree.used_attributes() {
        assert!(relevant.contains(&attr), "Original tree split on irrelevant attribute {attr}");
    }
}
