//! Property harness for the federated sketch-exchange protocol.
//!
//! The load-bearing claims, each asserted *exactly* (no tolerances):
//!
//! * k-party federated reconstruction (k ∈ 1..8, arbitrary record
//!   splits including empty parties) is **bit-identical** to the
//!   monolithic solve over the concatenated records — continuous and
//!   discrete, masked and unmasked, both kernels / both solvers;
//! * the masked (secure-aggregation) merge equals the unmasked merge
//!   for every cohort size and session seed — mask cancellation is
//!   exact integer arithmetic, not an approximation;
//! * `encode ∘ decode` is the identity on wire sketches, and the
//!   decoded sketch converts back to the exact original statistics.
//!
//! Run with `PROPTEST_CASES=<n>` to rescale case counts (CI pins it).

use ppdm::prelude::*;
use ppdm_core::federate::{Coordinator, DiscreteCoordinator, DiscreteParty, Party, WireSketch};
use ppdm_core::reconstruct::{DiscreteSolver, LikelihoodKernel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn noise_for(gaussian: bool, scale: f64) -> NoiseModel {
    if gaussian {
        NoiseModel::gaussian(scale).unwrap()
    } else {
        NoiseModel::uniform(scale).unwrap()
    }
}

/// A bimodal perturbed sample — structured enough that reconstruction
/// does real work.
fn sample(n: usize, seed: u64, noise: &NoiseModel) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 30.0 } else { 70.0 };
            center + rng.gen_range(-9.0..9.0)
        })
        .collect();
    noise.perturb_all(&xs, &mut rng)
}

/// Splits a sample into `pieces` contiguous batches with sizes drawn
/// from the seed. Empty batches are possible (and deliberate): a party
/// that has seen no records is still a protocol participant.
fn split(obs: &[f64], pieces: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cuts: Vec<usize> = (0..pieces - 1).map(|_| rng.gen_range(0..=obs.len())).collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for cut in cuts {
        out.push(obs[start..cut].to_vec());
        start = cut;
    }
    out.push(obs[start..].to_vec());
    out
}

/// Builds a k-party cohort over one continuous channel, each party
/// ingesting its split of the sample.
fn cohort<'a>(
    noise: &'a NoiseModel,
    partition: Partition,
    splits: &[Vec<f64>],
    session_seed: u64,
) -> Vec<Party<'a>> {
    let k = splits.len() as u32;
    splits
        .iter()
        .enumerate()
        .map(|(id, batch)| {
            let mut party = Party::new(noise, partition, id as u32, k, session_seed).unwrap();
            party.ingest(batch).unwrap();
            party
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn federated_reconstruction_is_bit_identical_to_monolithic(
        seed in 0u64..10_000,
        n in 1usize..400,
        k in 1usize..8,
        cells in 4usize..24,
        gaussian in 0u32..2,
        scale in 2.0..30.0f64,
        masked in 0u32..2,
        cell_average in 0u32..2,
    ) {
        let noise = noise_for(gaussian == 1, scale);
        let partition = part(cells);
        let obs = sample(n, seed, &noise);
        let splits = split(&obs, k, seed ^ 0x5EED);
        let masked = masked == 1;
        let round = (seed % 1000) as u32;
        let parties = cohort(&noise, partition, &splits, seed ^ 0xFACE);

        let mut coordinator =
            Coordinator::new(&noise, partition, k as u32, round, masked).unwrap();
        for party in &parties {
            let bytes = if masked { party.emit_masked(round) } else { party.emit(round) };
            coordinator.submit(&bytes.unwrap()).unwrap();
        }
        prop_assert!(coordinator.is_complete());

        // The merged statistics equal the sketch of the concatenated
        // sample, exactly.
        let merged = coordinator.merged().unwrap();
        let whole = SuffStats::from_values(&noise, partition, &obs).unwrap();
        prop_assert_eq!(&merged, &whole);

        // And the federated solve is bit-identical to the monolithic
        // one, through one shared engine (bucketed mode — the sketch's
        // native path).
        let kernel = if cell_average == 1 {
            LikelihoodKernel::CellAverage
        } else {
            LikelihoodKernel::Midpoint
        };
        let config = ReconstructionConfig { kernel, ..Default::default() };
        let engine = ReconstructionEngine::new();
        let federated = coordinator.reconstruct_with(&engine, &config).unwrap();
        let monolithic = engine.reconstruct(&noise, partition, &obs, &config).unwrap();
        prop_assert_eq!(federated, monolithic);
    }

    #[test]
    fn masked_merge_equals_unmasked_merge_for_every_cohort_and_seed(
        seed in 0u64..10_000,
        session_seed in 0u64..u64::MAX,
        n in 0usize..300,
        k in 1usize..8,
        cells in 4usize..20,
    ) {
        let noise = NoiseModel::gaussian(12.0).unwrap();
        let partition = part(cells);
        let obs = sample(n, seed, &noise);
        let splits = split(&obs, k, seed ^ 0x77);
        let round = 5u32;
        let parties = cohort(&noise, partition, &splits, session_seed);

        let mut plain = Coordinator::new(&noise, partition, k as u32, round, false).unwrap();
        let mut secure = Coordinator::new(&noise, partition, k as u32, round, true).unwrap();
        for party in &parties {
            plain.submit(&party.emit(round).unwrap()).unwrap();
            secure.submit(&party.emit_masked(round).unwrap()).unwrap();
        }
        // Exactly equal merged sketches — masking is invisible after the
        // cohort sum, even on an empty sample (n = 0 is allowed here:
        // merging needs no observations, only solving does).
        prop_assert_eq!(plain.merged().unwrap(), secure.merged().unwrap());
    }

    #[test]
    fn discrete_federated_reconstruction_is_bit_identical_to_monolithic(
        seed in 0u64..10_000,
        n in 1usize..400,
        k in 1usize..8,
        states in 2usize..6,
        keep in 0.35..0.95f64,
        masked in 0u32..2,
        iterative in 0u32..2,
    ) {
        let channel = RandomizedResponse::new(states, keep).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let observed: Vec<usize> = (0..n).map(|_| rng.gen_range(0..states)).collect();
        let masked = masked == 1;
        let round = 2u32;

        // Split the observed states across k parties (empties allowed).
        let mut cuts: Vec<usize> = (0..k - 1).map(|_| rng.gen_range(0..=n)).collect();
        cuts.sort_unstable();
        let mut splits: Vec<&[usize]> = Vec::with_capacity(k);
        let mut start = 0;
        for &cut in &cuts {
            splits.push(&observed[start..cut]);
            start = cut;
        }
        splits.push(&observed[start..]);

        let parties: Vec<DiscreteParty<'_>> = splits
            .iter()
            .enumerate()
            .map(|(id, batch)| {
                let mut party =
                    DiscreteParty::new(&channel, id as u32, k as u32, seed ^ 0xD15C).unwrap();
                party.ingest(batch).unwrap();
                party
            })
            .collect();

        let mut coordinator =
            DiscreteCoordinator::new(&channel, k as u32, round, masked).unwrap();
        for party in &parties {
            let bytes = if masked { party.emit_masked(round) } else { party.emit(round) };
            coordinator.submit(&bytes.unwrap()).unwrap();
        }
        prop_assert!(coordinator.is_complete());

        let merged = coordinator.merged().unwrap();
        let whole = ppdm_core::reconstruct::DiscreteSuffStats::from_states(&channel, &observed)
            .unwrap();
        prop_assert_eq!(&merged, &whole);

        let solver = if iterative == 1 {
            DiscreteSolver::Iterative
        } else {
            DiscreteSolver::ClosedForm
        };
        let config = DiscreteReconstructionConfig { solver, ..Default::default() };
        let engine = DiscreteReconstructionEngine::new();
        let federated = coordinator.reconstruct_with(&engine, &config).unwrap();
        let monolithic =
            engine.reconstruct_stats(&channel, &whole, &config, None).unwrap();
        prop_assert_eq!(federated, monolithic);
    }

    #[test]
    fn encode_decode_roundtrip_is_exact(
        seed in 0u64..10_000,
        n in 0usize..300,
        cells in 4usize..20,
        party in 0u32..6,
        k_extra in 0u32..4,
        round in 0u32..100,
        masked in 0u32..2,
    ) {
        let cohort_size = party + 1 + k_extra;
        let noise = NoiseModel::laplace(8.0).unwrap();
        let partition = part(cells);
        let obs = sample(n, seed, &noise);
        let stats = SuffStats::from_values(&noise, partition, &obs).unwrap();
        let mut wire = WireSketch::from_stats(&stats, party, round, cohort_size).unwrap();
        if masked == 1 {
            wire.mask(seed ^ 0xBEEF).unwrap();
        }
        let decoded = WireSketch::decode(&wire.encode()).unwrap();
        prop_assert_eq!(&decoded, &wire);
        // Re-encoding the decoded sketch reproduces the bytes.
        prop_assert_eq!(decoded.encode(), wire.encode());
        if masked == 0 {
            // An unmasked sketch converts back to the exact statistics.
            prop_assert_eq!(decoded.to_stats(&noise, partition).unwrap(), stats);
        }

        // Discrete counterpart.
        let channel = RandomizedResponse::new(4, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let states: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let dstats =
            ppdm_core::reconstruct::DiscreteSuffStats::from_states(&channel, &states).unwrap();
        let mut dwire =
            WireSketch::from_discrete_stats(&dstats, party, round, cohort_size).unwrap();
        if masked == 1 {
            dwire.mask(seed ^ 0xBEEF).unwrap();
        }
        let ddecoded = WireSketch::decode(&dwire.encode()).unwrap();
        prop_assert_eq!(&ddecoded, &dwire);
        if masked == 0 {
            prop_assert_eq!(ddecoded.to_discrete_stats(&channel).unwrap(), dstats);
        }
    }
}
