//! The privacy metric across the real benchmark attributes, and the
//! privacy/accuracy tradeoff it induces.

use ppdm::core::privacy::{interval_width, noise_for_privacy, privacy_pct};
use ppdm::prelude::*;

#[test]
fn plan_hits_requested_privacy_on_all_attributes() {
    for kind in [NoiseKind::Uniform, NoiseKind::Gaussian] {
        for target in [10.0, 25.0, 50.0, 100.0, 200.0] {
            let plan =
                PerturbPlan::for_privacy(kind, target, DEFAULT_CONFIDENCE).expect("valid target");
            for attr in Attribute::ALL {
                let achieved = plan.privacy_pct(attr, DEFAULT_CONFIDENCE).expect("valid plan");
                assert!(
                    (achieved - target).abs() < 1e-6,
                    "{kind} {attr} target {target} achieved {achieved}"
                );
            }
        }
    }
}

#[test]
fn privacy_is_relative_to_each_domain() {
    // The same absolute noise is much more private on age (width 60) than
    // on loan (width 500k).
    let noise = NoiseModel::gaussian(30.0).expect("valid sigma");
    let on_age = privacy_pct(&noise, DEFAULT_CONFIDENCE, &Attribute::Age.domain()).unwrap();
    let on_loan = privacy_pct(&noise, DEFAULT_CONFIDENCE, &Attribute::Loan.domain()).unwrap();
    assert!(on_age > 100.0, "sigma 30 on age: {on_age}%");
    assert!(on_loan < 1.0, "sigma 30 on loan: {on_loan}%");
}

#[test]
fn gaussian_concentrates_more_than_uniform_at_equal_privacy() {
    // At the same 95%-confidence privacy level, Gaussian noise has smaller
    // standard deviation than uniform noise — the mechanism behind the
    // paper's "Gaussian provides more privacy at higher confidence levels".
    let domain = Attribute::Salary.domain();
    for target in [50.0, 100.0, 200.0] {
        let u = noise_for_privacy(NoiseKind::Uniform, target, DEFAULT_CONFIDENCE, &domain)
            .expect("valid");
        let g = noise_for_privacy(NoiseKind::Gaussian, target, DEFAULT_CONFIDENCE, &domain)
            .expect("valid");
        assert!(
            g.noise_std_dev() < u.noise_std_dev(),
            "target {target}: gaussian sigma {} vs uniform sigma {}",
            g.noise_std_dev(),
            u.noise_std_dev()
        );
        // But at 99.9% confidence the same Gaussian hides the value in a
        // *wider* interval than the uniform does.
        let wu = interval_width(&u, 0.999).expect("valid confidence");
        let wg = interval_width(&g, 0.999).expect("valid confidence");
        assert!(wg > wu * 0.85, "99.9% widths: gaussian {wg} vs uniform {wu}");
    }
}

#[test]
fn more_privacy_costs_accuracy() {
    let (train_d, test_d) = generate_train_test(10_000, 2_500, LabelFunction::F5, 31);
    let mut cfg = TrainerConfig { cells_override: Some(30), ..TrainerConfig::default() };
    cfg.reconstruction.max_iterations = 800;
    let mut accs = Vec::new();
    for privacy in [25.0, 200.0] {
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, privacy, DEFAULT_CONFIDENCE)
            .expect("valid privacy");
        let perturbed = plan.perturb_dataset(&train_d, 32);
        let tree = train(TrainingAlgorithm::ByClass, None, &perturbed, &plan, &cfg)
            .expect("training succeeds");
        accs.push(evaluate(&tree, &test_d).accuracy);
    }
    assert!(
        accs[0] > accs[1] + 0.05,
        "accuracy at 25% ({}) should clearly exceed 200% ({})",
        accs[0],
        accs[1]
    );
}
