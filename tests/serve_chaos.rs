//! Chaos suite for the crash-isolated serve plane: seeded failpoint
//! kills, WAL torn tails, and crash-recover-resume equivalence.
//!
//! The load-bearing claims:
//!
//! * killing shard workers mid-flood loses **zero** records — the
//!   supervised restart resumes with the same sketch, and the shutdown
//!   merge is bit-identical to a monolithic ingest;
//! * killing the re-solver mid-flood never tears a snapshot, never
//!   regresses an epoch, and never loses a drained delta (the
//!   pending-delta redo protocol);
//! * a WAL truncated at **any** byte boundary recovers to exactly the
//!   state at the last complete frame, and crash → recover → resume →
//!   shutdown produces a merge bit-identical to a run that never
//!   crashed;
//! * an armed-but-never-firing registry, and a registry-free run, are
//!   behaviorally identical — failpoints disarmed are free.
//!
//! Everything is seeded: a failing schedule replays exactly. Run with
//! `PROPTEST_CASES=<n>` to rescale the property cases (CI pins it).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppdm::prelude::*;
use ppdm_core::serve::sites;
use ppdm_core::serve::wal;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn noise() -> Arc<dyn NoiseDensity> {
    Arc::new(NoiseModel::gaussian(12.0).unwrap())
}

fn channel() -> NoiseModel {
    NoiseModel::gaussian(12.0).unwrap()
}

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let channel = channel();
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 30.0 } else { 70.0 };
            center + rng.gen_range(-9.0..9.0)
        })
        .collect();
    channel.perturb_all(&xs, &mut rng)
}

/// Fast cadence, zero restart backoff (chaos tests restart a lot; spin,
/// don't sleep).
fn chaos_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        mailbox_capacity: 8,
        batch_capacity: 256,
        max_pooled: 64,
        resolve_interval: Duration::from_millis(5),
        restart_backoff: BackoffPolicy::none(),
        ..ServeConfig::default()
    }
}

/// A unique temp path per test; best-effort cleanup via [`TempWal`].
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> TempWal {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        TempWal(
            std::env::temp_dir().join(format!("ppdm_chaos_{}_{n}_{tag}.wal", std::process::id())),
        )
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Feeds `observed` through `service` in `batch`-sized chunks, retrying
/// refusals, and returns the shutdown report.
fn flood_and_shutdown(
    service: IngestService,
    observed: &[f64],
    batch: usize,
) -> ppdm_core::serve::ServeReport {
    let mut handle = service.handle();
    for chunk in observed.chunks(batch) {
        loop {
            match handle.try_ingest(chunk) {
                Ok(_) => break,
                Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
    }
    service.shutdown().unwrap()
}

fn monolithic(observed: &[f64]) -> SuffStats {
    SuffStats::from_values(&channel(), part(24), observed).unwrap()
}

#[test]
fn worker_kills_mid_flood_lose_no_records() {
    // Panic every 40th pass through the worker loop, up to 12 times:
    // with 2 shards and ~80 batches each worker dies several times while
    // producers are actively flooding it.
    let registry = Arc::new(FaultRegistry::new(0xC4A05));
    registry.arm(
        sites::WORKER_LOOP,
        FaultSpec::new(FaultKind::Panic, Trigger::Every(40)).with_limit(12),
    );
    let config = ServeConfig { faults: Some(registry.clone()), ..chaos_config(2) };
    let observed = sample(12_000, 31);
    let service = IngestService::spawn(noise(), part(24), config).unwrap();
    let report = flood_and_shutdown(service, &observed, 75);

    assert!(
        report.stats.worker_restarts >= 1,
        "the schedule must actually kill workers: {:?}",
        registry.site_stats(sites::WORKER_LOOP)
    );
    assert_eq!(
        report.stats.worker_restarts,
        registry.site_stats(sites::WORKER_LOOP).fired,
        "every injected panic is one supervised restart"
    );
    assert_eq!(report.merged.count(), observed.len() as u64, "no record lost to any crash");
    assert_eq!(
        report.merged.counts(),
        monolithic(&observed).counts(),
        "crashed-and-restarted ingest is bit-identical to monolithic"
    );
    assert!(report.solve_error.is_none());
}

#[test]
fn resolver_kills_mid_flood_keep_snapshots_monotone_and_exact() {
    // Kill the resolver at the top of several cycles and fail one solve;
    // a racing reader asserts snapshots never tear or regress while the
    // supervisor restarts underneath it.
    let registry = Arc::new(FaultRegistry::new(0xDEAD));
    registry.arm(
        sites::RESOLVER_CYCLE,
        FaultSpec::new(FaultKind::Panic, Trigger::Every(3)).with_limit(5),
    );
    registry.arm(
        sites::RESOLVER_SOLVE,
        FaultSpec::new(FaultKind::Error, Trigger::OnHit(2)).with_limit(1),
    );
    let config = ServeConfig { faults: Some(registry.clone()), ..chaos_config(2) };
    let observed = sample(10_000, 77);
    let service = IngestService::spawn(noise(), part(24), config).unwrap();

    let mut reader = service.reader();
    let stop = Arc::new(AtomicU64::new(0));
    let report = std::thread::scope(|s| {
        let watcher = {
            let stop = stop.clone();
            s.spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed_snaps = 0u64;
                while stop.load(Ordering::Acquire) == 0 {
                    if let Some(snap) = reader.refresh() {
                        assert!(
                            snap.epoch >= last_epoch,
                            "epoch regressed across a resolver restart"
                        );
                        last_epoch = snap.epoch;
                        // Never torn: the posterior's mass always equals
                        // its record stamp, crash or no crash.
                        assert!(
                            (snap.histogram.total() - snap.records as f64).abs() < 1e-6,
                            "torn snapshot: mass {} vs records {}",
                            snap.histogram.total(),
                            snap.records
                        );
                        observed_snaps += 1;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                observed_snaps
            })
        };
        let mut handle = service.handle();
        for chunk in observed.chunks(120) {
            loop {
                match handle.try_ingest(chunk) {
                    Ok(_) => break,
                    Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected ingest error: {e}"),
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = service.shutdown().unwrap();
        stop.store(1, Ordering::Release);
        watcher.join().unwrap();
        report
    });

    assert!(
        report.stats.resolver_restarts >= 1,
        "the schedule must actually kill the resolver: {:?}",
        registry.site_stats(sites::RESOLVER_CYCLE)
    );
    assert_eq!(report.stats.solve_failures, 1, "exactly one injected solve failure");
    assert_eq!(report.merged.count(), observed.len() as u64, "no drained delta lost to a crash");
    assert_eq!(report.merged.counts(), monolithic(&observed).counts());
    assert_eq!(report.stats.records_behind, 0, "the final solve caught up completely");
    let snap = report.final_snapshot.expect("final snapshot exists");
    assert_eq!(snap.records, observed.len() as u64);
}

#[test]
fn failing_solves_degrade_and_shutdown_still_reports_exactly() {
    // Every solve fails: nothing publishes (there is no previous
    // posterior to republish), health says degraded — and shutdown still
    // drains every mailbox and returns the exact merge. This is the
    // regression test for shutdown during a degraded resolver.
    let registry = Arc::new(FaultRegistry::new(1));
    registry.arm(sites::RESOLVER_SOLVE, FaultSpec::new(FaultKind::Error, Trigger::Always));
    let config = ServeConfig { faults: Some(registry), ..chaos_config(2) };
    let observed = sample(4_000, 5);
    let service = IngestService::spawn(noise(), part(24), config).unwrap();
    let mut handle = service.handle();
    for chunk in observed.chunks(100) {
        loop {
            match handle.try_ingest(chunk) {
                Ok(_) => break,
                Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
    }
    // Let at least one failing cycle run so degradation is observable
    // before shutdown.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.stats().solve_failures == 0 {
        assert!(std::time::Instant::now() < deadline, "no solve attempt in 10s");
        std::thread::sleep(Duration::from_millis(2));
    }
    let health = service.health();
    assert!(!health.is_healthy());
    assert!(health.degraded);
    assert!(health.consecutive_solve_failures >= 1);

    let report = service.shutdown().unwrap();
    assert!(matches!(report.solve_error, Some(Error::FaultInjected { .. })));
    assert_eq!(
        report.merged.count(),
        observed.len() as u64,
        "a degraded resolver must not cost shutdown a single record"
    );
    assert_eq!(report.merged.counts(), monolithic(&observed).counts());
    assert!(report.final_snapshot.is_none(), "every solve failed, so nothing ever published");
    assert!(report.stats.records_behind > 0, "unsolved records are reported, not hidden");
}

#[test]
fn deadline_overruns_publish_fresh_but_degraded() {
    // A zero deadline means every solve is late: posteriors still flow
    // (fresh data), each flagged degraded.
    let config = ServeConfig { solve_deadline: Some(Duration::ZERO), ..chaos_config(1) };
    let observed = sample(3_000, 9);
    let service = IngestService::spawn(noise(), part(24), config).unwrap();
    let mut handle = service.handle();
    for chunk in observed.chunks(150) {
        loop {
            match handle.try_ingest(chunk) {
                Ok(_) => break,
                Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.stats().epoch == 0 {
        assert!(std::time::Instant::now() < deadline, "no publish in 10s");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(service.stats().degraded, "a zero deadline flags every solve late");
    let report = service.shutdown().unwrap();
    let snap = report.final_snapshot.expect("late solves still publish");
    assert!(snap.degraded, "the snapshot itself carries the lateness flag");
    assert_eq!(snap.records, observed.len() as u64, "late data is still fresh data");
    assert_eq!(report.merged.counts(), monolithic(&observed).counts());
    assert!(report.solve_error.is_none(), "late is not failed");
}

#[test]
fn disarmed_registry_is_bit_identical_to_no_registry() {
    let observed = sample(6_000, 13);
    // Run A: no registry at all.
    let service = IngestService::spawn(noise(), part(24), chaos_config(2)).unwrap();
    let plain = flood_and_shutdown(service, &observed, 90);
    // Run B: a registry attached with nothing armed.
    let registry = Arc::new(FaultRegistry::new(999));
    let config = ServeConfig { faults: Some(registry.clone()), ..chaos_config(2) };
    let service = IngestService::spawn(noise(), part(24), config).unwrap();
    let armed = flood_and_shutdown(service, &observed, 90);

    assert_eq!(registry.total_fired(), 0, "nothing armed, nothing fired");
    assert_eq!(plain.merged.counts(), armed.merged.counts(), "disarmed must change nothing");
    assert_eq!(plain.merged.count(), armed.merged.count());
    assert_eq!(plain.stats.worker_restarts, 0);
    assert_eq!(armed.stats.worker_restarts, 0);
    assert_eq!(armed.stats.resolver_restarts, 0);
    let (a, b) = (plain.final_snapshot.unwrap(), armed.final_snapshot.unwrap());
    assert_eq!(a.records, b.records);
    assert_eq!(a.histogram, b.histogram, "identical ingest, bit-identical posterior");
}

#[test]
fn wal_torn_at_every_byte_boundary_recovers_the_longest_valid_prefix() {
    // Build a known log (3 deltas, a checkpoint, 2 deltas), remember the
    // exact cumulative state at every frame boundary, then for EVERY
    // byte length k assert recovery == state at the last complete frame
    // within k bytes, and that the file is truncated to that boundary.
    let noise = channel();
    let partition = part(12);
    let temp = TempWal::new("every_boundary");
    let deltas: Vec<SuffStats> = (0..5)
        .map(|i| SuffStats::from_values(&noise, partition, &sample(40 + i * 7, 100 + i as u64)))
        .collect::<Result<_>>()
        .unwrap();
    // boundaries[i] = (byte offset after frame i, expected merged state).
    let mut boundaries: Vec<(u64, SuffStats)> = Vec::new();
    {
        let mut writer = WalWriter::open(&WalConfig::new(&temp.0)).unwrap();
        let mut running = SuffStats::new(&noise, partition).unwrap();
        for (i, delta) in deltas.iter().enumerate() {
            if i == 3 {
                // A checkpoint mid-log: recovery after it must not
                // re-read the earlier deltas.
                writer.append_checkpoint(&running).unwrap();
                boundaries.push((writer.bytes(), running.clone()));
            }
            writer.append_delta(delta).unwrap();
            running.merge_from(delta).unwrap();
            boundaries.push((writer.bytes(), running.clone()));
        }
    }
    let full = std::fs::read(&temp.0).unwrap();
    let header = 8u64;

    for k in 0..=full.len() as u64 {
        std::fs::write(&temp.0, &full[..k as usize]).unwrap();
        let recovered = wal::recover(&temp.0, &noise, partition).unwrap();
        // The expected state: the last boundary at or before k (empty
        // before the first frame completes).
        // A tear inside the 8-byte magic truncates to an empty file; a
        // complete header with no complete frame keeps just the header.
        let empty_prefix = if k < header { 0 } else { header };
        let expected = boundaries
            .iter()
            .rev()
            .find(|(end, _)| *end <= k)
            .map(|(end, state)| (*end, state.clone()))
            .unwrap_or_else(|| (empty_prefix, SuffStats::new(&noise, partition).unwrap()));
        assert_eq!(
            recovered.merged.counts(),
            expected.1.counts(),
            "tear at byte {k}: recovered state must be the last complete frame"
        );
        assert_eq!(recovered.wal_bytes, expected.0, "tear at byte {k}: retained prefix mismatch");
        assert_eq!(
            std::fs::metadata(&temp.0).unwrap().len(),
            expected.0,
            "tear at byte {k}: the file must be truncated to the valid prefix"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|v| v.parse().ok()).unwrap_or(8),
    })]

    // A single flipped bit anywhere past the header makes exactly the
    // frames from the damaged one onward unrecoverable — never an
    // earlier one, never a crash, never silent absorption of the
    // corrupted frame.
    #[test]
    fn wal_single_bit_flip_truncates_at_the_damaged_frame(
        frames in 1usize..6,
        flip_seed in 0u64..10_000,
    ) {
        let noise = channel();
        let partition = part(10);
        let temp = TempWal::new("bitflip");
        let mut boundaries: Vec<(u64, SuffStats)> = Vec::new();
        {
            let mut writer = WalWriter::open(&WalConfig::new(&temp.0)).unwrap();
            let mut running = SuffStats::new(&noise, partition).unwrap();
            for i in 0..frames {
                let delta =
                    SuffStats::from_values(&noise, partition, &sample(30, flip_seed + i as u64))
                        .unwrap();
                writer.append_delta(&delta).unwrap();
                running.merge_from(&delta).unwrap();
                boundaries.push((writer.bytes(), running.clone()));
            }
        }
        let mut bytes = std::fs::read(&temp.0).unwrap();
        let mut rng = StdRng::seed_from_u64(flip_seed);
        // Flip one bit strictly past the 8-byte header (header damage is
        // the hard-refusal path, tested separately).
        let idx = rng.gen_range(8..bytes.len());
        bytes[idx] ^= 1u8 << rng.gen_range(0..8u32);
        std::fs::write(&temp.0, &bytes).unwrap();

        let recovered = wal::recover(&temp.0, &noise, partition);
        // Geometry-echo damage inside a checksum-colliding frame is
        // impossible for a single bit flip (the checksum catches it), so
        // recovery must succeed by truncation.
        let recovered = recovered.unwrap();
        // Expected: everything before the frame containing the flipped
        // byte survives; the damaged frame and everything after are cut.
        let expected = boundaries
            .iter()
            .rev()
            .find(|(end, _)| *end <= idx as u64)
            .map(|(_, state)| state.clone())
            .unwrap_or_else(|| SuffStats::new(&noise, partition).unwrap());
        prop_assert_eq!(
            recovered.merged.counts(),
            expected.counts(),
            "flip at byte {} must truncate at its frame, not before or after",
            idx
        );
    }
}

#[test]
fn crash_recover_resume_is_bit_identical_to_a_monolithic_run() {
    // Service A ingests a prefix with a WAL, shuts down cleanly, and
    // then we simulate a crash by tearing the log at 60%. Recovery gives
    // the state at the last surviving frame; a seeded successor ingests
    // exactly the records the recovered state is missing; its final
    // merge must be bit-identical to a run that never crashed.
    let observed = sample(8_000, 55);
    let noise_model = channel();
    let partition = part(24);
    let temp = TempWal::new("resume");

    // Phase 1: one shard (so ingest order maps deterministically onto
    // WAL order — deltas are merges of a prefix of the stream), paced
    // slower than the resolve cadence so the log accumulates many
    // delta frames instead of one giant drain.
    let config = ServeConfig {
        wal: Some(WalConfig::new(&temp.0)),
        resolve_interval: Duration::from_millis(2),
        ..chaos_config(1)
    };
    let service = IngestService::spawn(noise(), partition, config).unwrap();
    let mut handle = service.handle();
    for chunk in observed[..5_000].chunks(100) {
        loop {
            match handle.try_ingest(chunk) {
                Ok(_) => break,
                Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(3));
    }
    let report_a = service.shutdown().unwrap();
    assert_eq!(report_a.merged.count(), 5_000);
    assert!(report_a.wal_error.is_none());
    assert!(report_a.stats.wal_frames > 10, "pacing must yield many delta frames");

    // Sanity: a cleanly sealed log replays to exactly the shutdown merge.
    let clean = wal::recover(&temp.0, &noise_model, partition).unwrap();
    assert_eq!(clean.merged.counts(), report_a.merged.counts(), "sealed log == shutdown merge");
    assert_eq!(clean.truncated_bytes, 0);

    // Phase 2: tear the tail (simulated crash mid-append).
    let full = std::fs::metadata(&temp.0).unwrap().len();
    let torn = (full as f64 * 0.6) as u64;
    let file = std::fs::OpenOptions::new().write(true).open(&temp.0).unwrap();
    file.set_len(torn).unwrap();
    drop(file);

    // Phase 3: recover. With a single shard and in-order batches, the
    // recovered sketch covers exactly the first k records.
    let recovered = IngestService::recover(&temp.0, &noise_model, partition).unwrap();
    let k = recovered.merged.count() as usize;
    assert!(k < 5_000, "the tear must actually cost some tail frames");
    assert_eq!(
        recovered.merged.counts(),
        monolithic_part(&observed[..k], partition).counts(),
        "recovered state is the exact prefix the surviving frames cover"
    );

    // Phase 4: resume from the recovered state (same WAL path — the
    // truncated log keeps growing) and ingest everything not covered.
    let config = ServeConfig { wal: Some(WalConfig::new(&temp.0)), ..chaos_config(1) };
    let service = IngestService::spawn_seeded(
        noise(),
        partition,
        config,
        Arc::new(ReconstructionEngine::new()),
        recovered.merged,
    )
    .unwrap();
    let report_b = flood_and_shutdown(service, &observed[k..], 100);

    // The whole point: crash + recover + resume == never crashed.
    let whole = monolithic_part(&observed, partition);
    assert_eq!(report_b.merged.count(), observed.len() as u64);
    assert_eq!(
        report_b.merged.counts(),
        whole.counts(),
        "crash-recover-resume must be bit-identical to the uninterrupted run"
    );
    // And the resumed log, sealed at shutdown, replays to the same.
    let sealed = wal::recover(&temp.0, &noise_model, partition).unwrap();
    assert_eq!(sealed.merged.counts(), whole.counts(), "final WAL covers everything");
    // Solves agree too: same sketch, same posterior.
    let engine = ReconstructionEngine::new();
    let cfg = ReconstructionConfig::default();
    let from_resumed =
        engine.reconstruct_stats(&noise_model, &report_b.merged, &cfg, None).unwrap();
    let from_whole = engine.reconstruct_stats(&noise_model, &whole, &cfg, None).unwrap();
    assert_eq!(from_resumed, from_whole, "bit-identical sketches solve bit-identically");
}

fn monolithic_part(observed: &[f64], partition: Partition) -> SuffStats {
    SuffStats::from_values(&channel(), partition, observed).unwrap()
}

#[test]
fn wal_under_resolver_crashes_never_double_counts_a_delta() {
    // Panic the resolver on a schedule while a WAL is active: the
    // pending-delta redo protocol must neither lose a delta nor append
    // it twice — recovery of the sealed log equals the shutdown merge.
    let registry = Arc::new(FaultRegistry::new(0xBEEF));
    registry.arm(
        sites::RESOLVER_CYCLE,
        FaultSpec::new(FaultKind::Panic, Trigger::Every(4)).with_limit(6),
    );
    registry
        .arm(sites::WAL_APPEND, FaultSpec::new(FaultKind::Panic, Trigger::OnHit(3)).with_limit(1));
    let temp = TempWal::new("redo");
    let config = ServeConfig {
        faults: Some(registry.clone()),
        wal: Some(WalConfig::new(&temp.0)),
        ..chaos_config(2)
    };
    let observed = sample(9_000, 21);
    let noise_model = channel();
    let partition = part(24);
    let service = IngestService::spawn(noise(), partition, config).unwrap();
    let mut handle = service.handle();
    for chunk in observed.chunks(90) {
        loop {
            match handle.try_ingest(chunk) {
                Ok(_) => break,
                Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = service.shutdown().unwrap();
    assert!(report.stats.resolver_restarts >= 1, "the schedule must kill the resolver");
    assert_eq!(report.merged.count(), observed.len() as u64, "no delta lost across crashes");
    assert_eq!(report.merged.counts(), monolithic_part(&observed, partition).counts());
    assert!(report.wal_error.is_none());
    let recovered = wal::recover(&temp.0, &noise_model, partition).unwrap();
    assert_eq!(
        recovered.merged.counts(),
        report.merged.counts(),
        "sealed WAL == shutdown merge: no delta dropped, none appended twice"
    );
}

#[test]
fn ingest_with_backoff_retries_then_reports_typed_exhaustion() {
    // One shard, 1-slot mailbox, and a worker wedged by injected delays:
    // a small retry budget exhausts with a typed error; the batch leaves
    // no residue.
    let registry = Arc::new(FaultRegistry::new(3));
    registry.arm(
        sites::WORKER_LOOP,
        FaultSpec::new(FaultKind::Delay(Duration::from_millis(50)), Trigger::Always),
    );
    let config = ServeConfig {
        mailbox_capacity: 1,
        resolve_interval: Duration::from_secs(3600),
        faults: Some(registry),
        ..chaos_config(1)
    };
    let service = IngestService::spawn(noise(), part(10), config).unwrap();
    let mut handle = service.handle();
    // Fill the single mailbox slot (the worker is asleep on the delay).
    let batch = vec![50.0; 16];
    let mut queued = 0u64;
    loop {
        match handle.try_ingest(&batch) {
            Ok(_) => queued += 1,
            Err(Error::Backpressure { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // A tiny budget cannot outwait a 50ms-per-message worker.
    let err = handle.ingest_with_backoff(&batch, BackoffPolicy::none(), 3).unwrap_err();
    match err {
        Error::RetriesExhausted { attempts, pending } => {
            assert_eq!(attempts, 3);
            assert_eq!(pending, 1, "exactly the refused batch is outstanding");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // A patient budget succeeds once the worker wakes.
    handle
        .ingest_with_backoff(
            &batch,
            BackoffPolicy::new(Duration::from_millis(5), Duration::from_millis(80)),
            200,
        )
        .expect("a patient retry budget eventually lands the batch");
    let report = service.shutdown().unwrap();
    assert_eq!(
        report.merged.count(),
        (queued + 1) * batch.len() as u64,
        "admitted batches all arrive; exhausted retries leave nothing behind"
    );
}
