//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `ident in strategy` parameters and an optional
//! `#![proptest_config(...)]` header, range strategies over integers and
//! floats, `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Shrinking is not
//! implemented: a failing case panics with the failing inputs' values left
//! to the assertion message. Case generation is deterministic per test
//! name, so failures reproduce.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Runner configuration (`ProptestConfig` in the prelude).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; this offline stand-in defaults
            // lower to keep `cargo test` fast, and honors the same
            // PROPTEST_CASES escape hatch.
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
            Config { cases }
        }
    }
}

/// Deterministic per-test RNG used by the [`proptest!`] expansion.
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Size specification for collection strategies: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// A length drawn uniformly from the half-open range.
        Range(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Range(r)
        }
    }

    /// Strategy for `Vec<T>` built by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Range(r) => rng.gen_range(r.clone()),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing vectors of `element` with length drawn from
    /// `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The `prop::` facade (`prop::collection::vec(...)` in tests).
pub mod prop {
    pub use crate::collection;
}

/// The customary glob import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut successes = 0u32;
            let mut rejects = 0u32;
            while successes < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => successes += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(msg)) => {
                        rejects += 1;
                        assert!(
                            rejects <= 10_000,
                            "too many prop_assume rejections in {}: {msg}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed after {} cases: {msg}",
                            stringify!($name),
                            successes,
                        );
                    }
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0.0..1.0f64, n in 3usize..10, k in 0u32..=4) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert!(k <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(0.0..10.0f64, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|x| (0.0..10.0).contains(x)));
        }

        #[test]
        fn fixed_size_vec(xs in prop::collection::vec(0u32..3, 4)) {
            prop_assert_eq!(xs.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        let s = 0.0..1.0f64;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
