//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] data model as JSON text.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Renders any serializable value as JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(T::deserialize(&value)?)
}

fn render(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error(format!("non-finite number {n} is not representable in JSON")));
            }
            // `{:?}` prints shortest-roundtrip floats ("2.5", "1e300").
            out.push_str(&format!("{n:?}"));
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("malformed array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("malformed object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-walk UTF-8: back up and take one char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_shapes() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a \"quoted\" string\n".into())),
            ("xs".into(), Value::Seq(vec![Value::Num(1.0), Value::Num(-2.5), Value::Null])),
            ("ok".into(), Value::Bool(true)),
        ]);
        let text = {
            let mut s = String::new();
            render(&v, &mut s).unwrap();
            s
        };
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        assert_eq!(p.value().unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1.5f64, -2.0, 1e300];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("{").is_err());
    }
}
