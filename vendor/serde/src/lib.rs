//! Offline stand-in for `serde`.
//!
//! Rather than serde's zero-copy visitor architecture, this vendored
//! replacement uses a simple self-describing [`Value`] tree as the data
//! model: `Serialize` renders into a `Value`, `Deserialize` rebuilds from
//! one. `serde_json` (also vendored) renders/parses `Value` as JSON text.
//! The `#[derive(Serialize, Deserialize)]` macros are re-exported from the
//! companion `serde_derive` crate and cover the shapes this workspace
//! uses: structs with named fields and enums with unit or struct variants.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers are represented exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError(format!("expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = <Vec<T>>::deserialize(v)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {found}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::deserialize(
                                it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError("tuple too long".into()));
                        }
                        Ok(out)
                    }
                    other => Err(DeError(format!("expected tuple sequence, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(usize::deserialize(&7usize.serialize()).unwrap(), 7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(<[u32; 3]>::deserialize(&[1u32, 2, 3].serialize()).unwrap(), [1, 2, 3]);
        let tup: (Vec<u32>, f64) =
            Deserialize::deserialize(&(vec![4u32], 0.5f64).serialize()).unwrap();
        assert_eq!(tup, (vec![4], 0.5));
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u8::deserialize(&Value::Str("x".into())).is_err());
        assert!(u8::deserialize(&Value::Num(1.5)).is_err());
        assert!(<[u32; 2]>::deserialize(&[1u32].serialize()).is_err());
    }
}
