//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of `rand`'s API it actually uses: [`RngCore`], [`Rng`]
//! (`gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), but with the same
//! reproducibility contract: identical seeds yield identical sequences.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the given (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// Samples a value from the type's standard distribution
    /// (`[0, 1)` for floats, uniform for integers and bool).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 2^-53; the standard conversion of the top 53 bits.
    (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Range-sampling traits.
    pub mod uniform {
        use crate::{unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range that a uniform value of type `T` can be drawn from.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty f64 range");
                let v = self.start + (self.end - self.start) * unit_f64(rng);
                // Guard the pathological rounding case v == end.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty f64 range");
                lo + (hi - lo) * unit_f64(rng)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                (Range { start: self.start as f64, end: self.end as f64 }).sample_single(rng) as f32
            }
        }

        /// Draws uniformly from `[0, span)` without modulo bias worth
        /// caring about (widening-multiply method).
        #[inline]
        fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            ((rng.next_u64() as u128 * span as u128) >> 64) as u64
        }

        macro_rules! int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty integer range");
                        let span = (self.end as i128 - self.start as i128) as u128 as u64;
                        (self.start as i128 + below(rng, span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty integer range");
                        let span = (hi as i128 - lo as i128) as u128 as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + below(rng, span + 1) as i128) as $t
                    }
                }
            )*};
        }

        int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
            let w: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 9];
        for _ in 0..1_000 {
            let v = rng.gen_range(1..=9);
            seen[(v - 1) as usize] = true;
            let u: usize = rng.gen_range(0..4);
            assert!(u < 4);
        }
        assert!(seen.iter().all(|s| *s), "inclusive range must reach every value");
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_and_variance_are_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }
}
