//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! `TokenStream` is walked by hand to extract the type's shape, and the
//! generated impl is assembled as source text and re-parsed. Supported
//! shapes — which cover every derive site in this workspace — are:
//!
//! * structs with named fields, and
//! * enums whose variants are unit or have named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum of unit and/or struct variants: `(variant, fields)`.
    Enum { name: String, variants: Vec<(String, Vec<String>)> },
}

/// Skips one attribute (`#` already consumed ⇒ consume the `[...]` group).
fn skip_attr(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        // Inner attribute `#![...]`.
        if p.as_char() == '!' {
            iter.next();
        }
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
        other => panic!("malformed attribute near {other:?}"),
    }
}

/// Extracts the field names from the token stream of a `{ ... }` body with
/// named fields. Types are skipped by scanning to the next top-level comma
/// (angle-bracket depth tracked; bracketed/parenthesized types arrive as
/// single groups so they cannot leak commas).
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and doc comments on the field.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    skip_attr(&mut iter);
                }
                _ => break,
            }
        }
        // Skip a visibility modifier.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("expected field identifier, found {tree:?}");
        };
        fields.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        // Skip the type up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        for tree in iter.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Extracts `(variant, fields)` pairs from an enum body.
fn enum_variants(body: TokenStream) -> Vec<(String, Vec<String>)> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    skip_attr(&mut iter);
                }
                _ => break,
            }
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            panic!("expected variant identifier, found {tree:?}");
        };
        let mut fields = Vec::new();
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = named_fields(g.stream());
                iter.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("tuple enum variants are not supported by the vendored serde derive");
            }
            _ => {}
        }
        variants.push((variant.to_string(), fields));
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("expected `,` after variant, found {other:?}"),
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility before the struct/enum keyword.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                skip_attr(&mut iter);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the vendored serde derive");
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "only brace-bodied types are supported by the vendored serde derive, found {other:?}"
        ),
    };
    match keyword.as_str() {
        "struct" => Shape::Struct { name, fields: named_fields(body) },
        "enum" => Shape::Enum { name, variants: enum_variants(body) },
        other => panic!("cannot derive for `{other}`"),
    }
}

fn field_map(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&{})),", access(f)))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(""))
}

fn field_build(fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize({source}.get(\"{f}\").ok_or_else(|| \
                 ::serde::DeError::new(\"missing field `{f}`\"))?)?,"
            )
        })
        .collect()
}

/// Derives `serde::Serialize` (the vendored stand-in's trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let map = field_map(&fields, |f| format!("self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ {map} }}\n}}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| {
                    if fields.is_empty() {
                        format!(
                            "{name}::{variant} => ::serde::Value::Str(\"{variant}\".to_string()),"
                        )
                    } else {
                        let bindings = fields.join(", ");
                        let map = field_map(fields, |f| f.to_string());
                        format!(
                            "{name}::{variant} {{ {bindings} }} => ::serde::Value::Map(vec![(\
                             \"{variant}\".to_string(), {map})]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ match self {{ {} }} }}\n}}",
                arms.join("")
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored stand-in's trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let build = field_build(&fields, "v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !matches!(v, ::serde::Value::Map(_)) {{\n\
                 return ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected map for struct {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name} {{ {build} }})\n}}\n}}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(variant, _)| {
                    format!("\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),")
                })
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(variant, fields)| {
                    let build = field_build(fields, "inner");
                    format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant} {{ {build} }}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\
                 \"unknown unit variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {map}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\
                 \"expected variant of {name}, found {{other:?}}\"))),\n}}\n}}\n}}",
                unit = unit_arms.join(""),
                map = map_arms.join(""),
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}
