//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness with the same API shape as
//! criterion's common subset (`criterion_group!`/`criterion_main!`,
//! `bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`), so bench sources compile and run unchanged. It prints
//! one line per benchmark (mean wall-clock time per iteration) instead of
//! criterion's statistical report. Benches must set `harness = false`.
//!
//! Tuning via environment variables: `BENCH_TARGET_MS` (measurement
//! budget per benchmark, default 300) and `BENCH_MAX_ITERS`
//! (cap, default 50).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures under a measurement loop.
pub struct Bencher {
    target: Duration,
    max_iters: u64,
    /// Mean time per iteration of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    fn new(target: Duration, max_iters: u64) -> Self {
        Bencher { target, max_iters, last_mean: None }
    }

    /// Times `f`, first estimating its cost with one warmup call, then
    /// running as many iterations as fit the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_started = Instant::now();
        black_box(f());
        let one = warmup_started.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / one.as_nanos()).clamp(1, self.max_iters as u128);
        let started = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_mean = Some(started.elapsed() / iters as u32);
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The benchmark driver.
pub struct Criterion {
    target: Duration,
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(env_u64("BENCH_TARGET_MS", 300)),
            max_iters: env_u64("BENCH_MAX_ITERS", 50),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher::new(self.target, self.max_iters);
        f(&mut bencher);
        match bencher.last_mean {
            Some(mean) => println!("bench {id:<55} {mean:>12.2?}/iter"),
            None => println!("bench {id:<55} (no measurement)"),
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the stand-in sizes its
    /// measurement loop from the time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks one case of the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&id, &mut f);
        self
    }

    /// Benchmarks one case with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&id, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { target: Duration::from_millis(5), max_iters: 10 };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran >= 2, "warmup + at least one measured iteration");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { target: Duration::from_millis(2), max_iters: 3 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u32, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
