//! Offline stand-in for `rayon`.
//!
//! Implements the narrow slice-parallelism surface this workspace uses —
//! `par_iter().map(f).collect::<Vec<_>>()`, `par_chunks_mut(..).for_each`,
//! [`join`], [`current_num_threads`], and [`current_thread_index`] — on
//! top of `std::thread::scope`. Work is split into one contiguous chunk
//! per available core; results are returned in input order. There is no
//! work-stealing pool: jobs here are coarse (whole reconstruction
//! problems or fixed-size E-step blocks), so chunked scoped threads
//! capture virtually all of the available speedup without any unsafe
//! code or global state.
//!
//! # Thread-count control
//!
//! [`current_num_threads`] honors the real rayon's `RAYON_NUM_THREADS`
//! environment variable (a positive integer; `0`, unset, or unparsable
//! values fall back to [`std::thread::available_parallelism`]). The
//! variable is re-read on every call, so tests can vary the thread
//! count at runtime without rebuilding a global pool.
//!
//! # Nesting and oversubscription
//!
//! Real rayon multiplexes nested parallelism onto one work-stealing
//! pool. This stand-in spawns scoped OS threads instead, so unbounded
//! nesting would oversubscribe the machine. To keep nesting bounded,
//! every worker thread carries a *pool slot*: its index (exposed via
//! [`current_thread_index`], mirroring rayon's API) and a *budget* —
//! the share of the machine it may use for further nested parallelism.
//! A fan-out across `w` workers on `t` available threads hands each
//! worker a budget of `t / w` (at least 1); nested parallel calls size
//! themselves by [`available_inner_parallelism`] instead of the raw
//! machine width, and run inline when the budget is 1. The net effect:
//! an outer `par_iter` over a large batch claims the whole pool and
//! nested calls degrade to serial, while an outer call over a single
//! item (run inline, no worker spawned) leaves the full budget to inner
//! parallelism.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// `(index, budget)` for pool workers; `None` on free threads.
    static POOL_SLOT: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Number of worker threads a top-level parallel operation will use:
/// `RAYON_NUM_THREADS` if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// The calling thread's index within its pool fan-out, or `None` when
/// the caller is not a pool worker — the same contract as rayon's
/// `current_thread_index`. Use it to detect "am I already inside a
/// parallel region?".
pub fn current_thread_index() -> Option<usize> {
    POOL_SLOT.with(|slot| slot.get()).map(|(index, _)| index)
}

/// How many threads a *nested* parallel call may use from here: the
/// caller's worker budget when inside a pool fan-out, otherwise
/// [`current_num_threads`]. Stand-in-specific (real rayon multiplexes
/// nesting onto its global pool instead of budgeting).
pub fn available_inner_parallelism() -> usize {
    POOL_SLOT.with(|slot| slot.get()).map(|(_, budget)| budget).unwrap_or_else(current_num_threads)
}

/// Runs `f` with the thread marked as pool worker `index` holding
/// `budget` threads of nested parallelism, restoring the previous slot
/// afterwards.
fn with_pool_slot<R>(index: usize, budget: usize, f: impl FnOnce() -> R) -> R {
    POOL_SLOT.with(|slot| {
        let prev = slot.get();
        slot.set(Some((index, budget.max(1))));
        let result = f();
        slot.set(prev);
        result
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = available_inner_parallelism();
    if budget <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || with_pool_slot(1, budget / 2, b));
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Parallel iterator facade.
pub mod iter {
    /// `.par_iter()` on slice-like containers.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by the parallel iterator.
        type Item: Sync + 'data;

        /// Returns an ordered parallel iterator over references.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// An ordered parallel iterator over `&T`.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each element through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap { items: self.items, f }
        }
    }

    /// The result of [`ParIter::map`]; terminal operations run the work.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Runs the map in parallel and collects results in input order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
            C: FromIterator<R>,
        {
            // The indirection through `&T -> R` with `'data`-tied input
            // references mirrors rayon's semantics for borrowed items.
            let f = &self.f;
            parallel_map_ref(self.items, f).into_iter().collect()
        }
    }

    fn parallel_map_ref<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let threads = super::available_inner_parallelism().min(items.len()).max(1);
        if threads <= 1 {
            // Inline on the calling thread: a single-item (or budget-1)
            // map claims no workers, so nested parallelism keeps the
            // caller's full budget.
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let workers = items.len().div_ceil(chunk);
        let budget = (threads / workers).max(1);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(w, c)| {
                    s.spawn(move || {
                        super::with_pool_slot(w, budget, || c.iter().map(f).collect::<Vec<R>>())
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

/// Parallel operations over mutable slices.
pub mod slice {
    /// `.par_chunks_mut(n)` on mutable slices: disjoint fixed-size
    /// chunks, visited in parallel.
    pub trait ParallelSliceMut<T: Send> {
        /// Returns a parallel visitor over disjoint chunks of
        /// `chunk_size` elements (the last chunk may be shorter).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
            ChunksMut { slice: self, chunk_size: chunk_size.max(1) }
        }
    }

    /// Disjoint mutable chunks awaiting a terminal `for_each`.
    pub struct ChunksMut<'data, T> {
        slice: &'data mut [T],
        chunk_size: usize,
    }

    impl<'data, T: Send> ChunksMut<'data, T> {
        /// Pairs each chunk with its index (chunk `i` starts at element
        /// `i * chunk_size`).
        pub fn enumerate(self) -> EnumerateChunksMut<'data, T> {
            EnumerateChunksMut { inner: self }
        }

        /// Visits every chunk, potentially in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }
    }

    /// Indexed disjoint mutable chunks awaiting a terminal `for_each`.
    pub struct EnumerateChunksMut<'data, T> {
        inner: ChunksMut<'data, T>,
    }

    impl<'data, T: Send> EnumerateChunksMut<'data, T> {
        /// Visits every `(index, chunk)` pair, potentially in parallel.
        /// Chunks are distributed contiguously across at most
        /// [`crate::available_inner_parallelism`] workers; with a budget
        /// of 1 the visit runs inline in index order.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            let chunk_size = self.inner.chunk_size;
            let slice = self.inner.slice;
            if slice.is_empty() {
                return;
            }
            let blocks = slice.len().div_ceil(chunk_size);
            let threads = crate::available_inner_parallelism().min(blocks).max(1);
            if threads <= 1 {
                for pair in slice.chunks_mut(chunk_size).enumerate() {
                    f(pair);
                }
                return;
            }
            let mut indexed: Vec<(usize, &mut [T])> =
                slice.chunks_mut(chunk_size).enumerate().collect();
            let per_worker = indexed.len().div_ceil(threads);
            let workers = indexed.len().div_ceil(per_worker);
            let budget = (threads / workers).max(1);
            let f = &f;
            std::thread::scope(|s| {
                let handles: Vec<_> = indexed
                    .chunks_mut(per_worker)
                    .enumerate()
                    .map(|(w, group)| {
                        s.spawn(move || {
                            crate::with_pool_slot(w, budget, || {
                                for (index, chunk) in group.iter_mut() {
                                    f((*index, &mut **chunk));
                                }
                            })
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
                }
            });
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParIter, ParMap};
    pub use crate::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// `RAYON_NUM_THREADS` is process-global; serialize the tests that
    /// touch it.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn env_var_overrides_thread_count() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(super::current_num_threads(), 3);
        std::env::set_var("RAYON_NUM_THREADS", "0");
        let fallback = super::current_num_threads();
        assert!(fallback >= 1, "zero means unset, not zero threads");
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(super::current_num_threads(), fallback);
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let mut xs = vec![0u64; 103];
        xs.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 10 + j) as u64;
            }
        });
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(xs, (0..103).collect::<Vec<u64>>());
    }

    #[test]
    fn workers_see_an_index_and_free_threads_do_not() {
        let _guard = ENV_LOCK.lock().unwrap();
        assert_eq!(super::current_thread_index(), None);
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let xs: Vec<u64> = (0..16).collect();
        let marks: Vec<bool> =
            xs.par_iter().map(|_| super::current_thread_index().is_some()).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert!(marks.iter().all(|&m| m), "every fanned-out item runs on a marked worker");
        assert_eq!(super::current_thread_index(), None, "the marker never leaks");
    }

    #[test]
    fn single_item_maps_keep_the_full_inner_budget() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let one = [1u8];
        let budgets: Vec<usize> =
            one.par_iter().map(|_| super::available_inner_parallelism()).collect();
        // Inline execution: no worker claimed, full budget available.
        assert_eq!(budgets, vec![4]);
        let many: Vec<u8> = (0..8).collect();
        let budgets: Vec<usize> =
            many.par_iter().map(|_| super::available_inner_parallelism()).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert!(
            budgets.iter().all(|&b| b == 1),
            "a saturating fan-out leaves workers no nested budget, got {budgets:?}"
        );
    }
}
