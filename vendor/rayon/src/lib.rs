//! Offline stand-in for `rayon`.
//!
//! Implements the narrow slice-parallelism surface this workspace uses —
//! `par_iter().map(f).collect::<Vec<_>>()`, [`join`], and
//! [`current_num_threads`] — on top of `std::thread::scope`. Work is split
//! into one contiguous chunk per available core; results are returned in
//! input order. There is no work-stealing pool: jobs here are coarse
//! (whole reconstruction problems), so chunked scoped threads capture
//! virtually all of the available speedup without any unsafe code or
//! global state.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Parallel iterator facade.
pub mod iter {
    /// `.par_iter()` on slice-like containers.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by the parallel iterator.
        type Item: Sync + 'data;

        /// Returns an ordered parallel iterator over references.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// An ordered parallel iterator over `&T`.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each element through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap { items: self.items, f }
        }
    }

    /// The result of [`ParIter::map`]; terminal operations run the work.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Runs the map in parallel and collects results in input order.
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
            C: FromIterator<R>,
        {
            // The indirection through `&T -> R` with `'data`-tied input
            // references mirrors rayon's semantics for borrowed items.
            let f = &self.f;
            parallel_map_ref(self.items, f).into_iter().collect()
        }
    }

    fn parallel_map_ref<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let threads = super::current_num_threads().min(items.len()).max(1);
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
    }
}
