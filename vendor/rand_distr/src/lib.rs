//! Offline stand-in for `rand_distr`: the [`Distribution`] trait and a
//! Box-Muller [`Normal`] distribution, which is all this workspace uses.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that can produce samples of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// A normal (Gaussian) distribution with the given mean and standard
/// deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller. u1 is mapped into (0, 1] so the log is finite.
        let u1: f64 = 1.0 - rng.gen_range(0.0..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_match() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..200_000).map(|_| normal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.02, "std {}", var.sqrt());
    }
}
