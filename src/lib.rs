//! # ppdm
//!
//! A from-scratch Rust reproduction of *Privacy-Preserving Data Mining*
//! (Agrawal & Srikant, SIGMOD 2000): learn decision-tree classifiers from
//! training data whose sensitive values were randomized at the source, by
//! reconstructing original value *distributions* — never the values
//! themselves.
//!
//! This facade re-exports the three library crates:
//!
//! * [`core`] ([`ppdm_core`]) — randomization operators, the
//!   confidence-interval privacy metric, distribution reconstruction
//!   built around a batched, kernel-caching
//!   [`ReconstructionEngine`](ppdm_core::reconstruct::ReconstructionEngine),
//!   and the sharded ingest/serving layer
//!   ([`IngestService`](ppdm_core::serve::IngestService)) that decouples
//!   million-records/sec perturbed-stream ingest from background
//!   re-solving, plus the federated sketch-exchange protocol
//!   ([`Party`](ppdm_core::federate::Party) /
//!   [`Coordinator`](ppdm_core::federate::Coordinator)) whose k-party
//!   solve is bit-identical to the monolithic one.
//! * [`datagen`] ([`ppdm_datagen`]) — the AIS92 synthetic benchmark the
//!   paper evaluates on, plus dataset perturbation.
//! * [`tree`] ([`ppdm_tree`]) — gini decision trees and the five training
//!   algorithms (Original, Randomized, Global, ByClass, Local), plus a
//!   naive-Bayes classifier over reconstructed distributions.
//! * [`assoc`] ([`ppdm_assoc`]) — the association-rule extension: Apriori
//!   over randomized transactions with channel-inversion support
//!   estimation.
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline and the
//! `ppdm-bench` crate for the harnesses that regenerate every figure and
//! table of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ppdm_assoc as assoc;
pub use ppdm_core as core;
pub use ppdm_datagen as datagen;
pub use ppdm_tree as tree;

/// The most common imports in one place.
pub mod prelude {
    pub use ppdm_core::domain::{Domain, Partition};
    pub use ppdm_core::fault::{
        Backoff, BackoffPolicy, FaultKind, FaultRegistry, FaultSpec, Injector, Trigger,
    };
    pub use ppdm_core::federate::{
        drive_round, drive_round_with, Coordinator, Delivery, DiscreteCoordinator, DiscreteParty,
        FaultPlan, Party, RoundReport, WireSketch,
    };
    pub use ppdm_core::privacy::{
        interval_width, noise_for_privacy, privacy_pct, NoiseKind, DEFAULT_CONFIDENCE,
    };
    pub use ppdm_core::randomize::{
        DiscreteChannel, NoiseDensity, NoiseModel, RandomizedResponse, StochasticMatrix,
    };
    pub use ppdm_core::reconstruct::{
        reconstruct, CacheStats, DiscreteReconstructionConfig, DiscreteReconstructionEngine,
        DiscreteSuffStats, IncrementalReconstructor, ReconstructionConfig, ReconstructionEngine,
        ReconstructionJob, ShardedAccumulator, StoppingRule, SuffStats,
    };
    pub use ppdm_core::serve::{
        BatchPool, HealthReport, IngestHandle, IngestService, PoolStats, PosteriorSnapshot,
        ServeConfig, ServeReport, ServiceStats, SnapshotCell, SnapshotReader, WalConfig,
        WalRecovery, WalWriter,
    };
    pub use ppdm_core::stats::Histogram;
    pub use ppdm_core::{Error, Result};
    pub use ppdm_datagen::{
        generate, generate_train_test, Attribute, Class, Dataset, LabelFunction, PerturbPlan,
        PerturbedBatchStream, Record,
    };
    pub use ppdm_tree::{
        evaluate, train, train_naive_bayes, DecisionTree, Evaluation, NaiveBayes, TrainerConfig,
        TrainingAlgorithm, TreeConfig,
    };
}
