//! Regenerates the golden reconstruction fixtures under `tests/fixtures/`.
//!
//! Run after an *intentional* change to reconstruction numerics:
//!
//! ```bash
//! cargo run --bin regen_fixtures
//! git diff tests/fixtures/   # review the drift before committing it
//! ```
//!
//! See `tests/README.md` for when regenerating is (and is not) the right
//! response to a `golden_reconstruction` failure.

// The scenario definitions are shared with `tests/golden_reconstruction.rs`
// (both include the same file), not exported from the `ppdm` library —
// fixture scaffolding is test infrastructure, not API.
#[path = "../../tests/support/fixtures.rs"]
mod fixtures;

use fixtures::{
    discrete_scenarios, federate_scenarios, fixture_path, render, render_discrete, render_federate,
    scenarios,
};

fn write_fixture(name: &str, json: String) {
    let path = fixture_path(name);
    let changed = match std::fs::read_to_string(&path) {
        Ok(existing) => existing != json,
        Err(_) => true,
    };
    std::fs::write(&path, &json).expect("write fixture");
    println!("{} {}", if changed { "rewrote " } else { "unchanged" }, path.display());
}

fn main() {
    let dir = fixture_path("probe").parent().expect("fixture files live in a directory").to_owned();
    std::fs::create_dir_all(&dir).expect("create tests/fixtures/");
    for scenario in scenarios() {
        write_fixture(scenario.name, render(&scenario));
    }
    for scenario in discrete_scenarios() {
        write_fixture(scenario.name(), render_discrete(&scenario));
    }
    for scenario in federate_scenarios() {
        write_fixture(scenario.name(), render_federate(&scenario));
    }
}
