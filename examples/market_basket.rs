//! Privacy-preserving market-basket analysis (the association-rule
//! extension): a retailer's customers randomize their baskets item-wise
//! before submission; the retailer still recovers the true frequent
//! itemsets and association rules by inverting the randomization channel.
//!
//! ```text
//! cargo run --release --example market_basket
//! ```

use ppdm::assoc::apriori::{frequent_itemsets, mine_with, rules_from, AprioriConfig};
use ppdm::assoc::{estimated_support_oracle, generate_baskets, BasketConfig, ItemRandomizer};

fn main() -> ppdm::core::Result<()> {
    let db = generate_baskets(&BasketConfig::retail_demo(), 50_000, 99);
    let config = AprioriConfig { min_support: 0.05, max_len: 3 };

    // What an all-seeing miner would find (ground truth).
    let truth = frequent_itemsets(&db, &config);

    // What customers actually submit: keep each item with p = 0.7, insert
    // decoys with q = 0.05.
    let randomizer = ItemRandomizer::new(0.7, 0.05)?;
    let randomized = randomizer.perturb_set(&db, 100);
    println!(
        "channel: keep 70%, insert 5% -> seeing an item of 30% support only\n\
         implies it was really bought with {:.0}% probability\n",
        100.0 * randomizer.breach_probability(0.3)?
    );

    // Privacy-preserving mining: estimated supports via channel inversion.
    let oracle = estimated_support_oracle(&randomized, &randomizer);
    let mined = mine_with(&randomized, &config, oracle);

    println!("{:<12} {:>10} {:>12}", "itemset", "true supp", "estimated");
    for f in truth.iter().filter(|f| f.items.len() >= 2) {
        let est = mined
            .iter()
            .find(|m| m.items == f.items)
            .map(|m| format!("{:.2}%", 100.0 * m.support))
            .unwrap_or_else(|| "missed".into());
        println!("{:<12} {:>9.2}% {:>12}", format!("{:?}", f.items), 100.0 * f.support, est);
    }

    let rules = rules_from(&mined, 0.6);
    println!("\nconfident rules recovered from randomized baskets:");
    for rule in rules.iter().take(8) {
        println!(
            "  {:?} => {:?}  (supp {:.1}%, conf {:.0}%)",
            rule.antecedent,
            rule.consequent,
            100.0 * rule.support,
            100.0 * rule.confidence
        );
    }
    Ok(())
}
