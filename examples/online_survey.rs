//! The paper's motivating scenario: an online survey whose respondents
//! won't reveal their true age or income, but will submit *randomized*
//! values. The analyst reconstructs the population distribution — exposing
//! structure (a bimodal age profile) that is invisible in the randomized
//! data itself.
//!
//! ```text
//! cargo run --release --example online_survey
//! ```

use ppdm::core::domain::{Domain, Partition};
use ppdm::core::privacy::{entropy, noise_for_privacy, NoiseKind, DEFAULT_CONFIDENCE};
use ppdm::core::reconstruct::{reconstruct, ReconstructionConfig};
use ppdm::core::stats::{total_variation, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> ppdm::core::Result<()> {
    // A population of survey respondents: students (~22) and retirees (~70).
    let mut rng = StdRng::seed_from_u64(2024);
    let ages: Vec<f64> = (0..50_000)
        .map(|_| {
            if rng.gen_bool(0.55) {
                22.0 + rng.gen_range(-4.0..4.0) + rng.gen_range(-4.0..4.0)
            } else {
                70.0 + rng.gen_range(-6.0..6.0) + rng.gen_range(-6.0..6.0)
            }
        })
        .collect();

    let domain = Domain::new(14.0, 84.0)?;
    // Each respondent perturbs locally before submitting.
    let noise = noise_for_privacy(NoiseKind::Gaussian, 100.0, DEFAULT_CONFIDENCE, &domain)?;
    let submitted = noise.perturb_all(&ages, &mut rng);

    // The analyst reconstructs the age distribution.
    let partition = Partition::new(domain, 35)?;
    let truth = Histogram::from_values(partition, &ages);
    let naive = Histogram::from_values(partition, &submitted);
    let result = reconstruct(&noise, partition, &submitted, &ReconstructionConfig::bayes())?;

    println!("age   | original | submitted | reconstructed");
    println!("------+----------+-----------+--------------");
    for i in 0..partition.len() {
        let bar = |mass: f64| "#".repeat((mass / 400.0).round() as usize);
        println!(
            "{:>5.0} | {:<8} | {:<9} | {}",
            partition.midpoint(i),
            bar(truth.mass(i)),
            bar(naive.mass(i)),
            bar(result.histogram.mass(i))
        );
    }

    println!(
        "\ntotal variation vs truth: submitted {:.3}, reconstructed {:.3} ({} iterations)",
        total_variation(&naive, &truth)?,
        total_variation(&result.histogram, &truth)?,
        result.iterations
    );
    println!(
        "entropy privacy of the noise (AA01 extension): {:.1} years-equivalent",
        entropy::inherent_privacy(&noise)
    );
    Ok(())
}
