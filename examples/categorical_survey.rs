//! Randomized response for categorical questions (the paper's future-work
//! direction for categorical attributes, implemented as an extension).
//!
//! Respondents answer a sensitive 4-way question ("have you ever ...?")
//! truthfully only with probability p; the analyst inverts the response
//! channel in closed form to recover the population proportions.
//!
//! ```text
//! cargo run --release --example categorical_survey
//! ```

use ppdm::core::randomize::RandomizedResponse;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> ppdm::core::Result<()> {
    const CATEGORIES: [&str; 4] = ["never", "rarely", "monthly", "weekly"];
    let true_shares = [0.55, 0.25, 0.15, 0.05];
    let n = 200_000usize;

    // Ground truth sample (the analyst never sees this).
    let mut rng = StdRng::seed_from_u64(11);
    let answers: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            for (i, share) in true_shares.iter().enumerate() {
                acc += share;
                if u < acc {
                    return i;
                }
            }
            true_shares.len() - 1
        })
        .collect();

    // Respondents keep their true answer with p = 0.6, otherwise pick
    // uniformly at random.
    let rr = RandomizedResponse::new(CATEGORIES.len(), 0.6)?;
    let submitted = rr.perturb_all(&answers, &mut rng)?;
    println!(
        "channel: keep probability {:.0}%, overall flip probability {:.0}%\n",
        100.0 * rr.keep_prob(),
        100.0 * rr.flip_prob()
    );

    let mut observed = vec![0.0f64; CATEGORIES.len()];
    for s in &submitted {
        observed[*s] += 1.0;
    }
    let estimated = rr.reconstruct(&observed)?;

    println!("{:<10} {:>8} {:>10} {:>11}", "answer", "true %", "observed %", "estimated %");
    for (i, name) in CATEGORIES.iter().enumerate() {
        println!(
            "{:<10} {:>7.2}% {:>9.2}% {:>10.2}%",
            name,
            100.0 * true_shares[i],
            100.0 * observed[i] / n as f64,
            100.0 * estimated[i] / n as f64
        );
    }
    println!(
        "\nThe observed distribution is flattened toward uniform by the channel;\n\
         inverting it recovers the true proportions to within sampling error."
    );
    Ok(())
}
