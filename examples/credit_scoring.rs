//! A lender builds a loan-risk model from data that applicants refused to
//! share in the clear — AS00's classification pipeline on the benchmark's
//! hardest function (F5: risk bands over age, salary, and loan amount),
//! comparing all five training algorithms across privacy levels.
//!
//! ```text
//! cargo run --release --example credit_scoring [-- --train 50000]
//! ```

use ppdm::prelude::*;

fn main() -> Result<()> {
    let n_train = std::env::args()
        .skip_while(|a| a != "--train")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let (train_data, test_data) = generate_train_test(n_train, 5_000, LabelFunction::F5, 7);

    println!("loan-risk model (F5), {n_train} applicants, Gaussian randomization\n");
    println!("{:<10} {:>8} {:>12} {:>12}", "privacy", "", "", "");
    println!("{:<10} {:>8} {:>12} {:>12}", "algorithm", "50%", "100%", "200%");

    let config = TrainerConfig::default();
    let mut results: Vec<(TrainingAlgorithm, Vec<f64>)> =
        TrainingAlgorithm::ALL.iter().map(|a| (*a, Vec::new())).collect();
    for privacy in [50.0, 100.0, 200.0] {
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, privacy, DEFAULT_CONFIDENCE)?;
        let perturbed = plan.perturb_dataset(&train_data, 8 + privacy as u64);
        for (algorithm, accs) in &mut results {
            let tree = train(*algorithm, Some(&train_data), &perturbed, &plan, &config)?;
            accs.push(100.0 * evaluate(&tree, &test_data).accuracy);
        }
    }
    for (algorithm, accs) in &results {
        println!(
            "{:<10} {:>7.2}% {:>11.2}% {:>11.2}%",
            algorithm.name(),
            accs[0],
            accs[1],
            accs[2]
        );
    }
    println!(
        "\nThe reconstruction-based algorithms (ByClass, Local) retain most of the\n\
         Original accuracy while the lender never observes a true salary or loan."
    );
    Ok(())
}
