//! Quickstart: the complete AS00 pipeline in fifty lines.
//!
//! Data providers perturb their records with Gaussian noise calibrated to
//! 100% privacy at 95% confidence; the server reconstructs per-class value
//! distributions and trains a decision tree that comes close to one trained
//! on the raw data — without ever seeing a single true value.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppdm::prelude::*;

fn main() -> Result<()> {
    // 1. The "true" world: 20,000 labeled records (function F2 of the
    //    benchmark: creditworthiness bands over age and salary).
    let (train_data, test_data) = generate_train_test(20_000, 4_000, LabelFunction::F2, 42);

    // 2. Client side: every attribute gets noise worth 100% of its domain
    //    width at 95% confidence. The server only ever sees `perturbed`.
    let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 100.0, DEFAULT_CONFIDENCE)?;
    let perturbed = plan.perturb_dataset(&train_data, 43);
    let privacy = plan.privacy_pct(Attribute::Salary, DEFAULT_CONFIDENCE)?;
    println!("salary privacy level: {privacy:.0}% of the domain at 95% confidence");

    // 3. Server side: train with and without reconstruction, plus the
    //    no-privacy upper baseline.
    let config = TrainerConfig::default();
    for algorithm in [
        TrainingAlgorithm::Original,   // sees the raw data (baseline)
        TrainingAlgorithm::Randomized, // perturbed data, no reconstruction
        TrainingAlgorithm::ByClass,    // perturbed data + reconstruction
    ] {
        let tree = train(algorithm, Some(&train_data), &perturbed, &plan, &config)?;
        let eval = evaluate(&tree, &test_data);
        println!(
            "{:<10} -> accuracy {:>6.2}%  ({} leaves, depth {})",
            algorithm.name(),
            100.0 * eval.accuracy,
            tree.leaf_count(),
            tree.depth()
        );
    }
    Ok(())
}
