//! Streaming batch source: perturbed record chunks for sharded ingestion.
//!
//! The monolithic workflow generates one `Dataset`, perturbs it whole,
//! and hands a complete column to reconstruction. A service ingesting
//! records from millions of clients instead sees a *stream* of perturbed
//! batches. [`PerturbedBatchStream`] models that arrival process over the
//! AIS92 benchmark population: it yields successive perturbed chunks
//! whose underlying original records come from the same generator stream
//! a monolithic [`crate::generate`] call would produce, so streaming and
//! batch experiments are run against the same population.
//!
//! Each batch perturbs with its own derived noise seed (clients don't
//! share RNG state), so the perturbed stream depends only on
//! `(plan, function, total, batch_size, seed)` — fully deterministic and
//! independent of how the consumer shards the batches.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::attribute::Attribute;
use crate::functions::LabelFunction;
use crate::generator::generate_record;
use crate::perturb::{derive_seed, PerturbPlan};
use crate::record::Dataset;

/// An iterator of perturbed [`Dataset`] batches drawn from the benchmark
/// population.
///
/// Concatenating the batches' *original* records reproduces
/// [`crate::generate`]`(total, function, seed)` exactly; the perturbed
/// values additionally depend on the per-batch noise streams.
pub struct PerturbedBatchStream<'a> {
    plan: &'a PerturbPlan,
    function: LabelFunction,
    /// One continuous record stream across batches.
    rng: StdRng,
    /// Base seed for the per-batch noise streams.
    seed: u64,
    batch_size: usize,
    remaining: usize,
    batch_index: u64,
}

impl<'a> PerturbedBatchStream<'a> {
    /// A stream of `total` records in perturbed batches of `batch_size`
    /// (the final batch may be short). `batch_size` is clamped to at
    /// least 1.
    pub fn new(
        plan: &'a PerturbPlan,
        function: LabelFunction,
        total: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        PerturbedBatchStream {
            plan,
            function,
            rng: StdRng::seed_from_u64(seed),
            seed,
            batch_size: batch_size.max(1),
            remaining: total,
            batch_index: 0,
        }
    }

    /// Number of records not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for PerturbedBatchStream<'_> {
    type Item = Dataset;

    fn next(&mut self) -> Option<Dataset> {
        if self.remaining == 0 {
            return None;
        }
        let n = self.batch_size.min(self.remaining);
        self.remaining -= n;
        let mut batch = Dataset::empty();
        for _ in 0..n {
            let record = generate_record(&mut self.rng);
            batch.push(record, self.function.classify(&record));
        }
        // Per-batch noise seed: mix the batch index into the stream seed
        // so batches are independent noise draws. The offset keeps batch
        // streams disjoint from the per-attribute streams a monolithic
        // `perturb_dataset(_, seed)` call would use.
        let noise_seed = derive_seed(self.seed, 0x5741_4243 + self.batch_index as usize);
        self.batch_index += 1;
        Some(self.plan.perturb_dataset(&batch, noise_seed))
    }
}

impl std::iter::FusedIterator for PerturbedBatchStream<'_> {}

/// Adapts a batch stream to yield one attribute's perturbed column per
/// batch — the shape streaming reconstruction
/// ([`ppdm_core::reconstruct::streaming`]) ingests.
pub fn column_batches<'a>(
    stream: PerturbedBatchStream<'a>,
    attr: Attribute,
) -> impl Iterator<Item = Vec<f64>> + 'a {
    stream.map(move |batch| batch.column(attr))
}

/// Materializes one attribute's perturbed column batches up front — the
/// replay working set a load generator feeds through
/// `IngestHandle::try_ingest` without paying generation cost on the
/// timed path. Identical to collecting [`column_batches`] over
/// [`PerturbedBatchStream::new`] with the same arguments.
pub fn materialize_column_batches(
    plan: &PerturbPlan,
    function: LabelFunction,
    attr: Attribute,
    total: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    column_batches(PerturbedBatchStream::new(plan, function, total, batch_size, seed), attr)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use ppdm_core::privacy::{NoiseKind, DEFAULT_CONFIDENCE};

    #[test]
    fn batches_cover_total_with_short_tail() {
        let plan = PerturbPlan::none();
        let stream = PerturbedBatchStream::new(&plan, LabelFunction::F2, 1_050, 250, 1);
        let sizes: Vec<usize> = stream.map(|b| b.len()).collect();
        assert_eq!(sizes, vec![250, 250, 250, 250, 50]);
    }

    #[test]
    fn original_stream_matches_monolithic_generate() {
        // With no noise, concatenated batches ARE the monolithic dataset.
        let plan = PerturbPlan::none();
        let stream = PerturbedBatchStream::new(&plan, LabelFunction::F3, 700, 128, 9);
        let mut concat = Dataset::empty();
        for batch in stream {
            for (record, label) in batch.iter() {
                concat.push(*record, label);
            }
        }
        assert_eq!(concat, generate(700, LabelFunction::F3, 9));
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 50.0, DEFAULT_CONFIDENCE).unwrap();
        let collect = |seed: u64| -> Vec<Dataset> {
            PerturbedBatchStream::new(&plan, LabelFunction::F1, 400, 100, seed).collect()
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(collect(3), collect(4));
    }

    #[test]
    fn batches_are_perturbed_with_independent_noise() {
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 50.0, DEFAULT_CONFIDENCE).unwrap();
        let batches: Vec<Dataset> =
            PerturbedBatchStream::new(&plan, LabelFunction::F2, 400, 200, 5).collect();
        let originals = generate(400, LabelFunction::F2, 5);
        // Perturbed batches differ from the originals...
        assert_ne!(batches[0].records()[0], originals.records()[0]);
        // ...and the two batches' noise streams differ: the deltas on the
        // salary column must not repeat between batches.
        let d0: Vec<f64> = batches[0]
            .column(Attribute::Salary)
            .iter()
            .zip(originals.column(Attribute::Salary))
            .map(|(p, o)| p - o)
            .collect();
        let d1: Vec<f64> = batches[1]
            .column(Attribute::Salary)
            .iter()
            .zip(originals.column(Attribute::Salary).iter().skip(200))
            .map(|(p, o)| p - o)
            .collect();
        assert_ne!(d0, d1);
    }

    #[test]
    fn column_batches_yield_attribute_values() {
        let plan = PerturbPlan::none();
        let stream = PerturbedBatchStream::new(&plan, LabelFunction::F1, 300, 100, 11);
        let cols: Vec<Vec<f64>> = column_batches(stream, Attribute::Age).collect();
        assert_eq!(cols.len(), 3);
        let flat: Vec<f64> = cols.into_iter().flatten().collect();
        assert_eq!(flat, generate(300, LabelFunction::F1, 11).column(Attribute::Age));
    }

    #[test]
    fn materialized_batches_match_the_streaming_ones() {
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 50.0, DEFAULT_CONFIDENCE).unwrap();
        let streamed: Vec<Vec<f64>> = column_batches(
            PerturbedBatchStream::new(&plan, LabelFunction::F2, 450, 128, 17),
            Attribute::Salary,
        )
        .collect();
        let materialized =
            materialize_column_batches(&plan, LabelFunction::F2, Attribute::Salary, 450, 128, 17);
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn new_noise_families_stream_like_the_original_ones() {
        // The stream is family-agnostic: Laplace/mixture plans yield the
        // same underlying record stream, deterministically perturbed.
        for kind in [NoiseKind::Laplace, NoiseKind::GaussianMixture] {
            let plan = PerturbPlan::for_privacy(kind, 75.0, DEFAULT_CONFIDENCE).unwrap();
            let collect = |seed: u64| -> Vec<Dataset> {
                PerturbedBatchStream::new(&plan, LabelFunction::F2, 400, 100, seed).collect()
            };
            assert_eq!(collect(21), collect(21), "{kind} stream must be deterministic");
            let labels: Vec<_> = collect(21).iter().flat_map(|b| b.labels().to_vec()).collect();
            assert_eq!(labels, generate(400, LabelFunction::F2, 21).labels(), "{kind}");
        }
    }

    #[test]
    fn labels_survive_perturbation() {
        let plan = PerturbPlan::for_privacy(NoiseKind::Uniform, 100.0, DEFAULT_CONFIDENCE).unwrap();
        let stream = PerturbedBatchStream::new(&plan, LabelFunction::F2, 500, 125, 13);
        let labels: Vec<_> = stream.flat_map(|b| b.labels().to_vec()).collect();
        assert_eq!(labels, generate(500, LabelFunction::F2, 13).labels());
    }
}
