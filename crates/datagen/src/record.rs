//! Records, class labels, and datasets.

use ppdm_core::error::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::attribute::{Attribute, NUM_ATTRIBUTES};

/// One training/testing tuple: the nine attribute values in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Attribute values indexed by [`Attribute::index`].
    pub values: [f64; NUM_ATTRIBUTES],
}

impl Record {
    /// Creates a record from raw values.
    pub fn new(values: [f64; NUM_ATTRIBUTES]) -> Self {
        Record { values }
    }

    /// Value of the given attribute.
    #[inline]
    pub fn get(&self, attr: Attribute) -> f64 {
        self.values[attr.index()]
    }

    /// Sets the value of the given attribute.
    #[inline]
    pub fn set(&mut self, attr: Attribute, value: f64) {
        self.values[attr.index()] = value;
    }

    /// Annual salary.
    pub fn salary(&self) -> f64 {
        self.get(Attribute::Salary)
    }

    /// Commission.
    pub fn commission(&self) -> f64 {
        self.get(Attribute::Commission)
    }

    /// Age in years.
    pub fn age(&self) -> f64 {
        self.get(Attribute::Age)
    }

    /// Education level.
    pub fn elevel(&self) -> f64 {
        self.get(Attribute::Elevel)
    }

    /// House value.
    pub fn hvalue(&self) -> f64 {
        self.get(Attribute::Hvalue)
    }

    /// Years the house has been owned.
    pub fn hyears(&self) -> f64 {
        self.get(Attribute::Hyears)
    }

    /// Total loan amount.
    pub fn loan(&self) -> f64 {
        self.get(Attribute::Loan)
    }
}

/// Binary class label: AS00's "Group A" / "Group B".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Group A (the classification predicate holds).
    A,
    /// Group B.
    B,
}

/// Number of classes.
pub const NUM_CLASSES: usize = 2;

impl Class {
    /// 0 for A, 1 for B.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Class::A => 0,
            Class::B => 1,
        }
    }

    /// Inverse of [`Class::index`].
    pub fn from_index(i: usize) -> Option<Class> {
        match i {
            0 => Some(Class::A),
            1 => Some(Class::B),
            _ => None,
        }
    }

    /// Both classes in index order.
    pub const ALL: [Class; NUM_CLASSES] = [Class::A, Class::B];
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Class::A => f.write_str("A"),
            Class::B => f.write_str("B"),
        }
    }
}

/// A labeled dataset: parallel vectors of records and class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    records: Vec<Record>,
    labels: Vec<Class>,
}

impl Dataset {
    /// Creates a dataset, validating that records and labels line up.
    pub fn new(records: Vec<Record>, labels: Vec<Class>) -> Result<Self> {
        if records.len() != labels.len() {
            return Err(Error::LengthMismatch { left: records.len(), right: labels.len() });
        }
        Ok(Dataset { records, labels })
    }

    /// An empty dataset.
    pub fn empty() -> Self {
        Dataset { records: Vec::new(), labels: Vec::new() }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset has no tuples.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// All labels.
    pub fn labels(&self) -> &[Class] {
        &self.labels
    }

    /// The `i`-th record.
    pub fn record(&self, i: usize) -> &Record {
        &self.records[i]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> Class {
        self.labels[i]
    }

    /// Appends a labeled record.
    pub fn push(&mut self, record: Record, label: Class) {
        self.records.push(record);
        self.labels.push(label);
    }

    /// Copies out one attribute column.
    pub fn column(&self, attr: Attribute) -> Vec<f64> {
        let idx = attr.index();
        self.records.iter().map(|r| r.values[idx]).collect()
    }

    /// Copies out one attribute column restricted to rows of `class`.
    pub fn column_for_class(&self, attr: Attribute, class: Class) -> Vec<f64> {
        let idx = attr.index();
        self.records
            .iter()
            .zip(&self.labels)
            .filter(|(_, l)| **l == class)
            .map(|(r, _)| r.values[idx])
            .collect()
    }

    /// Tuples per class, indexed by [`Class::index`].
    pub fn class_counts(&self) -> [usize; NUM_CLASSES] {
        let mut counts = [0usize; NUM_CLASSES];
        for l in &self.labels {
            counts[l.index()] += 1;
        }
        counts
    }

    /// Splits off the first `n` tuples into one dataset, leaving the rest in
    /// another (train/test split of an already-shuffled generation stream).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_at(mut self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point {n} beyond dataset of {}", self.len());
        let tail_records = self.records.split_off(n);
        let tail_labels = self.labels.split_off(n);
        (self, Dataset { records: tail_records, labels: tail_labels })
    }

    /// Iterates over `(record, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Record, Class)> + '_ {
        self.records.iter().zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: f64) -> Record {
        Record::new([v; NUM_ATTRIBUTES])
    }

    #[test]
    fn record_get_set() {
        let mut r = rec(0.0);
        r.set(Attribute::Age, 42.0);
        assert_eq!(r.get(Attribute::Age), 42.0);
        assert_eq!(r.age(), 42.0);
        assert_eq!(r.salary(), 0.0);
    }

    #[test]
    fn class_index_roundtrip() {
        for c in Class::ALL {
            assert_eq!(Class::from_index(c.index()), Some(c));
        }
        assert_eq!(Class::from_index(2), None);
        assert_eq!(Class::A.to_string(), "A");
        assert_eq!(Class::B.to_string(), "B");
    }

    #[test]
    fn dataset_validates_lengths() {
        assert!(Dataset::new(vec![rec(1.0)], vec![]).is_err());
        assert!(Dataset::new(vec![rec(1.0)], vec![Class::A]).is_ok());
    }

    #[test]
    fn column_extraction() {
        let mut d = Dataset::empty();
        let mut r1 = rec(0.0);
        r1.set(Attribute::Age, 30.0);
        let mut r2 = rec(0.0);
        r2.set(Attribute::Age, 50.0);
        d.push(r1, Class::A);
        d.push(r2, Class::B);
        assert_eq!(d.column(Attribute::Age), vec![30.0, 50.0]);
        assert_eq!(d.column_for_class(Attribute::Age, Class::A), vec![30.0]);
        assert_eq!(d.column_for_class(Attribute::Age, Class::B), vec![50.0]);
    }

    #[test]
    fn class_counts_and_split() {
        let mut d = Dataset::empty();
        for i in 0..10 {
            d.push(rec(i as f64), if i % 3 == 0 { Class::A } else { Class::B });
        }
        assert_eq!(d.class_counts(), [4, 6]);
        let (train, test) = d.split_at(7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(test.record(0).values[0], 7.0);
    }

    #[test]
    #[should_panic(expected = "beyond dataset")]
    fn split_beyond_len_panics() {
        Dataset::empty().split_at(1);
    }

    #[test]
    fn iter_pairs() {
        let mut d = Dataset::empty();
        d.push(rec(1.0), Class::B);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1, Class::B);
    }
}
