//! The nine attributes of the Agrawal-Imielinski-Swami (1992) synthetic
//! classification benchmark, which AS00 uses for its entire evaluation.
//!
//! Each attribute has a fixed population-wide domain, which doubles as the
//! reference width for the privacy metric ("x% privacy" means the
//! 95%-confidence interval is x% of this width).

use ppdm_core::domain::Domain;
use serde::{Deserialize, Serialize};

/// Number of attributes in a record.
pub const NUM_ATTRIBUTES: usize = 9;

/// One of the nine benchmark attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Annual salary, uniform on [20k, 150k].
    Salary,
    /// Commission: zero if salary >= 75k, else uniform on [10k, 75k].
    Commission,
    /// Age in years, uniform on [20, 80].
    Age,
    /// Education level, integer uniform on {0, ..., 4}.
    Elevel,
    /// Make of car, integer uniform on {1, ..., 20}.
    Car,
    /// Zipcode, integer uniform on {1, ..., 9}.
    Zipcode,
    /// House value, uniform on [0.5 k 100k, 1.5 k 100k] where k is the
    /// zipcode — house prices depend on the neighborhood.
    Hvalue,
    /// Years the house has been owned, integer uniform on {1, ..., 30}.
    Hyears,
    /// Total loan amount, uniform on [0, 500k].
    Loan,
}

impl Attribute {
    /// All attributes in canonical (index) order.
    pub const ALL: [Attribute; NUM_ATTRIBUTES] = [
        Attribute::Salary,
        Attribute::Commission,
        Attribute::Age,
        Attribute::Elevel,
        Attribute::Car,
        Attribute::Zipcode,
        Attribute::Hvalue,
        Attribute::Hyears,
        Attribute::Loan,
    ];

    /// Canonical column index of this attribute.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Attribute::Salary => 0,
            Attribute::Commission => 1,
            Attribute::Age => 2,
            Attribute::Elevel => 3,
            Attribute::Car => 4,
            Attribute::Zipcode => 5,
            Attribute::Hvalue => 6,
            Attribute::Hyears => 7,
            Attribute::Loan => 8,
        }
    }

    /// Inverse of [`Attribute::index`].
    pub fn from_index(i: usize) -> Option<Attribute> {
        Attribute::ALL.get(i).copied()
    }

    /// Human-readable name, also used as the CSV column header.
    pub fn name(self) -> &'static str {
        match self {
            Attribute::Salary => "salary",
            Attribute::Commission => "commission",
            Attribute::Age => "age",
            Attribute::Elevel => "elevel",
            Attribute::Car => "car",
            Attribute::Zipcode => "zipcode",
            Attribute::Hvalue => "hvalue",
            Attribute::Hyears => "hyears",
            Attribute::Loan => "loan",
        }
    }

    /// Population-wide domain of the attribute. For `Hvalue`, this is the
    /// union over all zipcodes.
    pub fn domain(self) -> Domain {
        let (lo, hi) = match self {
            Attribute::Salary => (20_000.0, 150_000.0),
            Attribute::Commission => (0.0, 75_000.0),
            Attribute::Age => (20.0, 80.0),
            Attribute::Elevel => (0.0, 4.0),
            Attribute::Car => (1.0, 20.0),
            Attribute::Zipcode => (1.0, 9.0),
            Attribute::Hvalue => (50_000.0, 1_350_000.0),
            Attribute::Hyears => (1.0, 30.0),
            Attribute::Loan => (0.0, 500_000.0),
        };
        Domain::new(lo, hi).expect("static attribute domains are valid")
    }

    /// Whether the attribute takes integer values (the generator draws them
    /// as integers, though the pipeline treats every attribute as numeric,
    /// exactly as AS00 does).
    pub fn is_integer_valued(self) -> bool {
        matches!(self, Attribute::Elevel | Attribute::Car | Attribute::Zipcode | Attribute::Hyears)
    }

    /// Number of distinct values an integer-valued attribute takes, `None`
    /// for continuous attributes.
    pub fn distinct_values(self) -> Option<usize> {
        match self {
            Attribute::Elevel => Some(5),
            Attribute::Car => Some(20),
            Attribute::Zipcode => Some(9),
            Attribute::Hyears => Some(30),
            _ => None,
        }
    }

    /// The domain over which reconstruction partitions this attribute.
    ///
    /// For integer-valued attributes this is the value domain padded by 0.5
    /// on each side, so that a one-cell-per-value partition has its cell
    /// *midpoints* on the integers and its boundaries between them.
    /// Partitioning integers into arbitrary sub-integer cells would let
    /// per-class reconstruction place its (necessarily spiky) mass into
    /// micro-cells that differ between classes — fake class-separating
    /// structure that gini split search would happily exploit.
    pub fn partition_domain(self) -> Domain {
        let d = self.domain();
        if self.is_integer_valued() {
            Domain::new(d.lo() - 0.5, d.hi() + 0.5).expect("padded domain is valid")
        } else {
            d
        }
    }
}

impl std::fmt::Display for Attribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_a_permutation() {
        for (i, attr) in Attribute::ALL.iter().enumerate() {
            assert_eq!(attr.index(), i);
            assert_eq!(Attribute::from_index(i), Some(*attr));
        }
        assert_eq!(Attribute::from_index(NUM_ATTRIBUTES), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Attribute::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_ATTRIBUTES);
    }

    #[test]
    fn domains_match_paper() {
        assert_eq!(Attribute::Salary.domain().lo(), 20_000.0);
        assert_eq!(Attribute::Salary.domain().hi(), 150_000.0);
        assert_eq!(Attribute::Age.domain().width(), 60.0);
        assert_eq!(Attribute::Loan.domain().hi(), 500_000.0);
        // Hvalue spans zipcode 1 (min 50k) through zipcode 9 (max 1.35M).
        assert_eq!(Attribute::Hvalue.domain().lo(), 50_000.0);
        assert_eq!(Attribute::Hvalue.domain().hi(), 1_350_000.0);
    }

    #[test]
    fn integer_valued_flags() {
        assert!(Attribute::Elevel.is_integer_valued());
        assert!(Attribute::Zipcode.is_integer_valued());
        assert!(!Attribute::Salary.is_integer_valued());
        assert!(!Attribute::Hvalue.is_integer_valued());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Attribute::Hyears.to_string(), "hyears");
    }
}
