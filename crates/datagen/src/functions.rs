//! The ten classification functions of the AIS92 benchmark.
//!
//! AS00's evaluation uses functions 1-5, chosen for their "widely varying"
//! decision surfaces: F1 splits on one attribute, F2/F3 on two, F4/F5 on
//! three, with increasingly narrow decision regions. Functions 6-10 (linear
//! "disposable income" predicates) are included for completeness; they are
//! faithful in spirit to the original generator's definitions.
//!
//! A record is labeled [`Class::A`] when the function's predicate holds,
//! otherwise [`Class::B`].

use serde::{Deserialize, Serialize};

use crate::attribute::Attribute;
use crate::record::{Class, Record};

/// One of the ten labeling functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelFunction {
    /// Age only: `age < 40 or age >= 60`.
    F1,
    /// Age x salary bands.
    F2,
    /// Age x education level.
    F3,
    /// Age x education level x salary.
    F4,
    /// Age x salary x loan.
    F5,
    /// Age x total income (salary + commission) bands.
    F6,
    /// Linear disposable-income predicate over income and loan.
    F7,
    /// Disposable income including education costs.
    F8,
    /// Disposable income including home equity.
    F9,
    /// Disposable income with equity and loan together.
    F10,
}

impl LabelFunction {
    /// All functions in order F1..F10.
    pub const ALL: [LabelFunction; 10] = [
        LabelFunction::F1,
        LabelFunction::F2,
        LabelFunction::F3,
        LabelFunction::F4,
        LabelFunction::F5,
        LabelFunction::F6,
        LabelFunction::F7,
        LabelFunction::F8,
        LabelFunction::F9,
        LabelFunction::F10,
    ];

    /// The five functions AS00 evaluates.
    pub const PAPER: [LabelFunction; 5] = [
        LabelFunction::F1,
        LabelFunction::F2,
        LabelFunction::F3,
        LabelFunction::F4,
        LabelFunction::F5,
    ];

    /// Function by its 1-based paper number.
    pub fn from_number(n: usize) -> Option<LabelFunction> {
        if (1..=10).contains(&n) {
            Some(Self::ALL[n - 1])
        } else {
            None
        }
    }

    /// 1-based paper number.
    pub fn number(self) -> usize {
        Self::ALL.iter().position(|f| *f == self).expect("member of ALL") + 1
    }

    /// Attributes the predicate actually reads — useful for checking that
    /// induced trees split on sensible attributes.
    pub fn relevant_attributes(self) -> &'static [Attribute] {
        use Attribute::*;
        match self {
            LabelFunction::F1 => &[Age],
            LabelFunction::F2 => &[Age, Salary],
            LabelFunction::F3 => &[Age, Elevel],
            LabelFunction::F4 => &[Age, Elevel, Salary],
            LabelFunction::F5 => &[Age, Salary, Loan],
            LabelFunction::F6 => &[Age, Salary, Commission],
            LabelFunction::F7 => &[Salary, Commission, Loan],
            LabelFunction::F8 => &[Salary, Commission, Elevel, Loan],
            LabelFunction::F9 => &[Salary, Commission, Elevel, Hvalue, Hyears],
            LabelFunction::F10 => &[Salary, Commission, Elevel, Hvalue, Hyears, Loan],
        }
    }

    /// Labels a record.
    pub fn classify(self, r: &Record) -> Class {
        if self.predicate(r) {
            Class::A
        } else {
            Class::B
        }
    }

    fn predicate(self, r: &Record) -> bool {
        let age = r.age();
        let salary = r.salary();
        let elevel = r.elevel();
        let loan = r.loan();
        match self {
            LabelFunction::F1 => !(40.0..60.0).contains(&age),
            LabelFunction::F2 => {
                (age < 40.0 && in_band(salary, 50_000.0, 100_000.0))
                    || ((40.0..60.0).contains(&age) && in_band(salary, 75_000.0, 125_000.0))
                    || (age >= 60.0 && in_band(salary, 25_000.0, 75_000.0))
            }
            LabelFunction::F3 => {
                (age < 40.0 && in_band(elevel, 0.0, 1.0))
                    || ((40.0..60.0).contains(&age) && in_band(elevel, 1.0, 3.0))
                    || (age >= 60.0 && in_band(elevel, 2.0, 4.0))
            }
            LabelFunction::F4 => {
                if age < 40.0 {
                    if in_band(elevel, 0.0, 1.0) {
                        in_band(salary, 25_000.0, 75_000.0)
                    } else {
                        in_band(salary, 50_000.0, 100_000.0)
                    }
                } else if age < 60.0 {
                    if in_band(elevel, 1.0, 3.0) {
                        in_band(salary, 50_000.0, 100_000.0)
                    } else {
                        in_band(salary, 75_000.0, 125_000.0)
                    }
                } else if in_band(elevel, 2.0, 4.0) {
                    in_band(salary, 50_000.0, 100_000.0)
                } else {
                    in_band(salary, 25_000.0, 75_000.0)
                }
            }
            LabelFunction::F5 => {
                if age < 40.0 {
                    if in_band(salary, 50_000.0, 100_000.0) {
                        in_band(loan, 100_000.0, 300_000.0)
                    } else {
                        in_band(loan, 200_000.0, 400_000.0)
                    }
                } else if age < 60.0 {
                    if in_band(salary, 75_000.0, 125_000.0) {
                        in_band(loan, 200_000.0, 400_000.0)
                    } else {
                        in_band(loan, 300_000.0, 500_000.0)
                    }
                } else if in_band(salary, 25_000.0, 75_000.0) {
                    in_band(loan, 300_000.0, 500_000.0)
                } else {
                    in_band(loan, 100_000.0, 300_000.0)
                }
            }
            LabelFunction::F6 => {
                let income = salary + r.commission();
                (age < 40.0 && in_band(income, 50_000.0, 100_000.0))
                    || ((40.0..60.0).contains(&age) && in_band(income, 75_000.0, 125_000.0))
                    || (age >= 60.0 && in_band(income, 25_000.0, 75_000.0))
            }
            LabelFunction::F7 => 0.67 * (salary + r.commission()) - 0.2 * loan - 20_000.0 > 0.0,
            LabelFunction::F8 => {
                0.67 * (salary + r.commission()) - 5_000.0 * elevel - 0.2 * loan - 10_000.0 > 0.0
            }
            LabelFunction::F9 => {
                // No loan relief here, so the threshold is higher than
                // F8's to keep the classes balanced.
                0.67 * (salary + r.commission()) - 5_000.0 * elevel + 0.2 * equity(r) - 50_000.0
                    > 0.0
            }
            LabelFunction::F10 => {
                0.67 * (salary + r.commission()) - 5_000.0 * elevel - 0.2 * loan + 0.2 * equity(r)
                    - 10_000.0
                    > 0.0
            }
        }
    }
}

/// Home equity: 10% of house value per year of ownership beyond 20 years.
fn equity(r: &Record) -> f64 {
    if r.hyears() > 20.0 {
        0.1 * r.hvalue() * (r.hyears() - 20.0)
    } else {
        0.0
    }
}

#[inline]
fn in_band(x: f64, lo: f64, hi: f64) -> bool {
    (lo..=hi).contains(&x)
}

impl std::fmt::Display for LabelFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::NUM_ATTRIBUTES;

    fn record(pairs: &[(Attribute, f64)]) -> Record {
        let mut r = Record::new([0.0; NUM_ATTRIBUTES]);
        for &(a, v) in pairs {
            r.set(a, v);
        }
        r
    }

    #[test]
    fn numbers_roundtrip() {
        for f in LabelFunction::ALL {
            assert_eq!(LabelFunction::from_number(f.number()), Some(f));
        }
        assert_eq!(LabelFunction::from_number(0), None);
        assert_eq!(LabelFunction::from_number(11), None);
        assert_eq!(LabelFunction::F3.to_string(), "F3");
    }

    #[test]
    fn f1_age_bands() {
        let f = LabelFunction::F1;
        assert_eq!(f.classify(&record(&[(Attribute::Age, 25.0)])), Class::A);
        assert_eq!(f.classify(&record(&[(Attribute::Age, 39.99)])), Class::A);
        assert_eq!(f.classify(&record(&[(Attribute::Age, 40.0)])), Class::B);
        assert_eq!(f.classify(&record(&[(Attribute::Age, 59.99)])), Class::B);
        assert_eq!(f.classify(&record(&[(Attribute::Age, 60.0)])), Class::A);
        assert_eq!(f.classify(&record(&[(Attribute::Age, 79.0)])), Class::A);
    }

    #[test]
    fn f2_age_salary_bands() {
        let f = LabelFunction::F2;
        let young_mid = record(&[(Attribute::Age, 30.0), (Attribute::Salary, 75_000.0)]);
        assert_eq!(f.classify(&young_mid), Class::A);
        let young_poor = record(&[(Attribute::Age, 30.0), (Attribute::Salary, 30_000.0)]);
        assert_eq!(f.classify(&young_poor), Class::B);
        let mid_rich = record(&[(Attribute::Age, 50.0), (Attribute::Salary, 100_000.0)]);
        assert_eq!(f.classify(&mid_rich), Class::A);
        let old_mid = record(&[(Attribute::Age, 70.0), (Attribute::Salary, 50_000.0)]);
        assert_eq!(f.classify(&old_mid), Class::A);
        let old_rich = record(&[(Attribute::Age, 70.0), (Attribute::Salary, 120_000.0)]);
        assert_eq!(f.classify(&old_rich), Class::B);
    }

    #[test]
    fn f3_band_boundaries_inclusive() {
        let f = LabelFunction::F3;
        let r = record(&[(Attribute::Age, 45.0), (Attribute::Elevel, 1.0)]);
        assert_eq!(f.classify(&r), Class::A);
        let r = record(&[(Attribute::Age, 45.0), (Attribute::Elevel, 0.0)]);
        assert_eq!(f.classify(&r), Class::B);
        let r = record(&[(Attribute::Age, 65.0), (Attribute::Elevel, 2.0)]);
        assert_eq!(f.classify(&r), Class::A);
    }

    #[test]
    fn f4_nested_structure() {
        let f = LabelFunction::F4;
        // Young with low education: 25k-75k band.
        let r = record(&[
            (Attribute::Age, 30.0),
            (Attribute::Elevel, 1.0),
            (Attribute::Salary, 50_000.0),
        ]);
        assert_eq!(f.classify(&r), Class::A);
        // Same salary with high education falls outside its 50k-100k band? No,
        // 50k is inside [50k, 100k]; use 30k which is outside.
        let r = record(&[
            (Attribute::Age, 30.0),
            (Attribute::Elevel, 3.0),
            (Attribute::Salary, 30_000.0),
        ]);
        assert_eq!(f.classify(&r), Class::B);
    }

    #[test]
    fn f5_loan_bands() {
        let f = LabelFunction::F5;
        let r = record(&[
            (Attribute::Age, 30.0),
            (Attribute::Salary, 75_000.0),
            (Attribute::Loan, 200_000.0),
        ]);
        assert_eq!(f.classify(&r), Class::A);
        let r = record(&[
            (Attribute::Age, 30.0),
            (Attribute::Salary, 75_000.0),
            (Attribute::Loan, 450_000.0),
        ]);
        assert_eq!(f.classify(&r), Class::B);
        // Off-band salary switches the loan band.
        let r = record(&[
            (Attribute::Age, 30.0),
            (Attribute::Salary, 30_000.0),
            (Attribute::Loan, 300_000.0),
        ]);
        assert_eq!(f.classify(&r), Class::A);
    }

    #[test]
    fn f7_linear_predicate() {
        let f = LabelFunction::F7;
        // 0.67 * 100k - 0.2 * 100k - 20k = 67k - 20k - 20k = 27k > 0.
        let r = record(&[(Attribute::Salary, 100_000.0), (Attribute::Loan, 100_000.0)]);
        assert_eq!(f.classify(&r), Class::A);
        // 0.67 * 30k - 0.2 * 400k - 20k < 0.
        let r = record(&[(Attribute::Salary, 30_000.0), (Attribute::Loan, 400_000.0)]);
        assert_eq!(f.classify(&r), Class::B);
    }

    #[test]
    fn f9_equity_kicks_in_after_20_years() {
        let f = LabelFunction::F9;
        let base = [
            (Attribute::Salary, 20_000.0),
            (Attribute::Elevel, 4.0),
            (Attribute::Hvalue, 500_000.0),
        ];
        let mut young_house: Vec<(Attribute, f64)> = base.to_vec();
        young_house.push((Attribute::Hyears, 10.0));
        // 0.67*20k - 20k - 10k < 0 without equity.
        assert_eq!(f.classify(&record(&young_house)), Class::B);
        let mut old_house: Vec<(Attribute, f64)> = base.to_vec();
        old_house.push((Attribute::Hyears, 30.0));
        // equity = 0.1 * 500k * 10 = 500k; 0.2 * 500k dominates.
        assert_eq!(f.classify(&record(&old_house)), Class::A);
    }

    #[test]
    fn relevant_attributes_listed() {
        assert_eq!(LabelFunction::F1.relevant_attributes(), &[Attribute::Age]);
        assert!(LabelFunction::F5.relevant_attributes().contains(&Attribute::Loan));
        assert_eq!(LabelFunction::F10.relevant_attributes().len(), 6);
    }

    #[test]
    fn classify_is_deterministic() {
        let r = record(&[
            (Attribute::Age, 44.0),
            (Attribute::Salary, 90_000.0),
            (Attribute::Loan, 250_000.0),
        ]);
        for f in LabelFunction::ALL {
            assert_eq!(f.classify(&r), f.classify(&r));
        }
    }
}
