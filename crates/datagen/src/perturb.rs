//! Dataset perturbation: applying a per-attribute noise plan to every
//! record, leaving class labels untouched (AS00 perturbs attribute values
//! only; the class label is the non-sensitive training signal).
//!
//! When the *label itself* is sensitive — respondents randomize which
//! group they admit belonging to — [`perturb_labels`] pushes the label
//! column through any [`DiscreteChannel`] (randomized response being the
//! canonical one), mirroring how [`PerturbPlan::perturb_dataset`] pushes
//! numeric columns through [`NoiseDensity`] channels.

use ppdm_core::domain::Domain;
use ppdm_core::error::{Error, Result};
use ppdm_core::privacy::{noise_for_privacy, privacy_pct, NoiseKind};
use ppdm_core::randomize::{DiscreteChannel, NoiseDensity, NoiseModel};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::attribute::{Attribute, NUM_ATTRIBUTES};
use crate::record::{Class, Dataset, Record, NUM_CLASSES};

/// A per-attribute noise assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbPlan {
    models: [NoiseModel; NUM_ATTRIBUTES],
}

impl PerturbPlan {
    /// No noise on any attribute (the Original baseline).
    pub fn none() -> Self {
        PerturbPlan { models: [NoiseModel::None; NUM_ATTRIBUTES] }
    }

    /// Explicit per-attribute models.
    pub fn from_models(models: [NoiseModel; NUM_ATTRIBUTES]) -> Self {
        PerturbPlan { models }
    }

    /// The paper's setting: every attribute receives noise of the same
    /// *privacy level* — the confidence interval is `privacy_pct`% of each
    /// attribute's own domain width.
    pub fn for_privacy(kind: NoiseKind, privacy_pct: f64, confidence: f64) -> Result<Self> {
        let mut models = [NoiseModel::None; NUM_ATTRIBUTES];
        for attr in Attribute::ALL {
            models[attr.index()] =
                noise_for_privacy(kind, privacy_pct, confidence, &attr.domain())?;
        }
        Ok(PerturbPlan { models })
    }

    /// Noise model assigned to an attribute.
    pub fn model(&self, attr: Attribute) -> &NoiseModel {
        &self.models[attr.index()]
    }

    /// Achieved privacy level of an attribute at the given confidence.
    pub fn privacy_pct(&self, attr: Attribute, confidence: f64) -> Result<f64> {
        privacy_pct(self.model(attr), confidence, &attr.domain())
    }

    /// Whether the plan applies no noise at all.
    pub fn is_none(&self) -> bool {
        self.models.iter().all(NoiseModel::is_none)
    }

    /// Perturbs a single record.
    pub fn perturb_record<R: Rng + ?Sized>(&self, record: &Record, rng: &mut R) -> Record {
        let mut out = *record;
        for attr in Attribute::ALL {
            let model = &self.models[attr.index()];
            if !model.is_none() {
                out.set(attr, model.perturb(record.get(attr), rng));
            }
        }
        out
    }

    /// Perturbs every record of a dataset deterministically from `seed`.
    /// Labels are preserved as-is.
    ///
    /// Noise is generated in batch, one column per noisy attribute via
    /// [`NoiseDensity::fill_noise`] with a per-attribute derived seed, and
    /// the columns are filled across worker threads — each client-side
    /// attribute stream is independent, so the batch is embarrassingly
    /// parallel and the output depends only on `(plan, dataset, seed)`,
    /// never on thread scheduling.
    pub fn perturb_dataset(&self, dataset: &Dataset, seed: u64) -> Dataset {
        let n = dataset.len();
        let noisy: Vec<Attribute> =
            Attribute::ALL.into_iter().filter(|a| !self.model(*a).is_none()).collect();
        let noise_columns: Vec<Vec<f64>> = noisy
            .par_iter()
            .map(|attr| {
                let mut column = vec![0.0; n];
                let model: &dyn NoiseDensity = self.model(*attr);
                model.fill_noise(derive_seed(seed, attr.index()), &mut column);
                column
            })
            .collect();
        let mut out = Dataset::empty();
        for (i, (record, label)) in dataset.iter().enumerate() {
            let mut perturbed = *record;
            for (attr, column) in noisy.iter().zip(&noise_columns) {
                perturbed.set(*attr, record.get(*attr) + column[i]);
            }
            out.push(perturbed, label);
        }
        out
    }

    /// Domain of the *perturbed* values of an attribute: the original
    /// domain expanded by the noise span. Reconstruction buckets observed
    /// values over this range.
    ///
    /// (See [`NoiseDensity::span`] for what "span" means per channel.)
    pub fn perturbed_domain(&self, attr: Attribute) -> Result<Domain> {
        let span = self.model(attr).span();
        if span == 0.0 {
            return Ok(attr.domain());
        }
        attr.domain().expanded(span)
    }
}

/// Randomizes every class label through a discrete channel (labels as
/// states via [`Class::index`]), leaving attribute values untouched —
/// the categorical counterpart of [`PerturbPlan::perturb_dataset`].
///
/// The channel stream is seeded from `seed` on its own derived slot (one
/// past the attribute slots), so label randomization composes with
/// attribute perturbation at the same seed without stream collisions,
/// and the output depends only on `(channel, dataset, seed)`.
///
/// # Errors
///
/// [`Error::CategoryMismatch`] when the channel is not defined over
/// exactly [`NUM_CLASSES`] states (a wider channel could emit states
/// that are not valid [`Class`]es).
pub fn perturb_labels(
    channel: &dyn DiscreteChannel,
    dataset: &Dataset,
    seed: u64,
) -> Result<Dataset> {
    if channel.states() != NUM_CLASSES {
        return Err(Error::CategoryMismatch { expected: NUM_CLASSES, found: channel.states() });
    }
    let truth: Vec<usize> = dataset.labels().iter().map(|l| l.index()).collect();
    let mut observed = vec![0usize; truth.len()];
    channel.fill_states(derive_seed(seed, NUM_ATTRIBUTES), &truth, &mut observed)?;
    let mut out = Dataset::empty();
    for ((record, _), state) in dataset.iter().zip(observed) {
        let label = Class::from_index(state).expect("channel emits states < NUM_CLASSES");
        out.push(*record, label);
    }
    Ok(out)
}

/// Derives the per-attribute noise-stream seed from the dataset seed.
/// SplitMix64-style mixing so adjacent attribute indices land on
/// uncorrelated streams. (Also reused by the streaming batch source to
/// give every batch its own noise stream.)
pub(crate) fn derive_seed(seed: u64, attr_index: usize) -> u64 {
    let mut z = seed ^ (attr_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::LabelFunction;
    use crate::generator::generate;
    use ppdm_core::privacy::DEFAULT_CONFIDENCE;
    use ppdm_core::stats::{mean, std_dev};

    #[test]
    fn none_plan_is_identity() {
        let d = generate(100, LabelFunction::F2, 1);
        let plan = PerturbPlan::none();
        assert!(plan.is_none());
        assert_eq!(plan.perturb_dataset(&d, 2), d);
    }

    #[test]
    fn for_privacy_hits_target_on_every_attribute() {
        let plan =
            PerturbPlan::for_privacy(NoiseKind::Gaussian, 100.0, DEFAULT_CONFIDENCE).unwrap();
        for attr in Attribute::ALL {
            let pct = plan.privacy_pct(attr, DEFAULT_CONFIDENCE).unwrap();
            assert!((pct - 100.0).abs() < 1e-6, "{attr}: {pct}");
        }
        assert!(!plan.is_none());
    }

    #[test]
    fn every_family_hits_its_privacy_target() {
        for kind in [
            NoiseKind::Uniform,
            NoiseKind::Gaussian,
            NoiseKind::Laplace,
            NoiseKind::GaussianMixture,
        ] {
            let plan = PerturbPlan::for_privacy(kind, 100.0, DEFAULT_CONFIDENCE).unwrap();
            for attr in Attribute::ALL {
                let pct = plan.privacy_pct(attr, DEFAULT_CONFIDENCE).unwrap();
                assert!((pct - 100.0).abs() < 1e-6, "{kind} {attr}: {pct}");
            }
        }
    }

    #[test]
    fn laplace_perturbation_matches_noise_moments() {
        let d = generate(20_000, LabelFunction::F1, 15);
        let plan = PerturbPlan::for_privacy(NoiseKind::Laplace, 100.0, DEFAULT_CONFIDENCE).unwrap();
        let p = plan.perturb_dataset(&d, 16);
        let diffs: Vec<f64> = d
            .column(Attribute::Age)
            .iter()
            .zip(p.column(Attribute::Age))
            .map(|(o, n)| n - o)
            .collect();
        let expect_sigma = plan.model(Attribute::Age).noise_std_dev();
        assert!(mean(&diffs).abs() < 0.5, "noise mean {}", mean(&diffs));
        assert!((std_dev(&diffs) - expect_sigma).abs() < 0.5, "noise sigma {}", std_dev(&diffs));
    }

    #[test]
    fn labels_are_preserved() {
        let d = generate(500, LabelFunction::F5, 3);
        let plan = PerturbPlan::for_privacy(NoiseKind::Uniform, 50.0, DEFAULT_CONFIDENCE).unwrap();
        let p = plan.perturb_dataset(&d, 4);
        assert_eq!(d.labels(), p.labels());
        assert_ne!(d.records(), p.records());
    }

    #[test]
    fn perturbation_noise_has_expected_moments() {
        let d = generate(20_000, LabelFunction::F1, 5);
        let plan =
            PerturbPlan::for_privacy(NoiseKind::Gaussian, 100.0, DEFAULT_CONFIDENCE).unwrap();
        let p = plan.perturb_dataset(&d, 6);
        let diffs: Vec<f64> = d
            .column(Attribute::Age)
            .iter()
            .zip(p.column(Attribute::Age))
            .map(|(o, n)| n - o)
            .collect();
        // 100% privacy at 95% confidence over a width-60 domain: sigma =
        // 60 / (2 * 1.96) ~ 15.3.
        let expect_sigma = 60.0 / (2.0 * 1.959_964);
        assert!(mean(&diffs).abs() < 0.5, "noise mean {}", mean(&diffs));
        assert!((std_dev(&diffs) - expect_sigma).abs() < 0.5, "noise sigma {}", std_dev(&diffs));
    }

    #[test]
    fn perturbation_deterministic_by_seed() {
        let d = generate(100, LabelFunction::F3, 7);
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 25.0, DEFAULT_CONFIDENCE).unwrap();
        assert_eq!(plan.perturb_dataset(&d, 8), plan.perturb_dataset(&d, 8));
        assert_ne!(plan.perturb_dataset(&d, 8), plan.perturb_dataset(&d, 9));
    }

    #[test]
    fn perturbed_domain_expands_by_span() {
        let plan = PerturbPlan::for_privacy(NoiseKind::Uniform, 100.0, DEFAULT_CONFIDENCE).unwrap();
        let base = Attribute::Age.domain();
        let expanded = plan.perturbed_domain(Attribute::Age).unwrap();
        let span = plan.model(Attribute::Age).span();
        assert!(span > 0.0);
        assert_eq!(expanded.lo(), base.lo() - span);
        assert_eq!(expanded.hi(), base.hi() + span);

        let none = PerturbPlan::none();
        assert_eq!(none.perturbed_domain(Attribute::Age).unwrap(), base);
    }

    #[test]
    fn perturb_labels_flips_at_the_channel_rate() {
        use ppdm_core::randomize::RandomizedResponse;
        let d = generate(20_000, LabelFunction::F2, 20);
        let channel = RandomizedResponse::new(NUM_CLASSES, 0.6).unwrap();
        let noisy = perturb_labels(&channel, &d, 21).unwrap();
        assert_eq!(d.records(), noisy.records(), "attribute values must be untouched");
        let flipped = d.labels().iter().zip(noisy.labels()).filter(|(a, b)| a != b).count() as f64;
        let rate = flipped / d.len() as f64;
        assert!((rate - channel.flip_prob()).abs() < 0.01, "flip rate {rate}");
        // Deterministic by seed, distinct across seeds.
        assert_eq!(noisy, perturb_labels(&channel, &d, 21).unwrap());
        assert_ne!(noisy, perturb_labels(&channel, &d, 22).unwrap());
    }

    #[test]
    fn perturb_labels_composes_with_attribute_perturbation() {
        use ppdm_core::randomize::RandomizedResponse;
        // Same seed for both stages: the label stream lives on its own
        // derived slot, so the attribute noise is unchanged.
        let d = generate(500, LabelFunction::F3, 23);
        let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 50.0, DEFAULT_CONFIDENCE).unwrap();
        let channel = RandomizedResponse::new(NUM_CLASSES, 0.8).unwrap();
        let values_only = plan.perturb_dataset(&d, 24);
        let both = perturb_labels(&channel, &values_only, 24).unwrap();
        assert_eq!(values_only.records(), both.records());
    }

    #[test]
    fn perturb_labels_rejects_wrong_arity_channels() {
        use ppdm_core::randomize::RandomizedResponse;
        let d = generate(10, LabelFunction::F1, 25);
        let wide = RandomizedResponse::new(3, 0.5).unwrap();
        assert!(matches!(
            perturb_labels(&wide, &d, 1),
            Err(Error::CategoryMismatch { expected: 2, found: 3 })
        ));
    }

    #[test]
    fn mixed_plan_only_touches_noisy_attributes() {
        let mut models = [NoiseModel::None; NUM_ATTRIBUTES];
        models[Attribute::Salary.index()] = NoiseModel::gaussian(10_000.0).unwrap();
        let plan = PerturbPlan::from_models(models);
        let d = generate(200, LabelFunction::F2, 10);
        let p = plan.perturb_dataset(&d, 11);
        assert_ne!(d.column(Attribute::Salary), p.column(Attribute::Salary));
        assert_eq!(d.column(Attribute::Age), p.column(Attribute::Age));
        assert_eq!(d.column(Attribute::Loan), p.column(Attribute::Loan));
    }
}
