//! # ppdm-datagen
//!
//! The synthetic classification workload used by AS00's evaluation: the
//! Agrawal-Imielinski-Swami (1992) benchmark of nine-attribute records and
//! ten labeling functions, plus the machinery to perturb datasets with a
//! per-attribute noise plan.
//!
//! ```
//! use ppdm_datagen::{generate_train_test, LabelFunction, PerturbPlan};
//! use ppdm_core::privacy::{NoiseKind, DEFAULT_CONFIDENCE};
//!
//! // The paper's setup in miniature: F2, Gaussian noise at 50% privacy.
//! let (train, test) = generate_train_test(1_000, 100, LabelFunction::F2, 42);
//! let plan = PerturbPlan::for_privacy(NoiseKind::Gaussian, 50.0, DEFAULT_CONFIDENCE)?;
//! let perturbed = plan.perturb_dataset(&train, 43);
//! assert_eq!(perturbed.len(), 1_000);
//! assert_eq!(perturbed.labels(), train.labels()); // labels are not sensitive
//! # Ok::<(), ppdm_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod correlated;
pub mod csv;
pub mod functions;
pub mod generator;
pub mod perturb;
pub mod record;
pub mod stream;

pub use attribute::{Attribute, NUM_ATTRIBUTES};
pub use correlated::{correlated_pair, CorrelatedPair};
pub use functions::LabelFunction;
pub use generator::{generate, generate_record, generate_train_test, with_label_noise};
pub use perturb::{perturb_labels, PerturbPlan};
pub use record::{Class, Dataset, Record, NUM_CLASSES};
pub use stream::{column_batches, materialize_column_batches, PerturbedBatchStream};
