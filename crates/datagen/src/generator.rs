//! Seeded generation of benchmark datasets.
//!
//! Mirrors the AIS92 generator: attributes are drawn independently (except
//! commission, which depends on salary, and house value, which depends on
//! zipcode), then labeled by a [`LabelFunction`]. AS00 generates 100,000
//! training and 5,000 testing tuples this way.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attribute::{Attribute, NUM_ATTRIBUTES};
use crate::functions::LabelFunction;
use crate::record::{Class, Dataset, Record};

/// Draws one record from the benchmark population.
pub fn generate_record<R: Rng + ?Sized>(rng: &mut R) -> Record {
    let mut values = [0.0f64; NUM_ATTRIBUTES];
    let salary = rng.gen_range(20_000.0..=150_000.0);
    values[Attribute::Salary.index()] = salary;
    values[Attribute::Commission.index()] =
        if salary >= 75_000.0 { 0.0 } else { rng.gen_range(10_000.0..=75_000.0) };
    values[Attribute::Age.index()] = rng.gen_range(20.0..=80.0);
    values[Attribute::Elevel.index()] = rng.gen_range(0..=4) as f64;
    values[Attribute::Car.index()] = rng.gen_range(1..=20) as f64;
    let zipcode = rng.gen_range(1..=9);
    values[Attribute::Zipcode.index()] = zipcode as f64;
    let k = zipcode as f64;
    values[Attribute::Hvalue.index()] = rng.gen_range(k * 50_000.0..=k * 150_000.0);
    values[Attribute::Hyears.index()] = rng.gen_range(1..=30) as f64;
    values[Attribute::Loan.index()] = rng.gen_range(0.0..=500_000.0);
    Record::new(values)
}

/// Generates `n` labeled records with the given function and seed.
pub fn generate(n: usize, function: LabelFunction, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = Dataset::empty();
    for _ in 0..n {
        let record = generate_record(&mut rng);
        dataset.push(record, function.classify(&record));
    }
    dataset
}

/// Generates a train/test pair from one stream (AS00: 100,000 train, 5,000
/// test).
pub fn generate_train_test(
    n_train: usize,
    n_test: usize,
    function: LabelFunction,
    seed: u64,
) -> (Dataset, Dataset) {
    generate(n_train + n_test, function, seed).split_at(n_train)
}

/// Flips each label independently with probability `noise` — the AIS92
/// generator's "classification noise" knob, useful for robustness studies.
pub fn with_label_noise(dataset: &Dataset, noise: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&noise), "label noise must be a probability, got {noise}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Dataset::empty();
    for (record, label) in dataset.iter() {
        let label = if rng.gen_bool(noise) {
            match label {
                Class::A => Class::B,
                Class::B => Class::A,
            }
        } else {
            label
        };
        out.push(*record, label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(100, LabelFunction::F2, 42);
        let b = generate(100, LabelFunction::F2, 42);
        assert_eq!(a, b);
        let c = generate(100, LabelFunction::F2, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn attributes_within_domains() {
        let d = generate(2_000, LabelFunction::F1, 7);
        for attr in Attribute::ALL {
            let domain = attr.domain();
            for v in d.column(attr) {
                assert!(
                    domain.contains(v),
                    "{attr} value {v} outside [{}, {}]",
                    domain.lo(),
                    domain.hi()
                );
            }
        }
    }

    #[test]
    fn commission_depends_on_salary() {
        let d = generate(2_000, LabelFunction::F1, 8);
        for r in d.records() {
            if r.salary() >= 75_000.0 {
                assert_eq!(r.commission(), 0.0);
            } else {
                assert!(r.commission() >= 10_000.0, "commission {}", r.commission());
            }
        }
    }

    #[test]
    fn hvalue_depends_on_zipcode() {
        let d = generate(5_000, LabelFunction::F1, 9);
        for r in d.records() {
            let k = r.get(Attribute::Zipcode);
            let hv = r.hvalue();
            assert!(hv >= k * 50_000.0 - 1e-9 && hv <= k * 150_000.0 + 1e-9);
        }
    }

    #[test]
    fn integer_attributes_are_integers() {
        let d = generate(500, LabelFunction::F1, 10);
        for attr in Attribute::ALL.into_iter().filter(|a| a.is_integer_valued()) {
            for v in d.column(attr) {
                assert_eq!(v, v.trunc(), "{attr} produced non-integer {v}");
            }
        }
    }

    #[test]
    fn labels_match_function() {
        let d = generate(1_000, LabelFunction::F5, 11);
        for (r, l) in d.iter() {
            assert_eq!(LabelFunction::F5.classify(r), l);
        }
    }

    #[test]
    fn class_balance_reasonable_for_paper_functions() {
        // None of F1-F5 should be degenerate: both classes must appear with
        // at least 10% frequency on a large sample.
        for f in LabelFunction::PAPER {
            let d = generate(20_000, f, 12);
            let [a, b] = d.class_counts();
            let frac = a as f64 / (a + b) as f64;
            assert!((0.10..=0.90).contains(&frac), "{f}: class A fraction {frac}");
        }
    }

    #[test]
    fn train_test_split_sizes() {
        let (train, test) = generate_train_test(300, 50, LabelFunction::F3, 13);
        assert_eq!(train.len(), 300);
        assert_eq!(test.len(), 50);
    }

    #[test]
    fn label_noise_flips_about_the_right_fraction() {
        let d = generate(10_000, LabelFunction::F1, 14);
        let noisy = with_label_noise(&d, 0.2, 15);
        let flipped = d.labels().iter().zip(noisy.labels()).filter(|(a, b)| a != b).count();
        let rate = flipped as f64 / d.len() as f64;
        assert!((rate - 0.2).abs() < 0.02, "flip rate {rate}");
        assert_eq!(d.records(), noisy.records(), "records must be untouched");
    }

    #[test]
    fn zero_label_noise_is_identity() {
        let d = generate(200, LabelFunction::F4, 16);
        assert_eq!(with_label_noise(&d, 0.0, 17), d);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_generate_len_and_validity(n in 0usize..300, seed in 0u64..1000) {
            let d = generate(n, LabelFunction::F2, seed);
            prop_assert_eq!(d.len(), n);
            let [a, b] = d.class_counts();
            prop_assert_eq!(a + b, n);
        }
    }
}
