//! Minimal CSV serialization for datasets (no external dependency).
//!
//! Format: a header row with the nine attribute names plus `class`, then
//! one row per record. Values are written with full `f64` round-trip
//! precision; classes as `A`/`B`.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::attribute::{Attribute, NUM_ATTRIBUTES};
use crate::record::{Class, Dataset, Record};

/// Errors arising while reading a dataset from CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or parse failure, with the 1-based line number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `dataset` as CSV.
pub fn write_csv<W: Write>(dataset: &Dataset, writer: &mut W) -> io::Result<()> {
    let mut out = io::BufWriter::new(writer);
    for (i, attr) in Attribute::ALL.iter().enumerate() {
        if i > 0 {
            write!(out, ",")?;
        }
        write!(out, "{}", attr.name())?;
    }
    writeln!(out, ",class")?;
    for (record, label) in dataset.iter() {
        for (i, v) in record.values.iter().enumerate() {
            if i > 0 {
                write!(out, ",")?;
            }
            // `{:?}` of f64 is the shortest representation that round-trips.
            write!(out, "{v:?}")?;
        }
        writeln!(out, ",{label}")?;
    }
    out.flush()
}

/// Reads a dataset from CSV produced by [`write_csv`].
pub fn read_csv<R: BufRead>(reader: R) -> Result<Dataset, CsvError> {
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Err(CsvError::Parse { line: 1, message: "missing header".into() }),
    };
    let expected_header: String = Attribute::ALL
        .iter()
        .map(|a| a.name())
        .chain(std::iter::once("class"))
        .collect::<Vec<_>>()
        .join(",");
    if header.trim() != expected_header {
        return Err(CsvError::Parse {
            line: 1,
            message: format!("unexpected header {header:?}, expected {expected_header:?}"),
        });
    }

    let mut dataset = Dataset::empty();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != NUM_ATTRIBUTES + 1 {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected {} fields, found {}", NUM_ATTRIBUTES + 1, fields.len()),
            });
        }
        let mut values = [0.0f64; NUM_ATTRIBUTES];
        for (slot, field) in values.iter_mut().zip(&fields[..NUM_ATTRIBUTES]) {
            *slot = field.trim().parse::<f64>().map_err(|e| CsvError::Parse {
                line: line_no,
                message: format!("bad numeric field {field:?}: {e}"),
            })?;
        }
        let label = match fields[NUM_ATTRIBUTES].trim() {
            "A" => Class::A,
            "B" => Class::B,
            other => {
                return Err(CsvError::Parse {
                    line: line_no,
                    message: format!("bad class label {other:?}"),
                })
            }
        };
        dataset.push(Record::new(values), label);
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::LabelFunction;
    use crate::generator::generate;
    use std::io::Cursor;

    #[test]
    fn roundtrip_preserves_dataset() {
        let d = generate(250, LabelFunction::F4, 21);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let d = Dataset::empty();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_csv(Cursor::new(Vec::<u8>::new())).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn wrong_header_is_error() {
        let err = read_csv(Cursor::new(b"a,b,c\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("unexpected header"));
    }

    #[test]
    fn wrong_field_count_is_error() {
        let mut buf = Vec::new();
        write_csv(&Dataset::empty(), &mut buf).unwrap();
        buf.extend_from_slice(b"1,2,3\n");
        let err = read_csv(Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("expected 10 fields"), "{err}");
    }

    #[test]
    fn bad_label_is_error() {
        let mut buf = Vec::new();
        write_csv(&Dataset::empty(), &mut buf).unwrap();
        buf.extend_from_slice(b"1,2,3,4,5,6,7,8,9,X\n");
        let err = read_csv(Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("bad class label"), "{err}");
    }

    #[test]
    fn bad_number_reports_line() {
        let mut buf = Vec::new();
        write_csv(&Dataset::empty(), &mut buf).unwrap();
        buf.extend_from_slice(b"1,2,3,4,5,6,7,8,9,A\n");
        buf.extend_from_slice(b"1,2,oops,4,5,6,7,8,9,B\n");
        let err = read_csv(Cursor::new(buf)).unwrap_err();
        match err {
            CsvError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("oops"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut buf = Vec::new();
        let d = generate(3, LabelFunction::F1, 22);
        write_csv(&d, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 3);
    }
}
