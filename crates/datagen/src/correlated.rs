//! Tunable-correlation column pairs for the audit harness.
//!
//! The AIS92 benchmark has one built-in cross-column dependency
//! (commission is a deterministic function of the salary band), which is
//! what the bench sweep's correlated-attribute audit exploits. For
//! *controlled* experiments — property tests that need correlation as a
//! dial rather than a fixed artifact — this module generates a pair of
//! continuous columns over one domain whose linear correlation is set by
//! `rho`:
//!
//! * the **target** column is bimodal (two Gaussian humps at the domain's
//!   quarter points), so a MAP adversary has a non-trivial prior to use;
//! * the **side** column is `mid + rho * (x - mid) + sqrt(1 - rho^2) *
//!   spread * g` with `g` standard Gaussian, clamped to the domain.
//!
//! At `rho = 0` the columns are independent, so the empirical
//! [`ppdm_core::audit::JointPrior`] factorizes and the correlated attack
//! collapses to the single-column one; at `rho -> 1` the side column
//! pins the target and the correlated breach rate pulls far ahead. The
//! audit property suite sweeps exactly that dial.

use ppdm_core::domain::Domain;
use ppdm_core::error::{Error, Result};
use ppdm_core::randomize::{NoiseDensity, NoiseModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A paired sample of two columns over the same domain with tunable
/// linear correlation.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedPair {
    /// The attack target column (bimodal over the domain).
    pub target: Vec<f64>,
    /// The correlated side column the adversary observes alongside it.
    pub side: Vec<f64>,
}

/// Generates `n` paired `(target, side)` values over `domain` with
/// correlation knob `rho` in `[-1, 1]`, deterministically from `seed`.
pub fn correlated_pair(n: usize, domain: Domain, rho: f64, seed: u64) -> Result<CorrelatedPair> {
    if !rho.is_finite() || !(-1.0..=1.0).contains(&rho) {
        return Err(Error::InvalidProbability { name: "rho", value: rho });
    }
    let (lo, hi) = (domain.lo(), domain.hi());
    let width = hi - lo;
    let mid = lo + width / 2.0;
    // Mode spread narrow enough to keep the two humps distinct, side
    // spread wide enough that the rho = 0 column covers the domain.
    let mode_sd = width / 12.0;
    let side_spread = width / 4.0;

    let mut hump = vec![0.0; n];
    let mut residual = vec![0.0; n];
    NoiseDensity::fill_noise(&NoiseModel::gaussian(mode_sd)?, seed ^ 0x9e37_79b9, &mut hump);
    NoiseDensity::fill_noise(
        &NoiseModel::gaussian(side_spread)?,
        seed ^ 0x85eb_ca6b,
        &mut residual,
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let clamp = |v: f64| v.clamp(lo, hi);
    let mut target = Vec::with_capacity(n);
    let mut side = Vec::with_capacity(n);
    let scale = (1.0 - rho * rho).sqrt();
    for i in 0..n {
        let center = if rng.gen_bool(0.5) { lo + 0.25 * width } else { lo + 0.75 * width };
        let x = clamp(center + hump[i]);
        target.push(x);
        side.push(clamp(mid + rho * (x - mid) + scale * residual[i]));
    }
    Ok(CorrelatedPair { target, side })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        cov / (vx * vy).sqrt()
    }

    fn domain() -> Domain {
        Domain::new(0.0, 100.0).unwrap()
    }

    #[test]
    fn rho_dials_the_sample_correlation() {
        for (rho, lo, hi) in [(0.0, -0.1, 0.1), (0.9, 0.75, 0.99), (-0.8, -0.95, -0.6)] {
            let pair = correlated_pair(4_000, domain(), rho, 11).unwrap();
            let r = pearson(&pair.target, &pair.side);
            assert!(r > lo && r < hi, "rho {rho} produced sample correlation {r}");
        }
    }

    #[test]
    fn values_stay_inside_the_domain_and_are_deterministic() {
        let a = correlated_pair(1_000, domain(), 0.7, 5).unwrap();
        let b = correlated_pair(1_000, domain(), 0.7, 5).unwrap();
        assert_eq!(a, b);
        for v in a.target.iter().chain(&a.side) {
            assert!((0.0..=100.0).contains(v), "escaped the domain: {v}");
        }
        let c = correlated_pair(1_000, domain(), 0.7, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn target_is_bimodal() {
        // Quarter-point humps: the middle fifth of the domain should be
        // nearly empty, both outer modes well populated.
        let pair = correlated_pair(4_000, domain(), 0.5, 17).unwrap();
        let central =
            pair.target.iter().filter(|x| (40.0..60.0).contains(*x)).count() as f64 / 4_000.0;
        let low = pair.target.iter().filter(|x| **x < 40.0).count() as f64 / 4_000.0;
        assert!(central < 0.1, "central mass {central}");
        assert!((0.35..0.65).contains(&low), "low-mode mass {low}");
    }

    #[test]
    fn rejects_out_of_range_rho() {
        assert!(correlated_pair(10, domain(), 1.5, 1).is_err());
        assert!(correlated_pair(10, domain(), f64::NAN, 1).is_err());
        assert!(correlated_pair(10, domain(), 1.0, 1).is_ok());
    }
}
