//! Hand-computed oracle checks for the extended labeling functions
//! (F6-F10) and cross-function sanity properties.

use ppdm_datagen::{generate, Attribute, Class, LabelFunction, Record, NUM_ATTRIBUTES};

fn record(pairs: &[(Attribute, f64)]) -> Record {
    let mut r = Record::new([0.0; NUM_ATTRIBUTES]);
    for &(a, v) in pairs {
        r.set(a, v);
    }
    r
}

#[test]
fn f6_uses_total_income() {
    let f = LabelFunction::F6;
    // Young, salary 40k + commission 30k = 70k: inside [50k, 100k].
    let in_band = record(&[
        (Attribute::Age, 30.0),
        (Attribute::Salary, 40_000.0),
        (Attribute::Commission, 30_000.0),
    ]);
    assert_eq!(f.classify(&in_band), Class::A);
    // Same salary without commission: 40k misses the band.
    let below = record(&[(Attribute::Age, 30.0), (Attribute::Salary, 40_000.0)]);
    assert_eq!(f.classify(&below), Class::B);
}

#[test]
fn f8_education_costs_reduce_disposable_income() {
    let f = LabelFunction::F8;
    // 0.67 * 60k - 5k * e - 0.2 * 100k - 10k = 40.2k - 5k e - 30k.
    let base = [(Attribute::Salary, 60_000.0), (Attribute::Loan, 100_000.0)];
    let mut low_e = base.to_vec();
    low_e.push((Attribute::Elevel, 0.0));
    assert_eq!(f.classify(&record(&low_e)), Class::A); // 10.2k > 0
    let mut high_e = base.to_vec();
    high_e.push((Attribute::Elevel, 4.0));
    assert_eq!(f.classify(&record(&high_e)), Class::B); // -9.8k < 0
}

#[test]
fn f10_differs_from_f9_through_the_loan_term() {
    // Construct a record where the 0.2 * loan term flips the sign.
    let r = record(&[
        (Attribute::Salary, 80_000.0),
        (Attribute::Elevel, 0.0),
        (Attribute::Loan, 400_000.0),
        (Attribute::Hvalue, 200_000.0),
        (Attribute::Hyears, 25.0),
    ]);
    // F9: 0.67*80k + 0.2*(0.1*200k*5) - 50k = 53.6k + 20k - 50k > 0.
    assert_eq!(LabelFunction::F9.classify(&r), Class::A);
    // F10 subtracts 0.2*400k = 80k (with its lower 10k constant) -> negative.
    assert_eq!(LabelFunction::F10.classify(&r), Class::B);
}

#[test]
fn extended_functions_are_not_degenerate() {
    for f in [
        LabelFunction::F6,
        LabelFunction::F7,
        LabelFunction::F8,
        LabelFunction::F9,
        LabelFunction::F10,
    ] {
        let d = generate(20_000, f, 99);
        let [a, b] = d.class_counts();
        let frac = a as f64 / (a + b) as f64;
        assert!((0.03..=0.97).contains(&frac), "{f}: class A fraction {frac} is degenerate");
    }
}

#[test]
fn labels_depend_only_on_relevant_attributes() {
    // Zeroing out the irrelevant attributes never changes the label.
    for f in LabelFunction::ALL {
        let relevant = f.relevant_attributes();
        let d = generate(500, f, 123);
        for (rec, label) in d.iter() {
            let mut masked = Record::new([0.0; NUM_ATTRIBUTES]);
            for attr in relevant {
                masked.set(*attr, rec.get(*attr));
            }
            assert_eq!(f.classify(&masked), label, "{f}: irrelevant attribute changed label");
        }
    }
}
