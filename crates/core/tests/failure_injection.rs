//! Failure-injection and degenerate-input tests for the reconstruction
//! engine: hostile or pathological observations must degrade gracefully,
//! never panic, and always return a valid (non-negative, mass-conserving)
//! histogram.

use ppdm_core::domain::{Domain, Partition};
use ppdm_core::randomize::NoiseModel;
use ppdm_core::reconstruct::{reconstruct, ReconstructionConfig, StoppingRule};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn assert_valid(histogram: &ppdm_core::Histogram, n: usize) {
    assert!((histogram.total() - n as f64).abs() < 1e-6, "mass not conserved");
    assert!(histogram.masses().iter().all(|m| *m >= 0.0 && m.is_finite()));
}

#[test]
fn observations_far_outside_the_domain() {
    // A malicious (or buggy) client submits values far beyond domain +
    // noise span; with bounded uniform noise they are incompatible with
    // every cell.
    let noise = NoiseModel::uniform(5.0).unwrap();
    let observed = vec![1e6, -1e6, 5e5];
    let r = reconstruct(&noise, part(10), &observed, &ReconstructionConfig::default()).unwrap();
    assert_valid(&r.histogram, 3);
}

#[test]
fn mixed_compatible_and_incompatible_observations() {
    let noise = NoiseModel::uniform(5.0).unwrap();
    let mut observed: Vec<f64> = (0..100).map(|i| i as f64).collect();
    observed.extend([1e9, -1e9]);
    let r = reconstruct(&noise, part(10), &observed, &ReconstructionConfig::default()).unwrap();
    assert_valid(&r.histogram, 102);
}

#[test]
fn single_observation() {
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let r = reconstruct(&noise, part(10), &[42.0], &ReconstructionConfig::default()).unwrap();
    assert_valid(&r.histogram, 1);
    // The single point's mass should concentrate near its location.
    let p = part(10);
    let near = r.histogram.mass(p.locate(42.0));
    assert!(near > 0.05, "mass near the observation: {near}");
}

#[test]
fn all_observations_identical() {
    let noise = NoiseModel::gaussian(5.0).unwrap();
    let observed = vec![50.0; 1_000];
    let r = reconstruct(&noise, part(20), &observed, &ReconstructionConfig::default()).unwrap();
    assert_valid(&r.histogram, 1_000);
    // Identical observations are most plausibly one point. 50.0 sits on a
    // cell boundary, so the mass may concentrate in either adjacent cell
    // (or split between them); together they must dominate.
    let p = part(20);
    let near = r.histogram.mass(p.locate(49.9)) + r.histogram.mass(p.locate(50.1));
    assert!(near > 500.0, "mass near the observations: {near}");
}

#[test]
fn one_cell_partition_gets_everything() {
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let one = Partition::new(Domain::new(0.0, 100.0).unwrap(), 1).unwrap();
    let r =
        reconstruct(&noise, one, &[10.0, 50.0, 90.0], &ReconstructionConfig::default()).unwrap();
    assert!((r.histogram.mass(0) - 3.0).abs() < 1e-9);
    assert!(r.converged);
}

#[test]
fn huge_noise_relative_to_domain() {
    // Noise standard deviation 100x the domain width: reconstruction can
    // learn almost nothing but must stay sane.
    let noise = NoiseModel::gaussian(10_000.0).unwrap();
    let observed: Vec<f64> = (0..500).map(|i| (i as f64 * 37.0) % 100.0).collect();
    let r = reconstruct(&noise, part(10), &observed, &ReconstructionConfig::default()).unwrap();
    assert_valid(&r.histogram, 500);
}

#[test]
fn zero_iteration_budget_returns_the_prior() {
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let cfg = ReconstructionConfig {
        stopping: StoppingRule::MaxIterationsOnly,
        max_iterations: 0,
        ..Default::default()
    };
    let observed = vec![10.0, 20.0, 30.0, 70.0];
    let r = reconstruct(&noise, part(4), &observed, &cfg).unwrap();
    assert_eq!(r.iterations, 0);
    assert!(!r.converged);
    // Uniform prior scaled to n.
    for i in 0..4 {
        assert!((r.histogram.mass(i) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn subnormal_and_extreme_but_finite_observations_are_accepted() {
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let observed = vec![f64::MIN_POSITIVE, 50.0, 1e308];
    let r = reconstruct(&noise, part(5), &observed, &ReconstructionConfig::default()).unwrap();
    assert_valid(&r.histogram, 3);
}
