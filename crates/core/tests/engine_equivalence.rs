//! Engine-vs-reference equivalence: the vectorized
//! [`ReconstructionEngine`] against the frozen scalar
//! [`reconstruct_reference`] oracle.
//!
//! Since the lane-blocked iterate landed, engine summation order differs
//! from the seed's scalar implementation, so the contract is no longer
//! bit-for-bit: for every kernel, update mode, and noise family —
//! serial, batched, warm-cache, and warm-started — engine masses must
//! stay within `1e-10 · n` of the reference per cell.
//!
//! The property tests run with `MaxIterationsOnly` stopping at a fixed
//! iteration count: with an adaptive rule, a last-bit difference in the
//! stopping statistic could legally fire the rule one iteration apart on
//! the two arms, turning a 1e-13 numeric divergence into a spurious
//! iteration-count mismatch. Adaptive-stopping behavior itself is pinned
//! deterministically by the golden fixtures
//! (`tests/golden_reconstruction.rs`).
//!
//! Engine-vs-engine properties (warm cache, eviction, dense-vs-streamed
//! Exact rows) remain bit-for-bit: those paths compute identical values
//! in identical order by construction.

use ppdm_core::domain::{Domain, Partition};
use ppdm_core::randomize::NoiseModel;
use ppdm_core::reconstruct::{
    reconstruct, reconstruct_reference, LikelihoodKernel, Reconstruction, ReconstructionConfig,
    ReconstructionEngine, ReconstructionJob, StoppingRule, SuffStats, UpdateMode,
};
use ppdm_core::NoiseDensity;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn bimodal(n: usize, seed: u64, noise: &NoiseModel) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 25.0 } else { 75.0 };
            center + rng.gen_range(-8.0..8.0)
        })
        .collect();
    noise.perturb_all(&xs, &mut rng)
}

fn all_configs() -> Vec<ReconstructionConfig> {
    let mut configs = Vec::new();
    for kernel in [LikelihoodKernel::Midpoint, LikelihoodKernel::CellAverage] {
        for mode in [UpdateMode::Exact, UpdateMode::Bucketed] {
            configs.push(ReconstructionConfig {
                kernel,
                mode,
                // Fixed iterations (see module docs); a few hundred keeps
                // the product of cases x configs fast while exercising
                // the full iterate.
                stopping: StoppingRule::MaxIterationsOnly,
                max_iterations: 300,
                ..ReconstructionConfig::default()
            });
        }
    }
    configs
}

/// The acceptance bound of the vectorization PR: per-cell mass
/// divergence at most `1e-10 · n` against the scalar oracle, with
/// identical iteration counts and convergence flags.
fn assert_close(reference: &Reconstruction, engined: &Reconstruction, context: &str) {
    assert_eq!(reference.iterations, engined.iterations, "iterations diverged: {context}");
    assert_eq!(reference.converged, engined.converged, "convergence diverged: {context}");
    let n = reference.histogram.total();
    let tolerance = 1e-10 * n.max(1.0);
    for (cell, (r, e)) in
        reference.histogram.masses().iter().zip(engined.histogram.masses()).enumerate()
    {
        assert!(
            (r - e).abs() <= tolerance,
            "cell {cell} diverged beyond 1e-10·n: reference {r} vs engine {e} ({context})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn engine_matches_reference_within_1e10(
        seed in 0u64..1000,
        n in 30usize..250,
        scale in 2.0..25.0f64,
        cells in 5usize..30,
        gaussian in 0u32..2,
    ) {
        let noise = if gaussian == 1 {
            NoiseModel::gaussian(scale).unwrap()
        } else {
            NoiseModel::uniform(scale).unwrap()
        };
        let observed = bimodal(n, seed, &noise);
        let engine = ReconstructionEngine::new();
        for config in all_configs() {
            let reference = reconstruct_reference(&noise, part(cells), &observed, &config).unwrap();
            let engined = engine.reconstruct(&noise, part(cells), &observed, &config).unwrap();
            assert_close(&reference, &engined, &format!("{config:?}"));
            // The free function routes through the shared engine and must
            // agree with the dedicated engine bit-for-bit (same path).
            let shared = reconstruct(&noise, part(cells), &observed, &config).unwrap();
            prop_assert_eq!(&engined, &shared);
        }
    }

    #[test]
    fn reconstruct_many_matches_serial_reference_per_job(
        seed in 0u64..1000,
        jobs_n in 2usize..8,
    ) {
        let noise_g = NoiseModel::gaussian(12.0).unwrap();
        let noise_u = NoiseModel::uniform(20.0).unwrap();
        let configs = all_configs();
        let samples: Vec<(Vec<f64>, usize, usize)> = (0..jobs_n)
            .map(|i| {
                let noise = if i % 2 == 0 { &noise_g } else { &noise_u };
                (bimodal(60 + 30 * i, seed + i as u64, noise), 8 + i, i % configs.len())
            })
            .collect();
        let jobs: Vec<ReconstructionJob<'_>> = samples
            .iter()
            .map(|(obs, cells, cfg_idx)| {
                let noise: &dyn NoiseDensity =
                    if cfg_idx % 2 == 0 { &noise_g } else { &noise_u };
                ReconstructionJob::borrowed(noise, part(*cells), obs.as_slice(), configs[*cfg_idx])
            })
            .collect();
        let engine = ReconstructionEngine::new();
        let batched = engine.reconstruct_many(&jobs);
        prop_assert_eq!(batched.len(), jobs.len());
        for (job, batched) in jobs.iter().zip(batched) {
            let observed = job.observed().expect("sample-backed job");
            let reference =
                reconstruct_reference(job.noise, job.partition, observed, &job.config).unwrap();
            assert_close(&reference, &batched.unwrap(), "batched job");
        }
    }

    // Warm starts have no counterpart in `reconstruct_reference`, so the
    // oracle here is a scalar bucketed iterate (seed accumulation order,
    // warm start installed the same way) written out in this test.
    #[test]
    fn warm_started_stats_solve_matches_scalar_oracle(
        seed in 0u64..1000,
        n in 50usize..300,
        cells in 5usize..25,
        warm_tilt in 1usize..5,
    ) {
        let noise = NoiseModel::gaussian(12.0).unwrap();
        let observed = bimodal(n, seed, &noise);
        let partition = part(cells);
        let stats = SuffStats::from_values(&noise, partition, &observed).unwrap();
        // A normalized, strictly positive warm start that is not uniform.
        let warm: Vec<f64> = {
            let raw: Vec<f64> =
                (0..cells).map(|i| 1.0 + ((i * warm_tilt) % 7) as f64).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / total).collect()
        };
        for kernel in [LikelihoodKernel::Midpoint, LikelihoodKernel::CellAverage] {
            let config = ReconstructionConfig {
                kernel,
                stopping: StoppingRule::MaxIterationsOnly,
                max_iterations: 120,
                ..ReconstructionConfig::default()
            };
            let engine = ReconstructionEngine::new();
            for initial in [None, Some(warm.as_slice())] {
                let engined =
                    engine.reconstruct_stats(&noise, &stats, &config, initial).unwrap();
                let oracle = scalar_bucketed_oracle(&noise, partition, &stats, &config, initial);
                let tolerance = 1e-10 * (n as f64);
                prop_assert_eq!(engined.iterations, config.max_iterations);
                for (cell, (o, e)) in
                    oracle.iter().zip(engined.histogram.masses()).enumerate()
                {
                    prop_assert!(
                        (o - e).abs() <= tolerance,
                        "kernel {:?} warm {} cell {}: oracle {} vs engine {}",
                        kernel, initial.is_some(), cell, o, e
                    );
                }
            }
        }
    }
}

/// Scalar bucketed Bayes/EM with an optional warm start: the seed
/// implementation's exact arithmetic (row-major likelihood, zip-fold
/// denominators, in-loop scatter), extended only by installing `initial`
/// (pre-floored here like `floored_prior` does) as the starting
/// estimate. Returns the final mass vector.
fn scalar_bucketed_oracle(
    noise: &NoiseModel,
    partition: Partition,
    stats: &SuffStats,
    config: &ReconstructionConfig,
    initial: Option<&[f64]>,
) -> Vec<f64> {
    let m = partition.len();
    let extended = stats.extended();
    let pairs: Vec<(f64, f64)> = stats
        .counts()
        .iter()
        .enumerate()
        .filter(|(_, &mass)| mass > 0.0)
        .map(|(s, &mass)| (mass, extended.midpoint(s)))
        .collect();
    let likelihood: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(_, w)| {
            (0..m)
                .map(|p| match config.kernel {
                    LikelihoodKernel::Midpoint => noise.density(w - partition.midpoint(p)),
                    LikelihoodKernel::CellAverage => {
                        let (lo, hi) = partition.interval(p);
                        noise.mass_between(w - hi, w - lo) / partition.cell_width()
                    }
                })
                .collect()
        })
        .collect();
    let n = stats.count() as f64;
    let mut probs = match initial {
        Some(prior) => {
            // floored_prior's semantics: floor at 1e-12, renormalize.
            let mut floored: Vec<f64> = prior.iter().map(|p| p.max(1e-12)).collect();
            let total: f64 = floored.iter().sum();
            floored.iter_mut().for_each(|p| *p /= total);
            floored
        }
        None => vec![1.0 / m as f64; m],
    };
    let mut scratch = vec![0.0f64; m];
    for _ in 0..config.max_iterations {
        scratch.iter_mut().for_each(|s| *s = 0.0);
        let mut used_weight = 0.0;
        for ((weight, _), row) in pairs.iter().zip(&likelihood) {
            let denom: f64 = row.iter().zip(&probs).map(|(l, p)| l * p).sum();
            if denom <= f64::MIN_POSITIVE {
                continue;
            }
            used_weight += weight;
            let inv = weight / denom;
            for (s, (l, p)) in scratch.iter_mut().zip(row.iter().zip(&probs)) {
                *s += l * p * inv;
            }
        }
        if used_weight <= 0.0 {
            break;
        }
        let total: f64 = scratch.iter().sum();
        for s in &mut scratch {
            *s /= total;
        }
        let stalled = probs.iter().zip(&scratch).map(|(o, w)| (w - o).abs()).sum::<f64>() < 1e-12;
        std::mem::swap(&mut probs, &mut scratch);
        if stalled {
            break;
        }
    }
    probs.iter().map(|p| p * n).collect()
}

#[test]
fn warm_kernel_cache_never_changes_results() {
    let noise = NoiseModel::gaussian(15.0).unwrap();
    let engine = ReconstructionEngine::new();
    let config = ReconstructionConfig::default();
    let first_obs = bimodal(500, 1, &noise);
    let cold = engine.reconstruct(&noise, part(20), &first_obs, &config).unwrap();
    // Populate the cache with other geometries in between.
    for cells in [10, 15, 25, 40] {
        engine
            .reconstruct(&noise, part(cells), &bimodal(200, cells as u64, &noise), &config)
            .unwrap();
    }
    assert!(engine.cached_kernels() >= 5);
    // Same problem with a warm (and busier) cache: identical output —
    // engine vs engine stays bit-for-bit.
    let warm = engine.reconstruct(&noise, part(20), &first_obs, &config).unwrap();
    assert_eq!(cold, warm);
    // And on a different sample over the cached geometry, within the
    // oracle bound of the reference path that never caches.
    let second_obs = bimodal(700, 2, &noise);
    let warm2 = engine.reconstruct(&noise, part(20), &second_obs, &config).unwrap();
    let reference = reconstruct_reference(&noise, part(20), &second_obs, &config).unwrap();
    assert_close(&reference, &warm2, "warm cache vs reference");
}

#[test]
fn cache_eviction_shrinks_the_cache_and_never_changes_results() {
    // A budget that holds only a few kernels: cells=40 over a span-extended
    // partition is ~(40 + k) x 40 entries, so walking 30..60 cells must
    // trip the flush-on-insert path repeatedly.
    let budget = 10_000;
    let engine = ReconstructionEngine::with_cache_entry_budget(budget);
    let noise = NoiseModel::gaussian(12.0).unwrap();
    let config = ReconstructionConfig::default();
    let obs = bimodal(400, 77, &noise);

    // Baseline results from a fresh, never-evicting engine.
    let reference = ReconstructionEngine::new();
    let expected: Vec<_> = (30..60)
        .map(|cells| reference.reconstruct(&noise, part(cells), &obs, &config).unwrap())
        .collect();

    let mut evictions = 0;
    let mut prev_kernels = 0;
    for (cells, expected) in (30..60).zip(&expected) {
        let got = engine.reconstruct(&noise, part(cells), &obs, &config).unwrap();
        assert_eq!(&got, expected, "eviction changed the result at cells={cells}");
        let kernels = engine.cached_kernels();
        let entries = engine.cached_entries();
        assert!(
            entries <= budget || kernels == 1,
            "budget violated: {entries} entries across {kernels} kernels"
        );
        if kernels <= prev_kernels {
            // An insert that did not grow the kernel count means the cache
            // was flushed first: both counters shrank.
            evictions += 1;
        }
        prev_kernels = kernels;
    }
    assert!(evictions >= 2, "budget {budget} never forced an eviction across 30 geometries");

    // Post-eviction, an earlier geometry still reconstructs identically
    // (its kernel is simply rebuilt — kernel_builds() counts the rebuild).
    let builds_before = engine.kernel_builds();
    let again = engine.reconstruct(&noise, part(30), &obs, &config).unwrap();
    assert_eq!(again, expected[0]);
    assert!(engine.kernel_builds() >= builds_before, "rebuilds are counted, never negative");
}

#[test]
fn exact_mode_equivalence_on_larger_sample() {
    // The streaming Exact path at a size where the legacy implementation
    // would have materialized a 5000 x 20 likelihood matrix.
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let observed = bimodal(5_000, 9, &noise);
    let config = ReconstructionConfig {
        mode: UpdateMode::Exact,
        stopping: StoppingRule::MaxIterationsOnly,
        max_iterations: 25,
        ..ReconstructionConfig::default()
    };
    let reference = reconstruct_reference(&noise, part(20), &observed, &config).unwrap();
    let engined =
        ReconstructionEngine::new().reconstruct(&noise, part(20), &observed, &config).unwrap();
    assert_close(&reference, &engined, "exact mode, n=5000");
}
