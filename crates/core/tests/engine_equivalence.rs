//! Engine-vs-reference equivalence: the refactored
//! [`ReconstructionEngine`] must be a pure performance change. For every
//! kernel, update mode, and noise family, engine results — serial,
//! batched, and with a warm kernel cache — must match the seed's
//! straight-line implementation ([`reconstruct_reference`]) bit for bit.

use ppdm_core::domain::{Domain, Partition};
use ppdm_core::randomize::NoiseModel;
use ppdm_core::reconstruct::{
    reconstruct, reconstruct_reference, LikelihoodKernel, ReconstructionConfig,
    ReconstructionEngine, ReconstructionJob, StoppingRule, UpdateMode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn part(cells: usize) -> Partition {
    Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
}

fn bimodal(n: usize, seed: u64, noise: &NoiseModel) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n)
        .map(|_| {
            let center = if rng.gen_bool(0.5) { 25.0 } else { 75.0 };
            center + rng.gen_range(-8.0..8.0)
        })
        .collect();
    noise.perturb_all(&xs, &mut rng)
}

fn all_configs() -> Vec<ReconstructionConfig> {
    let mut configs = Vec::new();
    for kernel in [LikelihoodKernel::Midpoint, LikelihoodKernel::CellAverage] {
        for mode in [UpdateMode::Exact, UpdateMode::Bucketed] {
            configs.push(ReconstructionConfig {
                kernel,
                mode,
                // A few hundred iterations keeps the product of cases x
                // configs fast while still exercising the full iterate.
                max_iterations: 300,
                ..ReconstructionConfig::default()
            });
        }
    }
    configs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn engine_matches_reference_bit_for_bit(
        seed in 0u64..1000,
        n in 30usize..250,
        scale in 2.0..25.0f64,
        cells in 5usize..30,
        gaussian in 0u32..2,
    ) {
        let noise = if gaussian == 1 {
            NoiseModel::gaussian(scale).unwrap()
        } else {
            NoiseModel::uniform(scale).unwrap()
        };
        let observed = bimodal(n, seed, &noise);
        let engine = ReconstructionEngine::new();
        for config in all_configs() {
            let reference = reconstruct_reference(&noise, part(cells), &observed, &config).unwrap();
            let engined = engine.reconstruct(&noise, part(cells), &observed, &config).unwrap();
            // Bit-for-bit: PartialEq on f64 masses, no tolerance.
            prop_assert_eq!(
                &reference, &engined,
                "engine diverged from reference for {:?}", config
            );
            // The free function routes through the shared engine and must
            // agree too.
            let shared = reconstruct(&noise, part(cells), &observed, &config).unwrap();
            prop_assert_eq!(&reference, &shared);
        }
    }

    #[test]
    fn reconstruct_many_matches_serial_reference_per_job(
        seed in 0u64..1000,
        jobs_n in 2usize..8,
    ) {
        let noise_g = NoiseModel::gaussian(12.0).unwrap();
        let noise_u = NoiseModel::uniform(20.0).unwrap();
        let configs = all_configs();
        let samples: Vec<(Vec<f64>, usize, usize)> = (0..jobs_n)
            .map(|i| {
                let noise = if i % 2 == 0 { &noise_g } else { &noise_u };
                (bimodal(60 + 30 * i, seed + i as u64, noise), 8 + i, i % configs.len())
            })
            .collect();
        let jobs: Vec<ReconstructionJob<'_>> = samples
            .iter()
            .map(|(obs, cells, cfg_idx)| {
                let noise: &dyn ppdm_core::NoiseDensity =
                    if cfg_idx % 2 == 0 { &noise_g } else { &noise_u };
                ReconstructionJob::borrowed(noise, part(*cells), obs.as_slice(), configs[*cfg_idx])
            })
            .collect();
        let engine = ReconstructionEngine::new();
        let batched = engine.reconstruct_many(&jobs);
        prop_assert_eq!(batched.len(), jobs.len());
        for (job, batched) in jobs.iter().zip(batched) {
            let observed = job.observed().expect("sample-backed job");
            let reference =
                reconstruct_reference(job.noise, job.partition, observed, &job.config).unwrap();
            prop_assert_eq!(reference, batched.unwrap());
        }
    }
}

#[test]
fn warm_kernel_cache_never_changes_results() {
    let noise = NoiseModel::gaussian(15.0).unwrap();
    let engine = ReconstructionEngine::new();
    let config = ReconstructionConfig::default();
    let first_obs = bimodal(500, 1, &noise);
    let cold = engine.reconstruct(&noise, part(20), &first_obs, &config).unwrap();
    // Populate the cache with other geometries in between.
    for cells in [10, 15, 25, 40] {
        engine
            .reconstruct(&noise, part(cells), &bimodal(200, cells as u64, &noise), &config)
            .unwrap();
    }
    assert!(engine.cached_kernels() >= 5);
    // Same problem with a warm (and busier) cache: identical output.
    let warm = engine.reconstruct(&noise, part(20), &first_obs, &config).unwrap();
    assert_eq!(cold, warm);
    // And on a different sample over the cached geometry, still identical
    // to the reference path that never caches.
    let second_obs = bimodal(700, 2, &noise);
    let warm2 = engine.reconstruct(&noise, part(20), &second_obs, &config).unwrap();
    let reference = reconstruct_reference(&noise, part(20), &second_obs, &config).unwrap();
    assert_eq!(reference, warm2);
}

#[test]
fn cache_eviction_shrinks_the_cache_and_never_changes_results() {
    // A budget that holds only a few kernels: cells=40 over a span-extended
    // partition is ~(40 + k) x 40 entries, so walking 30..60 cells must
    // trip the flush-on-insert path repeatedly.
    let budget = 10_000;
    let engine = ReconstructionEngine::with_cache_entry_budget(budget);
    let noise = NoiseModel::gaussian(12.0).unwrap();
    let config = ReconstructionConfig::default();
    let obs = bimodal(400, 77, &noise);

    // Baseline results from a fresh, never-evicting engine.
    let reference = ReconstructionEngine::new();
    let expected: Vec<_> = (30..60)
        .map(|cells| reference.reconstruct(&noise, part(cells), &obs, &config).unwrap())
        .collect();

    let mut evictions = 0;
    let mut prev_kernels = 0;
    for (cells, expected) in (30..60).zip(&expected) {
        let got = engine.reconstruct(&noise, part(cells), &obs, &config).unwrap();
        assert_eq!(&got, expected, "eviction changed the result at cells={cells}");
        let kernels = engine.cached_kernels();
        let entries = engine.cached_entries();
        assert!(
            entries <= budget || kernels == 1,
            "budget violated: {entries} entries across {kernels} kernels"
        );
        if kernels <= prev_kernels {
            // An insert that did not grow the kernel count means the cache
            // was flushed first: both counters shrank.
            evictions += 1;
        }
        prev_kernels = kernels;
    }
    assert!(evictions >= 2, "budget {budget} never forced an eviction across 30 geometries");

    // Post-eviction, an earlier geometry still reconstructs identically
    // (its kernel is simply rebuilt).
    let again = engine.reconstruct(&noise, part(30), &obs, &config).unwrap();
    assert_eq!(again, expected[0]);
}

#[test]
fn exact_mode_equivalence_on_larger_sample() {
    // The streaming Exact path at a size where the legacy implementation
    // would have materialized a 5000 x 20 likelihood matrix.
    let noise = NoiseModel::gaussian(10.0).unwrap();
    let observed = bimodal(5_000, 9, &noise);
    let config = ReconstructionConfig {
        mode: UpdateMode::Exact,
        stopping: StoppingRule::MaxIterationsOnly,
        max_iterations: 25,
        ..ReconstructionConfig::default()
    };
    let reference = reconstruct_reference(&noise, part(20), &observed, &config).unwrap();
    let engined =
        ReconstructionEngine::new().reconstruct(&noise, part(20), &observed, &config).unwrap();
    assert_eq!(reference, engined);
}
