//! Privacy quantification (AS00 section 2.2).
//!
//! If, from the perturbed value, the true value can be estimated with `c%`
//! confidence to lie in an interval `[a, b]`, then the width `b - a`
//! measures the privacy offered at confidence `c`. Expressed as a
//! percentage of the attribute's domain width this gives the *privacy
//! level* used throughout the paper's evaluation (e.g. "Gaussian noise at
//! 100% privacy and 95% confidence").
//!
//! The module answers both directions of the question:
//!
//! * [`interval_width`] / [`privacy_pct`]: given a noise model, how much
//!   privacy does it provide? (Closed forms for the built-in families;
//!   [`interval`] computes the same metric generically from any
//!   [`crate::randomize::NoiseDensity`].)
//! * [`noise_for_privacy`]: given a target privacy level, how much noise is
//!   needed? (This is how the evaluation's parameter sweeps are driven.)
//!
//! Categorical channels get the analogous treatment in [`discrete`]:
//! posterior privacy-breach probabilities and conditional entropy,
//! computed from any [`crate::randomize::DiscreteChannel`]'s exact
//! posterior columns.

pub mod discrete;
pub mod entropy;
pub mod interval;

use serde::{Deserialize, Serialize};

use crate::domain::Domain;
use crate::error::{Error, Result};
use crate::randomize::{GaussianMixture, NoiseModel};
use crate::stats::special::normal_quantile;

/// The confidence level used by all of AS00's reported privacy numbers.
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Which family of noise distribution to use when solving for a target
/// privacy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseKind {
    /// Uniform noise on `[-alpha, +alpha]`.
    Uniform,
    /// Zero-mean Gaussian noise.
    Gaussian,
    /// Zero-mean Laplace (double-exponential) noise.
    Laplace,
    /// Zero-mean two-component Gaussian mixture noise in the reference
    /// shape ([`MIXTURE_SIGMA_RATIO`], [`MIXTURE_WIDE_WEIGHT`]), scaled
    /// to the requested privacy level.
    GaussianMixture,
}

impl NoiseKind {
    /// All four built-in families in presentation order.
    pub const ALL: [NoiseKind; 4] =
        [NoiseKind::Uniform, NoiseKind::Gaussian, NoiseKind::Laplace, NoiseKind::GaussianMixture];
}

impl std::fmt::Display for NoiseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NoiseKind::Uniform => write!(f, "uniform"),
            NoiseKind::Gaussian => write!(f, "gaussian"),
            NoiseKind::Laplace => write!(f, "laplace"),
            NoiseKind::GaussianMixture => write!(f, "gauss-mix"),
        }
    }
}

/// Wide-to-narrow sigma ratio of the reference mixture shape used by
/// [`noise_for_privacy`] for [`NoiseKind::GaussianMixture`].
pub const MIXTURE_SIGMA_RATIO: f64 = 4.0;

/// Wide-component weight of the reference mixture shape used by
/// [`noise_for_privacy`] for [`NoiseKind::GaussianMixture`].
pub const MIXTURE_WIDE_WEIGHT: f64 = 0.25;

pub(crate) fn validate_confidence(confidence: f64) -> Result<()> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(Error::InvalidProbability { name: "confidence", value: confidence });
    }
    Ok(())
}

/// Width of the tightest interval that contains the true value with the
/// given confidence, for a single perturbed observation.
///
/// * Uniform on `[-alpha, alpha]`: any interval of width `W <= 2 alpha`
///   captures at most `W / (2 alpha)` of the posterior mass, so confidence
///   `c` needs `W = 2 alpha c`.
/// * Gaussian with std dev `sigma`: the tightest such interval is centered,
///   with half-width `z sigma` where `Phi(z) = (1 + c) / 2`, i.e.
///   `W = 2 z sigma` (AS00's tabulated `1.34 sigma` at 50% and
///   `3.92 sigma` at 95%).
/// * Laplace with scale `b`: the tightest interval is centered with width
///   `-2 b ln(1 - c)`.
/// * Gaussian mixture: symmetric and unimodal, so the tightest interval
///   is centered; its width is solved from the exact mixture CDF
///   ([`interval::centered_width`]).
/// * [`NoiseModel::None`]: zero width — no privacy.
pub fn interval_width(noise: &NoiseModel, confidence: f64) -> Result<f64> {
    validate_confidence(confidence)?;
    Ok(match *noise {
        NoiseModel::None => 0.0,
        NoiseModel::Uniform { half_width } => 2.0 * half_width * confidence,
        NoiseModel::Gaussian { std_dev } => {
            2.0 * normal_quantile((1.0 + confidence) / 2.0) * std_dev
        }
        NoiseModel::Laplace { ref channel } => channel.interval_width(confidence),
        NoiseModel::GaussianMixture { ref channel } => {
            interval::centered_width(channel, confidence)?
        }
    })
}

/// Privacy level as a percentage of the domain width:
/// `100 * interval_width / domain.width()`.
pub fn privacy_pct(noise: &NoiseModel, confidence: f64, domain: &Domain) -> Result<f64> {
    Ok(100.0 * interval_width(noise, confidence)? / domain.width())
}

/// Solves for the noise model of the requested kind that achieves exactly
/// `target_pct` privacy (of `domain`'s width) at the given confidence.
///
/// `target_pct == 0` yields [`NoiseModel::None`].
pub fn noise_for_privacy(
    kind: NoiseKind,
    target_pct: f64,
    confidence: f64,
    domain: &Domain,
) -> Result<NoiseModel> {
    validate_confidence(confidence)?;
    if !target_pct.is_finite() || target_pct < 0.0 {
        return Err(Error::InvalidNoiseParameter { name: "target_pct", value: target_pct });
    }
    if target_pct == 0.0 {
        return Ok(NoiseModel::None);
    }
    let width = target_pct / 100.0 * domain.width();
    match kind {
        NoiseKind::Uniform => NoiseModel::uniform(width / (2.0 * confidence)),
        NoiseKind::Gaussian => {
            let z = normal_quantile((1.0 + confidence) / 2.0);
            NoiseModel::gaussian(width / (2.0 * z))
        }
        NoiseKind::Laplace => NoiseModel::laplace(width / (-2.0 * (1.0 - confidence).ln())),
        NoiseKind::GaussianMixture => {
            // The interval width of a mixture scales exactly linearly with
            // a joint scaling of both sigmas, so solve once at unit narrow
            // sigma in the reference shape and scale to the target.
            let unit = GaussianMixture::new(1.0, MIXTURE_SIGMA_RATIO, MIXTURE_WIDE_WEIGHT)
                .expect("static reference shape is valid");
            let unit_width = interval::centered_width(&unit, confidence)?;
            Ok(NoiseModel::GaussianMixture { channel: unit.scaled(width / unit_width)? })
        }
    }
}

/// One row of the paper's privacy-quantification table: the interval width
/// (in multiples of the noise parameter) at a given confidence level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyTableRow {
    /// Confidence level in `(0, 1)`.
    pub confidence: f64,
    /// Interval width divided by `2 alpha` (the full uniform noise spread).
    pub uniform_width_per_spread: f64,
    /// Interval width in multiples of the Gaussian standard deviation.
    pub gaussian_width_per_sigma: f64,
}

/// Reproduces the analytic content of AS00's confidence/width table for the
/// given confidence levels.
pub fn privacy_table(confidences: &[f64]) -> Result<Vec<PrivacyTableRow>> {
    confidences
        .iter()
        .map(|&c| {
            validate_confidence(c)?;
            let unit_uniform = NoiseModel::uniform(0.5).expect("static parameter"); // spread 2a = 1
            let unit_gauss = NoiseModel::gaussian(1.0).expect("static parameter");
            Ok(PrivacyTableRow {
                confidence: c,
                uniform_width_per_spread: interval_width(&unit_uniform, c)?,
                gaussian_width_per_sigma: interval_width(&unit_gauss, c)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Domain {
        Domain::new(20_000.0, 150_000.0).unwrap()
    }

    #[test]
    fn paper_table_values() {
        // AS00 section 2.2: at 50% confidence the interval widths are
        // alpha (uniform) and 1.34 sigma (Gaussian); at 95% confidence
        // 1.9 alpha and 3.92 sigma; at 99.9% confidence 1.998 alpha and
        // 6.58 sigma.
        let u = NoiseModel::uniform(1.0).unwrap();
        let g = NoiseModel::gaussian(1.0).unwrap();
        assert!((interval_width(&u, 0.5).unwrap() - 1.0).abs() < 1e-12);
        assert!((interval_width(&u, 0.95).unwrap() - 1.9).abs() < 1e-12);
        assert!((interval_width(&u, 0.999).unwrap() - 1.998).abs() < 1e-12);
        assert!((interval_width(&g, 0.5).unwrap() - 1.349).abs() < 1e-3);
        assert!((interval_width(&g, 0.95).unwrap() - 3.92).abs() < 1e-2);
        assert!((interval_width(&g, 0.999).unwrap() - 6.58).abs() < 1e-2);
    }

    #[test]
    fn none_has_zero_privacy() {
        assert_eq!(interval_width(&NoiseModel::None, 0.95).unwrap(), 0.0);
        assert_eq!(privacy_pct(&NoiseModel::None, 0.95, &domain()).unwrap(), 0.0);
    }

    #[test]
    fn confidence_is_validated() {
        let u = NoiseModel::uniform(1.0).unwrap();
        assert!(interval_width(&u, 0.0).is_err());
        assert!(interval_width(&u, 1.0).is_err());
        assert!(interval_width(&u, f64::NAN).is_err());
    }

    #[test]
    fn noise_for_privacy_roundtrips_uniform() {
        for &target in &[25.0, 50.0, 100.0, 150.0, 200.0] {
            let noise = noise_for_privacy(NoiseKind::Uniform, target, 0.95, &domain()).unwrap();
            let back = privacy_pct(&noise, 0.95, &domain()).unwrap();
            assert!((back - target).abs() < 1e-9, "target {target}, got {back}");
        }
    }

    #[test]
    fn noise_for_privacy_roundtrips_gaussian() {
        for &target in &[25.0, 50.0, 100.0, 150.0, 200.0] {
            let noise = noise_for_privacy(NoiseKind::Gaussian, target, 0.95, &domain()).unwrap();
            let back = privacy_pct(&noise, 0.95, &domain()).unwrap();
            assert!((back - target).abs() < 1e-6, "target {target}, got {back}");
        }
    }

    #[test]
    fn noise_for_privacy_roundtrips_laplace_and_mixture() {
        for kind in [NoiseKind::Laplace, NoiseKind::GaussianMixture] {
            for &target in &[25.0, 50.0, 100.0, 150.0, 200.0] {
                let noise = noise_for_privacy(kind, target, 0.95, &domain()).unwrap();
                let back = privacy_pct(&noise, 0.95, &domain()).unwrap();
                assert!((back - target).abs() < 1e-6, "{kind} target {target}, got {back}");
            }
        }
    }

    #[test]
    fn laplace_interval_width_closed_form() {
        // Width at confidence c is -2 b ln(1 - c).
        let l = NoiseModel::laplace(3.0).unwrap();
        let w = interval_width(&l, 0.95).unwrap();
        assert!((w - (-6.0 * 0.05_f64.ln())).abs() < 1e-12);
        // And the interval really captures 95% of the mass.
        assert!((l.mass_between(-w / 2.0, w / 2.0) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn mixture_interval_width_captures_confidence() {
        let m = NoiseModel::gaussian_mixture(5.0, 20.0, 0.25).unwrap();
        for c in [0.5, 0.95, 0.999] {
            let w = interval_width(&m, c).unwrap();
            assert!((m.mass_between(-w / 2.0, w / 2.0) - c).abs() < 1e-9, "confidence {c}");
        }
    }

    #[test]
    fn mixture_reference_shape_is_preserved() {
        let NoiseModel::GaussianMixture { channel } =
            noise_for_privacy(NoiseKind::GaussianMixture, 100.0, 0.95, &domain()).unwrap()
        else {
            panic!("mixture kind must yield a mixture model")
        };
        assert!(
            (channel.std_dev_wide() / channel.std_dev_narrow() - MIXTURE_SIGMA_RATIO).abs() < 1e-9
        );
        assert!((channel.weight_wide() - MIXTURE_WIDE_WEIGHT).abs() < 1e-12);
    }

    #[test]
    fn zero_target_gives_no_noise() {
        let noise = noise_for_privacy(NoiseKind::Gaussian, 0.0, 0.95, &domain()).unwrap();
        assert!(noise.is_none());
    }

    #[test]
    fn negative_target_rejected() {
        assert!(noise_for_privacy(NoiseKind::Uniform, -5.0, 0.95, &domain()).is_err());
    }

    #[test]
    fn gaussian_needs_less_spread_than_uniform_at_high_confidence() {
        // At 99.9% confidence the uniform distribution must spread noise
        // almost uniformly over the full interval, while the Gaussian
        // concentrates it — the reason AS00 finds Gaussian gives better
        // accuracy at equal (high-confidence) privacy.
        let d = domain();
        let u = noise_for_privacy(NoiseKind::Uniform, 100.0, 0.999, &d).unwrap();
        let g = noise_for_privacy(NoiseKind::Gaussian, 100.0, 0.999, &d).unwrap();
        assert!(u.noise_std_dev() > g.noise_std_dev());
    }

    #[test]
    fn privacy_table_shape() {
        let rows = privacy_table(&[0.5, 0.95, 0.999]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].uniform_width_per_spread < rows[1].uniform_width_per_spread);
        assert!(rows[1].gaussian_width_per_sigma < rows[2].gaussian_width_per_sigma);
        assert!((rows[1].uniform_width_per_spread - 0.95).abs() < 1e-12);
        assert!(privacy_table(&[1.5]).is_err());
    }

    #[test]
    fn privacy_monotone_in_noise() {
        let d = domain();
        let small = NoiseModel::gaussian(1_000.0).unwrap();
        let large = NoiseModel::gaussian(10_000.0).unwrap();
        assert!(privacy_pct(&small, 0.95, &d).unwrap() < privacy_pct(&large, 0.95, &d).unwrap());
    }
}
