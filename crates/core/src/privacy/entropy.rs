//! Entropy-based privacy metrics (extension).
//!
//! Agrawal & Aggarwal (PODS 2001) — the direct follow-up to AS00 — observed
//! that the confidence-interval metric ignores what the adversary learns
//! from the *reconstructed distribution itself*, and proposed measuring
//! privacy as `Pi(X) = 2^{h(X)}` where `h` is differential entropy in bits.
//! For a uniform random variable on an interval of length `L`,
//! `Pi = L`: the metric generalizes "interval width" to arbitrary
//! distributions.
//!
//! This module provides:
//!
//! * [`inherent_privacy`] — `Pi(Y)` of a noise model in closed form;
//! * [`histogram_privacy`] — `Pi` of a piecewise-constant density estimated
//!   from a [`Histogram`];
//! * [`mutual_information_estimate`] — an estimate of `I(X; W)` for
//!   additive noise (`h(W) - h(Y)`), quantifying *average* disclosure;
//! * [`conditional_privacy`] — `Pi(X | W) = 2^{h(X) - I(X; W)}`, the privacy
//!   remaining after the adversary sees the perturbed value.

use crate::randomize::{NoiseDensity, NoiseModel};
use crate::stats::Histogram;

/// Differential entropy of a noise channel in bits, `h(Y)`; `None` for
/// the identity channel (whose point mass has `h = -inf`).
///
/// Closed forms for uniform (`log2(2a)`), Gaussian
/// (`0.5 log2(2 pi e s^2)`), and Laplace (`log2(2 b e)`); the Gaussian
/// mixture has no closed form and is integrated numerically
/// ([`channel_entropy_bits`]).
pub fn noise_entropy_bits(noise: &NoiseModel) -> Option<f64> {
    match *noise {
        NoiseModel::None => None,
        NoiseModel::Uniform { half_width } => Some((2.0 * half_width).log2()),
        NoiseModel::Gaussian { std_dev } => Some(
            0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * std_dev * std_dev).log2(),
        ),
        NoiseModel::Laplace { ref channel } => Some(channel.entropy_bits()),
        NoiseModel::GaussianMixture { ref channel } => Some(channel_entropy_bits(channel)),
    }
}

/// Numerically integrates the differential entropy (in bits) of any
/// [`NoiseDensity`] over its effective support: Simpson's rule on
/// `-f log2 f` across `[-span, span]`.
///
/// Accuracy is limited by the span cut (mass outside the span is
/// ignored) and the fixed grid; for the built-in channels it matches the
/// closed forms to ~1e-3 bits, which is ample for privacy accounting.
pub fn channel_entropy_bits(noise: &dyn NoiseDensity) -> f64 {
    let span = noise.span();
    if span <= 0.0 {
        return f64::NEG_INFINITY;
    }
    // Simpson's rule needs an even interval count.
    const STEPS: usize = 4096;
    let h = 2.0 * span / STEPS as f64;
    let integrand = |y: f64| {
        let f = noise.density(y);
        if f > 0.0 {
            -f * f.log2()
        } else {
            0.0
        }
    };
    let mut sum = integrand(-span) + integrand(span);
    for i in 1..STEPS {
        let weight = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += weight * integrand(-span + i as f64 * h);
    }
    sum * h / 3.0
}

/// `Pi(Y) = 2^{h(Y)}` of a noise distribution, in the units of the data.
///
/// * Uniform on `[-a, a]`: `h = log2(2a)`, so `Pi = 2a`.
/// * Gaussian with std dev `s`: `h = 0.5 log2(2 pi e s^2)`, so
///   `Pi = s * sqrt(2 pi e)` (about `4.13 s`).
/// * Laplace with scale `b`: `h = log2(2 b e)`, so `Pi = 2 b e`
///   (about `5.44 b`).
/// * Gaussian mixture: `2^h` with `h` integrated numerically.
/// * No noise: `Pi = 0` (the degenerate distribution carries no
///   uncertainty).
pub fn inherent_privacy(noise: &NoiseModel) -> f64 {
    match *noise {
        NoiseModel::None => 0.0,
        NoiseModel::Uniform { half_width } => 2.0 * half_width,
        NoiseModel::Gaussian { std_dev } => {
            std_dev * (2.0 * std::f64::consts::PI * std::f64::consts::E).sqrt()
        }
        NoiseModel::Laplace { ref channel } => 2.0 * channel.scale() * std::f64::consts::E,
        NoiseModel::GaussianMixture { ref channel } => channel_entropy_bits(channel).exp2(),
    }
}

/// Differential entropy, in bits, of the piecewise-constant density implied
/// by a histogram: `h = -sum p_i log2(p_i / w)` over cells with `p_i > 0`,
/// where `w` is the cell width.
pub fn differential_entropy_bits(hist: &Histogram) -> f64 {
    let w = hist.partition().cell_width();
    hist.probabilities().iter().filter(|p| **p > 0.0).map(|p| -p * (p / w).log2()).sum()
}

/// `Pi = 2^{h}` of the histogram's piecewise-constant density. For a
/// histogram that is uniform over `k` cells of width `w`, this equals
/// `k * w` — the length of its support.
pub fn histogram_privacy(hist: &Histogram) -> f64 {
    differential_entropy_bits(hist).exp2()
}

/// Estimates the average information disclosure `I(X; W)` in bits for
/// additive independent noise, using `I(X; W) = h(W) - h(W | X) = h(W) - h(Y)`.
///
/// `perturbed` should be a histogram of the observed (perturbed) values over
/// a partition wide enough to cover them. Clamped at zero: sampling noise
/// can make the plug-in estimate marginally negative.
pub fn mutual_information_estimate(perturbed: &Histogram, noise: &NoiseModel) -> f64 {
    let h_w = differential_entropy_bits(perturbed);
    let Some(h_y) = noise_entropy_bits(noise) else {
        return f64::INFINITY; // identity channel discloses everything
    };
    (h_w - h_y).max(0.0)
}

/// Privacy remaining after observing the perturbed value:
/// `Pi(X | W) = 2^{h(X) - I(X; W)}`.
///
/// `prior_entropy_bits` is `h(X)` of the original attribute (e.g. from
/// [`differential_entropy_bits`] on the true or reconstructed histogram).
pub fn conditional_privacy(prior_entropy_bits: f64, mutual_information_bits: f64) -> f64 {
    if mutual_information_bits.is_infinite() {
        return 0.0;
    }
    (prior_entropy_bits - mutual_information_bits).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, Partition};

    fn uniform_hist(lo: f64, hi: f64, cells: usize) -> Histogram {
        let p = Partition::new(Domain::new(lo, hi).unwrap(), cells).unwrap();
        Histogram::from_mass(p, vec![1.0; cells]).unwrap()
    }

    #[test]
    fn inherent_privacy_closed_forms() {
        assert_eq!(inherent_privacy(&NoiseModel::None), 0.0);
        let u = NoiseModel::uniform(5.0).unwrap();
        assert_eq!(inherent_privacy(&u), 10.0);
        let g = NoiseModel::gaussian(1.0).unwrap();
        assert!((inherent_privacy(&g) - 4.1327).abs() < 1e-3);
        // Laplace: Pi = 2 b e.
        let l = NoiseModel::laplace(1.0).unwrap();
        assert!((inherent_privacy(&l) - 2.0 * std::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn numeric_entropy_matches_closed_forms() {
        let g = NoiseModel::gaussian(3.0).unwrap();
        let l = NoiseModel::laplace(2.0).unwrap();
        for noise in [&g, &l] {
            let closed = noise_entropy_bits(noise).unwrap();
            let numeric = channel_entropy_bits(noise);
            assert!((closed - numeric).abs() < 2e-3, "{noise:?}: {closed} vs {numeric}");
        }
    }

    #[test]
    fn mixture_entropy_between_components() {
        // The mixture's entropy lies between its components' entropies
        // and exceeds the entropy of a Gaussian with the narrow sigma.
        let narrow = noise_entropy_bits(&NoiseModel::gaussian(5.0).unwrap()).unwrap();
        let wide = noise_entropy_bits(&NoiseModel::gaussian(20.0).unwrap()).unwrap();
        let mix =
            noise_entropy_bits(&NoiseModel::gaussian_mixture(5.0, 20.0, 0.25).unwrap()).unwrap();
        assert!(mix > narrow, "mix {mix} narrow {narrow}");
        assert!(mix < wide + 1.0, "mix {mix} wide {wide}");
        assert!(inherent_privacy(&NoiseModel::gaussian_mixture(5.0, 20.0, 0.25).unwrap()) > 0.0);
    }

    #[test]
    fn histogram_privacy_of_uniform_is_support_length() {
        // Uniform over [0, 8]: Pi should be 8 regardless of cell count.
        for cells in [1, 2, 4, 8, 16] {
            let h = uniform_hist(0.0, 8.0, cells);
            assert!(
                (histogram_privacy(&h) - 8.0).abs() < 1e-9,
                "cells {cells}: {}",
                histogram_privacy(&h)
            );
        }
    }

    #[test]
    fn concentration_reduces_privacy() {
        let p = Partition::new(Domain::new(0.0, 8.0).unwrap(), 8).unwrap();
        let spread = Histogram::from_mass(p, vec![1.0; 8]).unwrap();
        let peaked =
            Histogram::from_mass(p, vec![100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(histogram_privacy(&peaked) < histogram_privacy(&spread));
    }

    #[test]
    fn point_mass_has_zero_entropy_privacy() {
        let p = Partition::new(Domain::new(0.0, 8.0).unwrap(), 8).unwrap();
        let point = Histogram::from_mass(p, vec![5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        // Density concentrated on one cell of width 1: h = 0 bits, Pi = 1
        // (the cell width) — the adversary knows the cell but not the point.
        assert!((histogram_privacy(&point) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mutual_information_none_is_infinite() {
        let h = uniform_hist(0.0, 8.0, 8);
        assert!(mutual_information_estimate(&h, &NoiseModel::None).is_infinite());
        assert_eq!(conditional_privacy(3.0, f64::INFINITY), 0.0);
    }

    #[test]
    fn mutual_information_shrinks_with_noise() {
        // X uniform on [0, 8]; W = X + Y. For large noise the perturbed
        // distribution approaches the noise distribution and I -> small;
        // for small noise h(W) >> h(Y).
        let w_small_noise = uniform_hist(-1.0, 9.0, 20); // approx W for a=1
        let small = NoiseModel::uniform(1.0).unwrap();
        let large = NoiseModel::uniform(50.0).unwrap();
        let w_large_noise = uniform_hist(-50.0, 58.0, 108); // approx W for a=50
        let mi_small = mutual_information_estimate(&w_small_noise, &small);
        let mi_large = mutual_information_estimate(&w_large_noise, &large);
        assert!(mi_small > mi_large, "mi_small {mi_small} mi_large {mi_large}");
        assert!(mi_large >= 0.0);
    }

    #[test]
    fn conditional_privacy_degrades_gracefully() {
        // h(X) = 3 bits (uniform on length-8 support). With 1 bit of
        // disclosure, remaining privacy halves.
        let full = conditional_privacy(3.0, 0.0);
        let half = conditional_privacy(3.0, 1.0);
        assert!((full - 8.0).abs() < 1e-12);
        assert!((half - 4.0).abs() < 1e-12);
    }
}
