//! Privacy metrics for discrete channels (extension).
//!
//! The randomization literature that followed AS00 (Evfimievski et al.
//! KDD'02; Mohaisen & Hong's revisit of association-rule randomization)
//! measures categorical privacy through the channel's *posterior*: after
//! seeing the randomized state, how confidently can an adversary infer
//! the true one? Every quantity here is computed from the channel's
//! transition matrix directly, so every channel — randomized response,
//! the assoc partial-match channel, arbitrary
//! [`crate::randomize::StochasticMatrix`] designs — gets them for free:
//!
//! * [`posterior_breach`] / [`posterior_breach_of`] — the worst-case
//!   posterior probability (the "privacy breach" measure: a breach of
//!   level `rho` occurs when some observation drives some true state's
//!   posterior above `rho`);
//! * [`posterior_entropy_bits`] — `H(T | O)`, the uncertainty about the
//!   true state that *survives* observation, the discrete analogue of
//!   AA01's conditional entropy privacy;
//! * [`transition_entropy_bits`] — `H(O | T)` under a uniform prior, the
//!   randomness the channel itself injects (the discrete analogue of
//!   [`super::entropy::noise_entropy_bits`]).
//!
//! ## Degenerate priors
//!
//! A prior may carry zero-mass states (the adversary knows some states
//! cannot occur) and need not be normalized. An observed state whose
//! marginal under the prior is zero is *unobservable*: it contributes a
//! well-defined 0 to every metric and is skipped, never divided by. The
//! metrics deliberately bypass [`DiscreteChannel::posterior_column`]
//! (an overridable trait method) and compute the joint columns inline,
//! so a custom channel's unguarded override can neither inject `0/0 →
//! NaN` posteriors into sweep tables nor silently zero a breach; a
//! channel whose transition entries are non-finite is reported as
//! [`Error::InvalidMass`] instead of propagating `NaN`.

use crate::error::{Error, Result};
use crate::randomize::DiscreteChannel;

/// Validates a prior over the channel's states and returns its total.
fn validate_prior(channel: &dyn DiscreteChannel, prior: &[f64]) -> Result<f64> {
    if prior.len() != channel.states() {
        return Err(Error::CategoryMismatch { expected: channel.states(), found: prior.len() });
    }
    if let Some(bad) = prior.iter().find(|p| !p.is_finite() || **p < 0.0) {
        return Err(Error::InvalidMass(format!(
            "prior entries must be finite and >= 0, got {bad}"
        )));
    }
    let total: f64 = prior.iter().sum();
    if total <= 0.0 {
        return Err(Error::InvalidMass("prior carries no mass".to_string()));
    }
    Ok(total)
}

/// Unnormalized joint column for one observed state:
/// `joint_t = P(o | t) * prior_t`, plus its total (the unnormalized
/// observed marginal). Errors on non-finite transition entries — the
/// only way a `NaN` could otherwise sneak through the zero-total skip
/// check and poison a downstream table.
///
/// Computed from [`DiscreteChannel::transition`] directly rather than
/// the overridable `posterior_column`, so custom overrides cannot change
/// (or break) the metric semantics.
fn joint_column(channel: &dyn DiscreteChannel, prior: &[f64], o: usize) -> Result<(Vec<f64>, f64)> {
    let mut total = 0.0;
    let joint: Vec<f64> = prior
        .iter()
        .enumerate()
        .map(|(t, p)| {
            let j = channel.transition(o, t) * p;
            total += j;
            j
        })
        .collect();
    if !total.is_finite() {
        return Err(Error::InvalidMass(format!(
            "channel produced a non-finite likelihood for observed state {o}"
        )));
    }
    Ok((joint, total))
}

/// Worst-case posterior probability of *any* true state: the maximum of
/// `P(T = t | O = o)` over every true state `t` and every observed state
/// `o` the prior can produce. `1.0` means some observation reveals some
/// true state with certainty (e.g. the identity channel).
///
/// `prior` is the adversary's marginal over true states (any nonnegative
/// weighting; it is normalized internally). Zero-mass prior states are
/// permitted: an observed state that cannot occur under the prior is
/// skipped as a well-defined 0 contribution, never divided by.
pub fn posterior_breach(channel: &dyn DiscreteChannel, prior: &[f64]) -> Result<f64> {
    validate_prior(channel, prior)?;
    let mut worst = 0.0f64;
    for o in 0..channel.states() {
        let (joint, total) = joint_column(channel, prior, o)?;
        if total <= 0.0 {
            continue; // unobservable under this prior
        }
        for j in joint {
            worst = worst.max(j / total);
        }
    }
    Ok(worst)
}

/// Worst-case posterior probability of one *specific* true state
/// (`truth`): `max_o P(T = truth | O = o)` over observable states — the
/// per-item privacy-breach measure of the randomized-transaction
/// literature.
pub fn posterior_breach_of(
    channel: &dyn DiscreteChannel,
    prior: &[f64],
    truth: usize,
) -> Result<f64> {
    if truth >= channel.states() {
        return Err(Error::StateOutOfRange { state: truth, states: channel.states() });
    }
    validate_prior(channel, prior)?;
    let mut worst = 0.0f64;
    for o in 0..channel.states() {
        let (joint, total) = joint_column(channel, prior, o)?;
        if total <= 0.0 {
            continue;
        }
        worst = worst.max(joint[truth] / total);
    }
    Ok(worst)
}

/// Conditional entropy `H(T | O)` in bits under the given prior: the
/// uncertainty about the true state remaining *after* the adversary sees
/// the randomized one. `0` for the identity channel; `H(prior)` for a
/// channel whose output is independent of its input.
pub fn posterior_entropy_bits(channel: &dyn DiscreteChannel, prior: &[f64]) -> Result<f64> {
    let prior_total = validate_prior(channel, prior)?;
    let mut h = 0.0;
    for o in 0..channel.states() {
        let (joint, total) = joint_column(channel, prior, o)?;
        if total <= 0.0 {
            continue;
        }
        let h_post: f64 =
            joint.iter().map(|j| j / total).filter(|p| *p > 0.0).map(|p| -p * p.log2()).sum();
        h += (total / prior_total) * h_post;
    }
    Ok(h)
}

/// Entropy `H(O | T)` in bits of the randomization itself, averaged over
/// true states under a uniform prior — how many bits of randomness the
/// channel injects per report (the discrete analogue of a noise
/// channel's differential entropy).
pub fn transition_entropy_bits(channel: &dyn DiscreteChannel) -> f64 {
    let k = channel.states();
    let mut h = 0.0;
    for truth in 0..k {
        for observed in 0..k {
            let p = channel.transition(observed, truth);
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
    }
    h / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomize::{RandomizedResponse, StochasticMatrix};

    fn rr(k: usize, p: f64) -> RandomizedResponse {
        RandomizedResponse::new(k, p).unwrap()
    }

    /// A channel whose output is uniform regardless of the input.
    fn scrambler(k: usize) -> StochasticMatrix {
        StochasticMatrix::new(k, vec![1.0 / k as f64; k * k]).unwrap()
    }

    #[test]
    fn identity_channel_breaches_completely() {
        let id = rr(3, 1.0);
        let prior = [0.5, 0.3, 0.2];
        assert!((posterior_breach(&id, &prior).unwrap() - 1.0).abs() < 1e-12);
        assert!(posterior_entropy_bits(&id, &prior).unwrap() < 1e-12);
        assert_eq!(transition_entropy_bits(&id), 0.0);
    }

    #[test]
    fn scrambler_reveals_nothing() {
        let s = scrambler(4);
        let prior = [0.4, 0.3, 0.2, 0.1];
        // Posterior equals the prior for every observation: the breach is
        // the largest prior mass, and H(T|O) = H(prior).
        let breach = posterior_breach(&s, &prior).unwrap();
        assert!((breach - 0.4).abs() < 1e-12, "breach {breach}");
        let h_prior: f64 = prior.iter().map(|p| -p * p.log2()).sum();
        let h = posterior_entropy_bits(&s, &prior).unwrap();
        assert!((h - h_prior).abs() < 1e-12, "H(T|O) {h} vs H(T) {h_prior}");
        assert!((transition_entropy_bits(&s) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stronger_randomization_lowers_breach_and_raises_entropy() {
        let prior = [0.7, 0.2, 0.1];
        let weak = rr(3, 0.9);
        let strong = rr(3, 0.3);
        assert!(
            posterior_breach(&strong, &prior).unwrap() < posterior_breach(&weak, &prior).unwrap()
        );
        assert!(
            posterior_entropy_bits(&strong, &prior).unwrap()
                > posterior_entropy_bits(&weak, &prior).unwrap()
        );
        assert!(transition_entropy_bits(&strong) > transition_entropy_bits(&weak));
    }

    #[test]
    fn breach_of_rare_state_hand_check() {
        // RR over 2 states, keep 0.6: P(o|t) matrix [[0.8, 0.2], [0.2, 0.8]].
        // Prior [0.9, 0.1]. Seeing state 1: P(t=1|o=1) = .08/(.08+.18) = 4/13.
        // Seeing state 0: P(t=1|o=0) = .02/(.02+.72) ~ 0.027. Max = 4/13.
        let channel = rr(2, 0.6);
        let b = posterior_breach_of(&channel, &[0.9, 0.1], 1).unwrap();
        assert!((b - 4.0 / 13.0).abs() < 1e-12, "breach {b}");
        // The overall breach is driven by the common state instead.
        let overall = posterior_breach(&channel, &[0.9, 0.1]).unwrap();
        assert!(overall > b);
    }

    #[test]
    fn unobservable_states_are_skipped_not_poisoning() {
        // Prior concentrated on state 0 of a 2-state identity-ish channel:
        // observed state 1 has zero marginal and must be skipped.
        let m = StochasticMatrix::new(2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = posterior_breach(&m, &[1.0, 0.0]).unwrap();
        assert_eq!(b, 1.0);
        assert_eq!(posterior_entropy_bits(&m, &[1.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn metrics_validate_priors() {
        let channel = rr(3, 0.5);
        assert!(posterior_breach(&channel, &[0.5, 0.5]).is_err());
        assert!(posterior_breach(&channel, &[0.0, 0.0, 0.0]).is_err());
        assert!(posterior_breach(&channel, &[-1.0, 1.0, 1.0]).is_err());
        assert!(posterior_breach_of(&channel, &[1.0, 1.0, 1.0], 3).is_err());
    }

    #[test]
    fn zero_mass_prior_states_are_well_defined() {
        // Prior zeroing out the middle state of a 3-state RR channel:
        // every metric must stay finite, the dead state's posterior mass
        // is exactly 0 everywhere, and the remaining metrics match the
        // hand computation over the live states.
        let channel = rr(3, 0.6);
        let prior = [0.5, 0.0, 0.5];
        let breach = posterior_breach(&channel, &prior).unwrap();
        assert!(breach.is_finite(), "breach {breach}");
        // Keep 0.6 over 3 states: diag = 0.6 + 0.4/3, off = 0.4/3.
        // Observing state 0: joint = (0.7333*0.5, 0, 0.1333*0.5), so the
        // posterior of the true state is 0.7333/(0.7333+0.1333) = 11/13.
        assert!((breach - 11.0 / 13.0).abs() < 1e-12, "breach {breach}");
        assert_eq!(posterior_breach_of(&channel, &prior, 1).unwrap(), 0.0);
        let h = posterior_entropy_bits(&channel, &prior).unwrap();
        assert!(h.is_finite() && h > 0.0, "H(T|O) {h}");
    }

    #[test]
    fn non_finite_transitions_error_instead_of_poisoning() {
        /// A broken custom channel whose transition matrix emits NaN —
        /// exactly what the inline joint computation must refuse to fold
        /// into a `0/0`-style silent zero.
        struct Broken;
        impl crate::randomize::DiscreteChannel for Broken {
            fn states(&self) -> usize {
                2
            }
            fn transition(&self, observed: usize, truth: usize) -> f64 {
                if observed == 1 && truth == 1 {
                    f64::NAN
                } else {
                    0.5
                }
            }
        }
        assert!(posterior_breach(&Broken, &[0.5, 0.5]).is_err());
        assert!(posterior_breach_of(&Broken, &[0.5, 0.5], 0).is_err());
        assert!(posterior_entropy_bits(&Broken, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn metrics_ignore_posterior_column_overrides() {
        /// A channel whose `posterior_column` override divides blindly
        /// (the historical NaN source). The metrics must not consult it.
        struct UnguardedOverride;
        impl crate::randomize::DiscreteChannel for UnguardedOverride {
            fn states(&self) -> usize {
                2
            }
            fn transition(&self, observed: usize, truth: usize) -> f64 {
                if observed == truth {
                    1.0
                } else {
                    0.0
                }
            }
            fn posterior_column(&self, _prior: &[f64], _observed: usize) -> Result<Vec<f64>> {
                Ok(vec![f64::NAN; 2])
            }
        }
        // Identity transitions + a prior dead on state 1: breach is 1.0
        // (state 0 fully revealed), never NaN from the override.
        let b = posterior_breach(&UnguardedOverride, &[1.0, 0.0]).unwrap();
        assert_eq!(b, 1.0);
        assert_eq!(posterior_entropy_bits(&UnguardedOverride, &[1.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn unnormalized_priors_are_normalized() {
        let channel = rr(3, 0.5);
        let a = posterior_breach(&channel, &[0.5, 0.3, 0.2]).unwrap();
        let b = posterior_breach(&channel, &[5.0, 3.0, 2.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
        let ha = posterior_entropy_bits(&channel, &[0.5, 0.3, 0.2]).unwrap();
        let hb = posterior_entropy_bits(&channel, &[5.0, 3.0, 2.0]).unwrap();
        assert!((ha - hb).abs() < 1e-12);
    }
}
