//! The paper's confidence-interval privacy metric, computed generically
//! from any [`NoiseDensity`].
//!
//! AS00 section 2.2 defines privacy at confidence `c` as the width of the
//! tightest interval that holds the (zero-mean) noise with probability
//! `c`. The closed forms in [`super::interval_width`] cover the built-in
//! families; this module computes the same quantity for *any* channel
//! straight from its interval-mass function, so custom [`NoiseDensity`]
//! implementations get the metric (and the sweep harness built on it)
//! for free.
//!
//! Two entry points:
//!
//! * [`shortest_interval_width`] — the general metric: minimizes the
//!   interval width over *all* placements, not just centered ones. The
//!   placement search assumes the channel density is unimodal (true for
//!   every additive channel in this workspace); for multimodal custom
//!   channels the result is an upper bound on the true shortest width.
//! * [`centered_width`] — the centered special case, exact (up to
//!   bisection tolerance) for symmetric unimodal channels, where the
//!   centered interval *is* the shortest.

use crate::domain::Domain;
use crate::error::Result;
use crate::randomize::NoiseDensity;

use super::validate_confidence;

/// Bisection steps for width/placement searches. 80 halvings of a
/// `2 * span` bracket put the result far below any meaningful tolerance.
const BISECT_STEPS: usize = 80;

/// Coarse placement-grid size seeding the interval-placement refinement.
const PLACEMENT_GRID: usize = 128;

/// Width of the tightest *centered* interval `[-q, q]` with
/// `mass_between(-q, q) >= confidence`.
///
/// For a symmetric unimodal channel this equals the shortest interval at
/// that confidence. Saturates at `2 * span` when the requested confidence
/// exceeds the mass the effective support captures.
pub fn centered_width(noise: &dyn NoiseDensity, confidence: f64) -> Result<f64> {
    validate_confidence(confidence)?;
    let span = noise.span();
    if span <= 0.0 {
        return Ok(0.0);
    }
    if noise.mass_between(-span, span) < confidence {
        return Ok(2.0 * span);
    }
    let (mut lo, mut hi) = (0.0_f64, span);
    for _ in 0..BISECT_STEPS {
        let q = 0.5 * (lo + hi);
        if noise.mass_between(-q, q) < confidence {
            lo = q;
        } else {
            hi = q;
        }
    }
    Ok(2.0 * 0.5 * (lo + hi))
}

/// Largest interval mass achievable with an interval of width `w` whose
/// left edge lies in `[-span, span - w]`: coarse grid scan plus ternary
/// refinement (the mass is unimodal in the placement for unimodal
/// densities).
fn best_mass_at_width(noise: &dyn NoiseDensity, span: f64, w: f64) -> f64 {
    let lo = -span;
    let hi = span - w;
    if hi <= lo {
        return noise.mass_between(-span, span);
    }
    let step = (hi - lo) / PLACEMENT_GRID as f64;
    let mut best_idx = 0;
    let mut best = f64::NEG_INFINITY;
    for i in 0..=PLACEMENT_GRID {
        let a = lo + i as f64 * step;
        let mass = noise.mass_between(a, a + w);
        if mass > best {
            best = mass;
            best_idx = i;
        }
    }
    // Ternary search on the bracket around the best grid point.
    let mut left = lo + best_idx.saturating_sub(1) as f64 * step;
    let mut right = lo + ((best_idx + 1).min(PLACEMENT_GRID)) as f64 * step;
    for _ in 0..BISECT_STEPS {
        let m1 = left + (right - left) / 3.0;
        let m2 = right - (right - left) / 3.0;
        if noise.mass_between(m1, m1 + w) < noise.mass_between(m2, m2 + w) {
            left = m1;
        } else {
            right = m2;
        }
    }
    let a = 0.5 * (left + right);
    noise.mass_between(a, a + w).max(best)
}

/// Width of the shortest interval holding the noise with the given
/// confidence — AS00's privacy metric, for any [`NoiseDensity`].
///
/// The outer bisection is on the width; feasibility of a width is decided
/// by the best placement found for that width (grid scan + ternary
/// refinement over the interval-mass function). Saturates at
/// `2 * span` when the confidence exceeds the mass captured by the
/// effective support (relevant only for extremely high confidence on
/// unbounded channels).
///
/// # Example
///
/// ```
/// use ppdm_core::privacy::interval::shortest_interval_width;
/// use ppdm_core::randomize::NoiseModel;
///
/// // Uniform on [-a, a]: any width-W interval captures W / 2a, so the
/// // shortest 95% interval is 0.95 * 2a.
/// let noise = NoiseModel::uniform(10.0)?;
/// let w = shortest_interval_width(&noise, 0.95)?;
/// assert!((w - 19.0).abs() < 1e-6);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
pub fn shortest_interval_width(noise: &dyn NoiseDensity, confidence: f64) -> Result<f64> {
    validate_confidence(confidence)?;
    let span = noise.span();
    if span <= 0.0 {
        return Ok(0.0);
    }
    if noise.mass_between(-span, span) < confidence {
        return Ok(2.0 * span);
    }
    let (mut lo, mut hi) = (0.0_f64, 2.0 * span);
    for _ in 0..BISECT_STEPS {
        let w = 0.5 * (lo + hi);
        if best_mass_at_width(noise, span, w) < confidence {
            lo = w;
        } else {
            hi = w;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The shortest-interval metric as a percentage of a domain's width —
/// the generic counterpart of [`super::privacy_pct`].
pub fn shortest_interval_pct(
    noise: &dyn NoiseDensity,
    confidence: f64,
    domain: &Domain,
) -> Result<f64> {
    Ok(100.0 * shortest_interval_width(noise, confidence)? / domain.width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::interval_width;
    use crate::randomize::{GaussianMixture, Laplace, NoiseModel};

    #[test]
    fn generic_matches_closed_forms() {
        let channels = [
            NoiseModel::uniform(10.0).unwrap(),
            NoiseModel::gaussian(10.0).unwrap(),
            NoiseModel::laplace(10.0).unwrap(),
            NoiseModel::gaussian_mixture(5.0, 20.0, 0.25).unwrap(),
        ];
        for noise in &channels {
            for c in [0.5, 0.9, 0.95] {
                let generic = shortest_interval_width(noise, c).unwrap();
                let closed = interval_width(noise, c).unwrap();
                assert!(
                    (generic - closed).abs() < 1e-3 * closed.max(1.0),
                    "{noise:?} at {c}: generic {generic} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn centered_equals_shortest_for_symmetric_channels() {
        let mix = GaussianMixture::new(4.0, 12.0, 0.3).unwrap();
        let lap = Laplace::new(6.0).unwrap();
        for c in [0.5, 0.95] {
            let a = centered_width(&mix, c).unwrap();
            let b = shortest_interval_width(&mix, c).unwrap();
            assert!((a - b).abs() < 1e-3 * a, "mixture at {c}: {a} vs {b}");
            let a = centered_width(&lap, c).unwrap();
            let b = shortest_interval_width(&lap, c).unwrap();
            assert!((a - b).abs() < 1e-3 * a, "laplace at {c}: {a} vs {b}");
        }
    }

    #[test]
    fn identity_channel_has_zero_width() {
        assert_eq!(shortest_interval_width(&NoiseModel::None, 0.95).unwrap(), 0.0);
        assert_eq!(centered_width(&NoiseModel::None, 0.95).unwrap(), 0.0);
    }

    #[test]
    fn saturates_at_full_support() {
        // A confidence above the mass the span captures clamps to 2*span.
        struct Half;
        impl NoiseDensity for Half {
            fn density(&self, y: f64) -> f64 {
                if y.abs() <= 1.0 {
                    0.25
                } else {
                    0.0
                }
            }
            fn mass_between(&self, a: f64, b: f64) -> f64 {
                // Only half the mass lives inside [-1, 1].
                0.25 * ((b.min(1.0) - a.max(-1.0)).max(0.0))
            }
            fn span(&self) -> f64 {
                1.0
            }
        }
        assert_eq!(shortest_interval_width(&Half, 0.9).unwrap(), 2.0);
    }

    #[test]
    fn confidence_is_validated() {
        let noise = NoiseModel::gaussian(1.0).unwrap();
        assert!(shortest_interval_width(&noise, 0.0).is_err());
        assert!(shortest_interval_width(&noise, 1.0).is_err());
        assert!(centered_width(&noise, f64::NAN).is_err());
    }

    #[test]
    fn monotone_in_confidence() {
        let mix = GaussianMixture::new(3.0, 9.0, 0.2).unwrap();
        let w50 = shortest_interval_width(&mix, 0.5).unwrap();
        let w95 = shortest_interval_width(&mix, 0.95).unwrap();
        assert!(w95 > w50);
    }
}
