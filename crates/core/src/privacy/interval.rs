//! The paper's confidence-interval privacy metric, computed generically
//! from any [`NoiseDensity`].
//!
//! AS00 section 2.2 defines privacy at confidence `c` as the width of the
//! tightest interval that holds the (zero-mean) noise with probability
//! `c`. The closed forms in [`super::interval_width`] cover the built-in
//! families; this module computes the same quantity for *any* channel
//! straight from its interval-mass function, so custom [`NoiseDensity`]
//! implementations get the metric (and the sweep harness built on it)
//! for free.
//!
//! Two entry points:
//!
//! * [`shortest_interval_width`] — the general metric: minimizes the
//!   interval width over *all* placements, not just centered ones. The
//!   placement search picks its strategy from
//!   [`NoiseDensity::unimodal`]: channels that claim a single mode get
//!   the fast coarse-grid + ternary refinement, everything else goes
//!   through a guaranteed piecewise scan that refines *every* local
//!   maximum of the interval-mass function — so multimodal custom
//!   channels can no longer have their privacy silently overstated by a
//!   search that converged on the wrong mode.
//! * [`centered_width`] — the centered special case, exact (up to
//!   bisection tolerance) for symmetric unimodal channels, where the
//!   centered interval *is* the shortest.

use crate::domain::Domain;
use crate::error::Result;
use crate::randomize::NoiseDensity;

use super::validate_confidence;

/// Bisection steps for width/placement searches. 80 halvings of a
/// `2 * span` bracket put the result far below any meaningful tolerance.
const BISECT_STEPS: usize = 80;

/// Coarse placement-grid size seeding the interval-placement refinement.
const PLACEMENT_GRID: usize = 128;

/// Width of the tightest *centered* interval `[-q, q]` with
/// `mass_between(-q, q) >= confidence`.
///
/// For a symmetric unimodal channel this equals the shortest interval at
/// that confidence. Saturates at `2 * span` when the requested confidence
/// exceeds the mass the effective support captures.
pub fn centered_width(noise: &dyn NoiseDensity, confidence: f64) -> Result<f64> {
    validate_confidence(confidence)?;
    let span = noise.span();
    if span <= 0.0 {
        return Ok(0.0);
    }
    if noise.mass_between(-span, span) < confidence {
        return Ok(2.0 * span);
    }
    let (mut lo, mut hi) = (0.0_f64, span);
    for _ in 0..BISECT_STEPS {
        let q = 0.5 * (lo + hi);
        if noise.mass_between(-q, q) < confidence {
            lo = q;
        } else {
            hi = q;
        }
    }
    Ok(2.0 * 0.5 * (lo + hi))
}

/// Placement-grid size of the guaranteed piecewise scan used for
/// densities that do not claim unimodality. Fine enough that every local
/// maximum of the interval-mass function wider than `2 * span / 2048`
/// brackets at least one grid point; the ternary refinements then
/// converge inside each bracket.
const SCAN_GRID: usize = 2048;

/// Ternary-search refinement of the interval-mass function over the
/// placement bracket `[left, right]`; valid when the bracket contains a
/// single local maximum. Returns the best mass found.
fn refine_placement(noise: &dyn NoiseDensity, w: f64, mut left: f64, mut right: f64) -> f64 {
    for _ in 0..BISECT_STEPS {
        let m1 = left + (right - left) / 3.0;
        let m2 = right - (right - left) / 3.0;
        if noise.mass_between(m1, m1 + w) < noise.mass_between(m2, m2 + w) {
            left = m1;
        } else {
            right = m2;
        }
    }
    let a = 0.5 * (left + right);
    noise.mass_between(a, a + w)
}

/// Largest interval mass achievable with an interval of width `w` whose
/// left edge lies in `[-span, span - w]`.
///
/// `unimodal == true`: coarse grid scan plus one ternary refinement
/// around the best grid point — the interval mass is unimodal in the
/// placement, so the refined bracket contains the global optimum.
///
/// `unimodal == false`: the guaranteed piecewise scan — a fine grid over
/// every placement, then a ternary refinement inside *every* bracket
/// whose center is a local maximum of the sampled mass. A single ternary
/// search on a multimodal mass function can converge to a minor mode and
/// underestimate the best mass, which makes the width bisection above
/// overstate the shortest interval (and hence the privacy); refining all
/// local maxima removes that failure mode for any density whose mass
/// peaks are wider than the grid step.
fn best_mass_at_width(noise: &dyn NoiseDensity, span: f64, w: f64, unimodal: bool) -> f64 {
    let lo = -span;
    let hi = span - w;
    if hi <= lo {
        return noise.mass_between(-span, span);
    }
    let grid = if unimodal { PLACEMENT_GRID } else { SCAN_GRID };
    let step = (hi - lo) / grid as f64;
    let masses: Vec<f64> = (0..=grid)
        .map(|i| {
            let a = lo + i as f64 * step;
            noise.mass_between(a, a + w)
        })
        .collect();
    let bracket =
        |i: usize| (lo + i.saturating_sub(1) as f64 * step, lo + ((i + 1).min(grid)) as f64 * step);
    let mut best = masses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if unimodal {
        let best_idx =
            masses.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map_or(0, |(i, _)| i);
        let (left, right) = bracket(best_idx);
        return refine_placement(noise, w, left, right).max(best);
    }
    for i in 0..=grid {
        let here = masses[i];
        // Strict rise on the left collapses plateaus to their left edge
        // (the refinement bracket still spans both neighbours, so a peak
        // hiding between two equal samples is covered).
        let rises_left = i == 0 || masses[i - 1] < here;
        let falls_right = i == grid || masses[i + 1] <= here;
        if rises_left && falls_right {
            let (left, right) = bracket(i);
            best = best.max(refine_placement(noise, w, left, right));
        }
    }
    best
}

/// Width of the shortest interval holding the noise with the given
/// confidence — AS00's privacy metric, for any [`NoiseDensity`].
///
/// The outer bisection is on the width; feasibility of a width is decided
/// by the best placement found for that width. The placement search is
/// the fast grid + ternary refinement when the channel claims
/// [`NoiseDensity::unimodal`], and the guaranteed piecewise scan (every
/// local maximum refined) otherwise. Saturates at `2 * span` when the
/// confidence exceeds the mass captured by the effective support
/// (relevant only for extremely high confidence on unbounded channels).
///
/// # Example
///
/// ```
/// use ppdm_core::privacy::interval::shortest_interval_width;
/// use ppdm_core::randomize::NoiseModel;
///
/// // Uniform on [-a, a]: any width-W interval captures W / 2a, so the
/// // shortest 95% interval is 0.95 * 2a.
/// let noise = NoiseModel::uniform(10.0)?;
/// let w = shortest_interval_width(&noise, 0.95)?;
/// assert!((w - 19.0).abs() < 1e-6);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
pub fn shortest_interval_width(noise: &dyn NoiseDensity, confidence: f64) -> Result<f64> {
    validate_confidence(confidence)?;
    let span = noise.span();
    if span <= 0.0 {
        return Ok(0.0);
    }
    if noise.mass_between(-span, span) < confidence {
        return Ok(2.0 * span);
    }
    let unimodal = noise.unimodal();
    let (mut lo, mut hi) = (0.0_f64, 2.0 * span);
    for _ in 0..BISECT_STEPS {
        let w = 0.5 * (lo + hi);
        if best_mass_at_width(noise, span, w, unimodal) < confidence {
            lo = w;
        } else {
            hi = w;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The shortest-interval metric as a percentage of a domain's width —
/// the generic counterpart of [`super::privacy_pct`].
pub fn shortest_interval_pct(
    noise: &dyn NoiseDensity,
    confidence: f64,
    domain: &Domain,
) -> Result<f64> {
    Ok(100.0 * shortest_interval_width(noise, confidence)? / domain.width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::interval_width;
    use crate::randomize::{GaussianMixture, Laplace, NoiseModel};

    #[test]
    fn generic_matches_closed_forms() {
        let channels = [
            NoiseModel::uniform(10.0).unwrap(),
            NoiseModel::gaussian(10.0).unwrap(),
            NoiseModel::laplace(10.0).unwrap(),
            NoiseModel::gaussian_mixture(5.0, 20.0, 0.25).unwrap(),
        ];
        for noise in &channels {
            for c in [0.5, 0.9, 0.95] {
                let generic = shortest_interval_width(noise, c).unwrap();
                let closed = interval_width(noise, c).unwrap();
                assert!(
                    (generic - closed).abs() < 1e-3 * closed.max(1.0),
                    "{noise:?} at {c}: generic {generic} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn centered_equals_shortest_for_symmetric_channels() {
        let mix = GaussianMixture::new(4.0, 12.0, 0.3).unwrap();
        let lap = Laplace::new(6.0).unwrap();
        for c in [0.5, 0.95] {
            let a = centered_width(&mix, c).unwrap();
            let b = shortest_interval_width(&mix, c).unwrap();
            assert!((a - b).abs() < 1e-3 * a, "mixture at {c}: {a} vs {b}");
            let a = centered_width(&lap, c).unwrap();
            let b = shortest_interval_width(&lap, c).unwrap();
            assert!((a - b).abs() < 1e-3 * a, "laplace at {c}: {a} vs {b}");
        }
    }

    #[test]
    fn identity_channel_has_zero_width() {
        assert_eq!(shortest_interval_width(&NoiseModel::None, 0.95).unwrap(), 0.0);
        assert_eq!(centered_width(&NoiseModel::None, 0.95).unwrap(), 0.0);
    }

    #[test]
    fn saturates_at_full_support() {
        // A confidence above the mass the span captures clamps to 2*span.
        struct Half;
        impl NoiseDensity for Half {
            fn density(&self, y: f64) -> f64 {
                if y.abs() <= 1.0 {
                    0.25
                } else {
                    0.0
                }
            }
            fn mass_between(&self, a: f64, b: f64) -> f64 {
                // Only half the mass lives inside [-1, 1].
                0.25 * ((b.min(1.0) - a.max(-1.0)).max(0.0))
            }
            fn span(&self) -> f64 {
                1.0
            }
        }
        assert_eq!(shortest_interval_width(&Half, 0.9).unwrap(), 2.0);
    }

    /// Uniform mass on the union of two disjoint intervals — a "spike and
    /// slab": `weight` of the mass on a narrow spike `[s_lo, s_hi]`, the
    /// rest on a broad slab `[b_lo, b_hi]`.
    struct SpikeAndSlab {
        spike: (f64, f64),
        slab: (f64, f64),
        weight: f64,
    }

    impl SpikeAndSlab {
        fn overlap((lo, hi): (f64, f64), a: f64, b: f64) -> f64 {
            (b.min(hi) - a.max(lo)).max(0.0) / (hi - lo)
        }
    }

    impl NoiseDensity for SpikeAndSlab {
        fn density(&self, y: f64) -> f64 {
            let spike = if (self.spike.0..=self.spike.1).contains(&y) {
                self.weight / (self.spike.1 - self.spike.0)
            } else {
                0.0
            };
            let slab = if (self.slab.0..=self.slab.1).contains(&y) {
                (1.0 - self.weight) / (self.slab.1 - self.slab.0)
            } else {
                0.0
            };
            spike + slab
        }
        fn mass_between(&self, a: f64, b: f64) -> f64 {
            self.weight * Self::overlap(self.spike, a, b)
                + (1.0 - self.weight) * Self::overlap(self.slab, a, b)
        }
        fn span(&self) -> f64 {
            self.spike.1.abs().max(self.slab.0.abs()).max(self.slab.1.abs())
        }
    }

    /// The same density *claiming* unimodality — this routes it through
    /// the pre-fix fast path (coarse grid + single ternary search), which
    /// is exactly the old behaviour of `shortest_interval_width`.
    struct ClaimsUnimodal(SpikeAndSlab);

    impl NoiseDensity for ClaimsUnimodal {
        fn density(&self, y: f64) -> f64 {
            self.0.density(y)
        }
        fn mass_between(&self, a: f64, b: f64) -> f64 {
            self.0.mass_between(a, b)
        }
        fn span(&self) -> f64 {
            self.0.span()
        }
        fn unimodal(&self) -> bool {
            true
        }
    }

    #[test]
    fn multimodal_spike_is_found_by_the_guaranteed_scan() {
        // 55% of the mass on a width-0.01 spike at +3 (interior, nowhere
        // near the support edges), 45% on a broad slab over [-9, -1]. The
        // shortest 50% interval sits inside the spike: width =
        // 0.5 / 0.55 * 0.01 ~ 0.0091. The spike is far narrower than the
        // old 128-point placement grid's step (2 * span / 128 ~ 0.14), so
        // the old search's single ternary refinement converges on the
        // slab and reports ~0.125 — overstating the width, and hence the
        // privacy, by ~14x.
        let noise = SpikeAndSlab { spike: (2.995, 3.005), slab: (-9.0, -1.0), weight: 0.55 };
        let truth = 0.5 / 0.55 * 0.01;
        let w = shortest_interval_width(&noise, 0.5).unwrap();
        assert!(
            (w - truth).abs() < 1e-3,
            "guaranteed scan missed the spike: got {w}, want {truth}"
        );

        // The regression half: the identical density through the old
        // unimodal-only search returns a much larger width. If this
        // assertion ever fails, the fast path has become safe for
        // multimodal densities and the scan routing can be revisited.
        let old = shortest_interval_width(
            &ClaimsUnimodal(SpikeAndSlab {
                spike: (2.995, 3.005),
                slab: (-9.0, -1.0),
                weight: 0.55,
            }),
            0.5,
        )
        .unwrap();
        assert!(
            old > 10.0 * truth,
            "old ternary-only search unexpectedly found the spike: {old} vs {truth}"
        );
    }

    #[test]
    fn scan_and_fast_path_agree_on_unimodal_densities() {
        // A density-only wrapper hides `NoiseModel`'s unimodality claim,
        // forcing the guaranteed scan; both searches must agree.
        struct Hidden(NoiseModel);
        impl NoiseDensity for Hidden {
            fn density(&self, y: f64) -> f64 {
                NoiseModel::density(&self.0, y)
            }
            fn mass_between(&self, a: f64, b: f64) -> f64 {
                NoiseModel::mass_between(&self.0, a, b)
            }
            fn span(&self) -> f64 {
                NoiseModel::span(&self.0)
            }
        }
        for model in [
            NoiseModel::uniform(8.0).unwrap(),
            NoiseModel::gaussian(5.0).unwrap(),
            NoiseModel::laplace(4.0).unwrap(),
        ] {
            for c in [0.5, 0.95] {
                let fast = shortest_interval_width(&model, c).unwrap();
                let scanned = shortest_interval_width(&Hidden(model), c).unwrap();
                assert!(
                    (fast - scanned).abs() < 1e-6 * fast.max(1.0),
                    "{model:?} at {c}: fast {fast} vs scanned {scanned}"
                );
            }
        }
    }

    #[test]
    fn confidence_is_validated() {
        let noise = NoiseModel::gaussian(1.0).unwrap();
        assert!(shortest_interval_width(&noise, 0.0).is_err());
        assert!(shortest_interval_width(&noise, 1.0).is_err());
        assert!(centered_width(&noise, f64::NAN).is_err());
    }

    #[test]
    fn monotone_in_confidence() {
        let mix = GaussianMixture::new(3.0, 9.0, 0.2).unwrap();
        let w50 = shortest_interval_width(&mix, 0.5).unwrap();
        let w95 = shortest_interval_width(&mix, 0.95).unwrap();
        assert!(w95 > w50);
    }
}
