//! Repeated-observation averaging against the streaming/serve path.
//!
//! AS00's randomization is memoryless: if the same client's true value is
//! re-perturbed with fresh noise every reporting epoch (the natural
//! behaviour of the [`crate::serve`] ingest path under periodic
//! re-submission), an adversary who records the stream accumulates
//! independent likelihoods. After `T` epochs the effective noise shrinks
//! like `1/sqrt(T)` and the single-shot privacy accounting is void.
//!
//! The attack consumes exactly what a snapshot-subscribing adversary
//! would hold: for each epoch, the posterior the service published (via
//! a [`crate::serve::SnapshotReader`]) and the cohort's perturbed
//! reports for that epoch. Per record the log-likelihoods add across
//! epochs; at every prefix length `T` the adversary guesses by MAP under
//! the newest published prior. A record counts as *breached at `T`* if
//! the guess was correct at **any** prefix `<= T` — privacy, once lost,
//! stays lost — which makes the reported breach rate monotone
//! non-decreasing in `T` by construction (the property test pins this).

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::NoiseDensity;

use super::{bucket_likelihoods, map_index, validated_prior, BreachReport};

/// What the adversary holds for one epoch: the posterior published that
/// epoch (the attack prior) and the cohort's perturbed reports.
#[derive(Debug, Clone, Copy)]
pub struct EpochObservation<'a> {
    /// The published per-bucket distribution for this epoch (e.g. the
    /// histogram masses of a [`crate::serve::PosteriorSnapshot`]).
    /// Normalized internally; zero-mass buckets allowed.
    pub prior: &'a [f64],
    /// One perturbed report per cohort record, in cohort order.
    pub observed: &'a [f64],
}

/// Runs the repeated-observation attack over a snapshot stream and
/// returns one cumulative [`BreachReport`] per prefix length `T = 1..=
/// epochs.len()`.
///
/// Per record, log-likelihoods accumulate over epochs
/// (`ln L_b(z_t)` summed per bucket); at prefix `T` the MAP guess uses
/// epoch `T`'s published prior. `hits` at `T` counts records whose guess
/// was correct at any prefix `<= T`. A report with zero likelihood in
/// every bucket is uninformative and skipped (it neither helps nor
/// poisons the accumulation); a record whose posterior is degenerate at
/// `T` counts toward `undecided` unless already breached.
pub fn audit_snapshot_stream(
    noise: &dyn NoiseDensity,
    partition: &Partition,
    epochs: &[EpochObservation<'_>],
    truth: &[f64],
) -> Result<Vec<BreachReport>> {
    if epochs.is_empty() {
        return Err(Error::MissingInput { what: "at least one epoch of observations" });
    }
    let m = partition.len();
    let priors: Vec<Vec<f64>> =
        epochs.iter().map(|e| validated_prior(e.prior, m)).collect::<Result<_>>()?;
    for e in epochs {
        if e.observed.len() != truth.len() {
            return Err(Error::LengthMismatch { left: e.observed.len(), right: truth.len() });
        }
    }
    let n = truth.len();
    let truth_buckets: Vec<usize> = truth.iter().map(|&x| partition.locate(x)).collect();
    // Per-record accumulated log-likelihood per bucket.
    let mut loglik = vec![0.0f64; n * m];
    let mut breached = vec![false; n];
    let mut lik = vec![0.0; m];
    let mut scores = vec![0.0; m];
    let mut reports = Vec::with_capacity(epochs.len());
    for (epoch, prior) in epochs.iter().zip(&priors) {
        for (i, &z) in epoch.observed.iter().enumerate() {
            bucket_likelihoods(noise, partition, z, &mut lik);
            if lik.iter().all(|&l| l <= 0.0) {
                continue; // uninformative report; skip, don't poison
            }
            let row = &mut loglik[i * m..(i + 1) * m];
            for (acc, &l) in row.iter_mut().zip(&lik) {
                *acc += if l > 0.0 { l.ln() } else { f64::NEG_INFINITY };
            }
        }
        let mut report = BreachReport { records: n, hits: 0, undecided: 0 };
        for i in 0..n {
            let row = &loglik[i * m..(i + 1) * m];
            // Stabilize the exponentials around the row maximum; a row
            // that is -inf everywhere the prior lives scores all-zero.
            let peak = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for ((s, &ll), &p) in scores.iter_mut().zip(row).zip(prior) {
                *s = if ll.is_finite() && p > 0.0 { p * (ll - peak).exp() } else { 0.0 };
            }
            match map_index(&scores) {
                Some(guess) if guess == truth_buckets[i] => breached[i] = true,
                Some(_) => {}
                None => {
                    if !breached[i] {
                        report.undecided += 1;
                    }
                }
            }
        }
        report.hits = breached.iter().filter(|b| **b).count();
        reports.push(report);
    }
    Ok(reports)
}

/// [`audit_snapshot_stream`] with one fixed published prior for every
/// epoch — the common case where the adversary holds the final
/// reconstruction and a backlog of per-epoch reports.
pub fn audit_repeated(
    noise: &dyn NoiseDensity,
    partition: &Partition,
    prior: &[f64],
    epochs: &[Vec<f64>],
    truth: &[f64],
) -> Result<Vec<BreachReport>> {
    let observations: Vec<EpochObservation<'_>> =
        epochs.iter().map(|observed| EpochObservation { prior, observed }).collect();
    audit_snapshot_stream(noise, partition, &observations, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::randomize::{NoiseDensity, NoiseModel};

    fn part(cells: usize) -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
    }

    /// A deterministic cohort: truth spread over the domain, each epoch
    /// re-perturbed with a fresh seed.
    fn cohort(n: usize, noise: &NoiseModel, epochs: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let truth: Vec<f64> = (0..n).map(|i| 0.5 + 99.0 * (i as f64 / n as f64)).collect();
        let streams: Vec<Vec<f64>> = (0..epochs)
            .map(|t| {
                let mut noise_col = vec![0.0; n];
                NoiseDensity::fill_noise(noise, seed.wrapping_add(t as u64), &mut noise_col);
                truth.iter().zip(&noise_col).map(|(x, e)| x + e).collect()
            })
            .collect();
        (streams, truth)
    }

    #[test]
    fn cumulative_breach_is_monotone_and_grows_with_epochs() {
        let noise = NoiseModel::gaussian(40.0).unwrap();
        let (epochs, truth) = cohort(400, &noise, 12, 9);
        let prior = vec![1.0; 10];
        let reports = audit_repeated(&noise, &part(10), &prior, &epochs, &truth).unwrap();
        assert_eq!(reports.len(), 12);
        for w in reports.windows(2) {
            assert!(w[1].hits >= w[0].hits, "cumulative hits regressed: {reports:?}");
        }
        // Heavy noise: single-shot linkage is weak, twelve observations
        // are much stronger.
        let first = reports[0].rate();
        let last = reports[11].rate();
        assert!(last > first + 0.1, "no repeated-observation gain: {first} -> {last}");
    }

    #[test]
    fn per_epoch_priors_come_from_the_published_stream() {
        let noise = NoiseModel::uniform(30.0).unwrap();
        let (epochs, truth) = cohort(100, &noise, 3, 4);
        // Priors sharpen across epochs, as a live service's would.
        let priors = [vec![1.0; 5], vec![1.0, 2.0, 2.0, 2.0, 1.0], vec![1.0, 3.0, 3.0, 3.0, 1.0]];
        let observations: Vec<EpochObservation<'_>> = epochs
            .iter()
            .zip(priors.iter())
            .map(|(observed, prior)| EpochObservation { prior, observed })
            .collect();
        let reports = audit_snapshot_stream(&noise, &part(5), &observations, &truth).unwrap();
        assert_eq!(reports.len(), 3);
        for w in reports.windows(2) {
            assert!(w[1].hits >= w[0].hits);
        }
    }

    #[test]
    fn uninformative_reports_do_not_poison_the_accumulation() {
        let noise = NoiseModel::uniform(10.0).unwrap();
        let truth = vec![60.0]; // bucket 2 of 4 over [0, 100]
                                // Epoch 1: an impossible report (way outside the support) is
                                // skipped — the adversary falls back to a prior-only guess
                                // (bucket 0 under the uniform prior's tie-break), a miss but not
                                // a poisoned accumulator. Epoch 2's clean report must breach.
        let epochs = vec![vec![1e9], vec![60.0]];
        let prior = vec![1.0; 4];
        let reports = audit_repeated(&noise, &part(4), &prior, &epochs, &truth).unwrap();
        assert_eq!(reports[0].hits, 0);
        assert_eq!(reports[0].undecided, 0, "prior-only guessing is still a guess");
        assert_eq!(reports[1].hits, 1, "{reports:?}");
    }

    #[test]
    fn validates_epochs_priors_and_lengths() {
        let noise = NoiseModel::gaussian(5.0).unwrap();
        assert!(audit_repeated(&noise, &part(4), &[1.0; 4], &[], &[1.0]).is_err());
        assert!(
            audit_repeated(&noise, &part(4), &[1.0; 3], &[vec![1.0]], &[1.0]).is_err(),
            "prior arity"
        );
        assert!(
            audit_repeated(&noise, &part(4), &[1.0; 4], &[vec![1.0, 2.0]], &[1.0]).is_err(),
            "cohort arity"
        );
    }

    #[test]
    fn identity_channel_breaches_in_one_epoch_and_stays() {
        let noise = NoiseModel::None;
        let truth: Vec<f64> = (0..50).map(|i| 1.0 + 2.0 * i as f64).collect();
        let epochs = vec![truth.clone(), truth.clone()];
        let reports = audit_repeated(&noise, &part(10), &[1.0; 10], &epochs, &truth).unwrap();
        assert_eq!(reports[0].hits, 50);
        assert_eq!(reports[1].hits, 50);
    }
}
