//! Posterior-based record linkage: MAP re-identification of a record's
//! true bucket (continuous) or state (discrete) from its single perturbed
//! report plus a published distribution.
//!
//! This generalizes [`crate::privacy::discrete::posterior_breach`] from
//! channel-only accounting to the channel *plus* the posterior the server
//! actually publishes: the adversary's prior is not a hypothetical — it
//! is the reconstructed distribution AS00's pipeline hands out.

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::{DiscreteChannel, NoiseDensity};
use crate::stats::Histogram;

use super::{bucket_likelihoods, map_index, validated_prior, BreachReport};

/// The single-shot continuous linkage adversary: sees one perturbed
/// value per record and the published per-bucket prior, and guesses each
/// record's true bucket by maximum posterior probability.
pub struct PosteriorLinkage<'a> {
    noise: &'a dyn NoiseDensity,
    partition: Partition,
    prior: Vec<f64>,
}

impl<'a> PosteriorLinkage<'a> {
    /// An adversary armed with the channel (public by assumption), the
    /// reconstruction partition, and a per-bucket prior — typically the
    /// published reconstructed histogram. The prior is normalized
    /// internally; zero-mass buckets are allowed.
    pub fn new(
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        prior: &[f64],
    ) -> Result<PosteriorLinkage<'a>> {
        let prior = validated_prior(prior, partition.len())?;
        Ok(PosteriorLinkage { noise, partition, prior })
    }

    /// Convenience constructor from a published histogram (e.g. a
    /// [`crate::serve::PosteriorSnapshot`]'s): the histogram's partition
    /// is the attack partition, its masses the prior.
    pub fn from_histogram(
        noise: &'a dyn NoiseDensity,
        histogram: &Histogram,
    ) -> Result<PosteriorLinkage<'a>> {
        PosteriorLinkage::new(noise, histogram.partition(), histogram.masses())
    }

    /// The attack partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Posterior over true buckets given one perturbed value:
    /// `P(b | z) ∝ prior_b * L_b(z)` with the cell-average likelihood.
    /// All-zero (every bucket excluded by prior or likelihood) means the
    /// adversary learns nothing from this record — the undecidable case.
    pub fn posterior(&self, z: f64) -> Vec<f64> {
        let mut scores = vec![0.0; self.partition.len()];
        bucket_likelihoods(self.noise, &self.partition, z, &mut scores);
        let mut total = 0.0;
        for (s, p) in scores.iter_mut().zip(&self.prior) {
            *s *= p;
            total += *s;
        }
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        }
        scores
    }

    /// The adversary's MAP guess for one perturbed value, or `None` when
    /// the posterior is degenerate.
    pub fn map_guess(&self, z: f64) -> Option<usize> {
        let mut scores = vec![0.0; self.partition.len()];
        bucket_likelihoods(self.noise, &self.partition, z, &mut scores);
        for (s, p) in scores.iter_mut().zip(&self.prior) {
            *s *= p;
        }
        map_index(&scores)
    }

    /// Runs the attack: one MAP guess per perturbed report, scored
    /// against the true values (bucketed through the attack partition).
    pub fn audit(&self, observed: &[f64], truth: &[f64]) -> Result<BreachReport> {
        if observed.len() != truth.len() {
            return Err(Error::LengthMismatch { left: observed.len(), right: truth.len() });
        }
        let mut report = BreachReport { records: observed.len(), hits: 0, undecided: 0 };
        for (&z, &x) in observed.iter().zip(truth) {
            match self.map_guess(z) {
                Some(guess) if guess == self.partition.locate(x) => report.hits += 1,
                Some(_) => {}
                None => report.undecided += 1,
            }
        }
        Ok(report)
    }
}

/// Analytic single-shot MAP success rate of the [`PosteriorLinkage`]
/// adversary: `∫ max_b prior_b * L_b(z) dz`, the probability the MAP
/// guess is correct when records are drawn from `prior` (uniform within
/// their bucket) and perturbed by `noise`.
///
/// This is the *nominal* breach rate the audit tables print beside the
/// empirical one: a calibrated attack on independent columns matches it
/// (up to sampling error), and any richer adversary — correlation,
/// repeated observations — exceeds it.
pub fn nominal_linkage_rate(
    noise: &dyn NoiseDensity,
    partition: &Partition,
    prior: &[f64],
) -> Result<f64> {
    let prior = validated_prior(prior, partition.len())?;
    let domain = partition.domain();
    let span = noise.span();
    let (lo, hi) = (domain.lo() - span, domain.hi() + span);
    // Trapezoid rule over the support of the perturbed value; the
    // integrand max_b prior_b * L_b(z) is piecewise-smooth with bounded
    // kinks, so a few thousand panels put the error well below the
    // sampling noise of any empirical rate it is compared against.
    const PANELS: usize = 4096;
    let step = (hi - lo) / PANELS as f64;
    let mut scores = vec![0.0; partition.len()];
    let mut integrand = |z: f64| {
        bucket_likelihoods(noise, partition, z, &mut scores);
        scores.iter().zip(&prior).map(|(l, p)| l * p).fold(0.0f64, f64::max)
    };
    let mut sum = 0.5 * (integrand(lo) + integrand(hi));
    for i in 1..PANELS {
        sum += integrand(lo + i as f64 * step);
    }
    Ok((sum * step).min(1.0))
}

/// The single-shot discrete linkage adversary: sees each record's
/// randomized state and a published prior over true states (typically
/// the reconstructed state distribution).
pub struct DiscreteLinkage<'a> {
    channel: &'a dyn DiscreteChannel,
    prior: Vec<f64>,
}

impl<'a> DiscreteLinkage<'a> {
    /// An adversary armed with the channel and a prior over true states
    /// (normalized internally; zero-mass states allowed).
    pub fn new(channel: &'a dyn DiscreteChannel, prior: &[f64]) -> Result<DiscreteLinkage<'a>> {
        let prior = validated_prior(prior, channel.states())?;
        Ok(DiscreteLinkage { channel, prior })
    }

    /// Posterior over true states given one observed state:
    /// `P(t | o) ∝ P(o | t) * prior_t`. All-zero when the observation is
    /// impossible under the prior.
    pub fn posterior(&self, observed: usize) -> Result<Vec<f64>> {
        if observed >= self.channel.states() {
            return Err(Error::StateOutOfRange { state: observed, states: self.channel.states() });
        }
        let mut scores: Vec<f64> = self
            .prior
            .iter()
            .enumerate()
            .map(|(t, p)| self.channel.transition(observed, t) * p)
            .collect();
        let total: f64 = scores.iter().sum();
        if !total.is_finite() {
            return Err(Error::InvalidMass(format!(
                "channel produced a non-finite likelihood for observed state {observed}"
            )));
        }
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        }
        Ok(scores)
    }

    /// The adversary's MAP guess for one observed state.
    pub fn map_guess(&self, observed: usize) -> Result<Option<usize>> {
        Ok(map_index(&self.posterior(observed)?))
    }

    /// Runs the attack over paired observed/true state sequences.
    pub fn audit(&self, observed: &[usize], truth: &[usize]) -> Result<BreachReport> {
        if observed.len() != truth.len() {
            return Err(Error::LengthMismatch { left: observed.len(), right: truth.len() });
        }
        let k = self.channel.states();
        // One posterior per observable state, computed once.
        let guesses: Vec<Option<usize>> =
            (0..k).map(|o| self.map_guess(o)).collect::<Result<_>>()?;
        let mut report = BreachReport { records: observed.len(), hits: 0, undecided: 0 };
        for (&o, &t) in observed.iter().zip(truth) {
            if o >= k {
                return Err(Error::StateOutOfRange { state: o, states: k });
            }
            if t >= k {
                return Err(Error::StateOutOfRange { state: t, states: k });
            }
            match guesses[o] {
                Some(guess) if guess == t => report.hits += 1,
                Some(_) => {}
                None => report.undecided += 1,
            }
        }
        Ok(report)
    }
}

/// Analytic single-shot MAP success rate of the [`DiscreteLinkage`]
/// adversary: `Σ_o max_t P(o | t) * prior_t` — the discrete counterpart
/// of [`nominal_linkage_rate`]. Always `<=`
/// [`crate::privacy::discrete::posterior_breach`], which reports the
/// worst single posterior entry rather than the expected success.
pub fn nominal_discrete_rate(channel: &dyn DiscreteChannel, prior: &[f64]) -> Result<f64> {
    let prior = validated_prior(prior, channel.states())?;
    let k = channel.states();
    let mut rate = 0.0;
    for o in 0..k {
        let best = (0..k).map(|t| channel.transition(o, t) * prior[t]).fold(0.0f64, f64::max);
        if !best.is_finite() {
            return Err(Error::InvalidMass(format!(
                "channel produced a non-finite likelihood for observed state {o}"
            )));
        }
        rate += best;
    }
    Ok(rate.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::privacy::discrete::posterior_breach;
    use crate::randomize::{NoiseModel, RandomizedResponse};

    fn part(cells: usize) -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
    }

    #[test]
    fn identity_channel_links_every_record() {
        let attacker = PosteriorLinkage::new(&NoiseModel::None, part(10), &[1.0; 10]).unwrap();
        // Offset off the bucket edges: an edge value ties two buckets'
        // indicator likelihoods and the deterministic tie-break need not
        // match `locate`'s half-open convention.
        let truth: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let report = attacker.audit(&truth, &truth).unwrap();
        assert_eq!(report.hits, report.records);
        assert_eq!(report.undecided, 0);
        let nominal = nominal_linkage_rate(&NoiseModel::None, &part(10), &[1.0; 10]).unwrap();
        assert!(nominal > 0.999, "identity nominal rate {nominal}");
    }

    #[test]
    fn posterior_is_bayes_on_a_hand_checked_case() {
        // Two buckets over [0, 100], uniform noise +-25, prior 3:1.
        // Observing z = 50: both bucket intervals overlap the noise
        // window equally (L_0 = L_1), so the posterior is the prior.
        let noise = NoiseModel::uniform(25.0).unwrap();
        let attacker = PosteriorLinkage::new(&noise, part(2), &[0.75, 0.25]).unwrap();
        let post = attacker.posterior(50.0);
        assert!((post[0] - 0.75).abs() < 1e-9, "{post:?}");
        assert!((post[1] - 0.25).abs() < 1e-9, "{post:?}");
        assert_eq!(attacker.map_guess(50.0), Some(0));
        // Observing far left: only bucket 0 is possible.
        let post = attacker.posterior(0.0);
        assert!((post[0] - 1.0).abs() < 1e-9, "{post:?}");
    }

    #[test]
    fn out_of_support_observation_is_undecided_not_a_crash() {
        let noise = NoiseModel::uniform(5.0).unwrap();
        let attacker = PosteriorLinkage::new(&noise, part(4), &[1.0, 1.0, 1.0, 1.0]).unwrap();
        // z = 1e6 has zero likelihood in every bucket.
        assert_eq!(attacker.map_guess(1e6), None);
        let report = attacker.audit(&[1e6], &[50.0]).unwrap();
        assert_eq!(report.undecided, 1);
        assert_eq!(report.hits, 0);
    }

    #[test]
    fn audit_validates_lengths_and_priors() {
        let noise = NoiseModel::gaussian(5.0).unwrap();
        assert!(PosteriorLinkage::new(&noise, part(4), &[1.0, 1.0]).is_err());
        assert!(PosteriorLinkage::new(&noise, part(2), &[0.0, 0.0]).is_err());
        let attacker = PosteriorLinkage::new(&noise, part(2), &[1.0, 1.0]).unwrap();
        assert!(attacker.audit(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn discrete_identity_links_and_scrambler_guesses_the_mode() {
        let id = RandomizedResponse::new(3, 1.0).unwrap();
        let attacker = DiscreteLinkage::new(&id, &[0.2, 0.5, 0.3]).unwrap();
        let truth = vec![0, 1, 2, 1, 1];
        let report = attacker.audit(&truth, &truth).unwrap();
        assert_eq!(report.hits, 5);

        // Near-total randomization: the prior mode dominates every
        // posterior, so MAP always guesses the modal state, and the
        // nominal rate collapses to the blind-guess rate — exactly the
        // modal prior mass (the diagonal boost `keep * pi_mode` at
        // `o = mode` replaces one background term, totalling
        // `pi_mode * (3q + keep) = pi_mode`).
        let scrambler = RandomizedResponse::new(3, 0.1).unwrap();
        let attacker = DiscreteLinkage::new(&scrambler, &[0.2, 0.5, 0.3]).unwrap();
        for o in 0..3 {
            assert_eq!(attacker.map_guess(o).unwrap(), Some(1));
        }
        let nominal = nominal_discrete_rate(&scrambler, &[0.2, 0.5, 0.3]).unwrap();
        assert!((nominal - 0.5).abs() < 1e-12, "blind-guess rate {nominal}");
    }

    #[test]
    fn nominal_rate_is_bounded_by_posterior_breach() {
        // The MAP rate is an expected success; the breach is a worst
        // case. Verified over a grid of channels and skews.
        for keep in [0.1, 0.4, 0.7, 0.95] {
            for prior in [[0.9, 0.1], [0.5, 0.5], [0.99, 0.01]] {
                let channel = RandomizedResponse::new(2, keep).unwrap();
                let rate = nominal_discrete_rate(&channel, &prior).unwrap();
                let breach = posterior_breach(&channel, &prior).unwrap();
                assert!(
                    rate <= breach + 1e-12,
                    "keep {keep} prior {prior:?}: rate {rate} > breach {breach}"
                );
            }
        }
    }

    #[test]
    fn nominal_continuous_rate_matches_a_closed_form() {
        // Uniform noise +-50 over a 2-bucket partition of [0, 100] with a
        // uniform prior: integrating max_b(prior_b * L_b) piecewise gives
        // exactly 3/4.
        let noise = NoiseModel::uniform(50.0).unwrap();
        let rate = nominal_linkage_rate(&noise, &part(2), &[0.5, 0.5]).unwrap();
        assert!((rate - 0.75).abs() < 1e-3, "rate {rate}");
    }

    #[test]
    fn zero_mass_prior_buckets_are_never_guessed() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let attacker = PosteriorLinkage::new(&noise, part(4), &[1.0, 0.0, 0.0, 1.0]).unwrap();
        for z in [-20.0, 10.0, 40.0, 60.0, 90.0, 120.0] {
            if let Some(g) = attacker.map_guess(z) {
                assert!(g == 0 || g == 3, "guessed dead bucket {g} at z={z}");
            }
            assert!(attacker.posterior(z).iter().all(|p| p.is_finite()));
        }
    }
}
