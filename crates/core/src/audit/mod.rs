//! Empirical privacy auditing: attack our own outputs and measure what
//! actually leaks.
//!
//! AS00's privacy numbers — the shortest-interval metric of
//! [`crate::privacy::interval`], the entropy metrics, the discrete
//! posterior metrics — are *nominal*: they describe the randomization
//! channel in isolation. The randomization-revisited literature
//! (Mohaisen & Hong; the privacy-preserving-publishing surveys) shows
//! that channel-side accounting can badly overstate protection once an
//! adversary uses the *published reconstruction* as a prior, exploits
//! correlation with a second randomized column, or sees the same client
//! re-randomized across epochs. This module measures those gaps by
//! running the attacks and counting breaches.
//!
//! Every attacker consumes only what a real adversary would see:
//!
//! * [`PosteriorLinkage`] / [`DiscreteLinkage`] — one perturbed report
//!   per record plus the published (reconstructed) distribution; MAP
//!   re-identification of each record's true bucket/state.
//! * [`CorrelatedLinkage`] — two perturbed columns plus background
//!   knowledge of the cross-column [`JointPrior`]; the side column
//!   sharpens the target posterior beyond the single-column bound.
//! * [`audit_snapshot_stream`] / [`audit_repeated`] — the streaming
//!   attack: a client cohort re-perturbed every epoch, the adversary
//!   holding each epoch's published posterior (e.g. collected from a
//!   [`crate::serve::SnapshotReader`]) and every report so far;
//!   likelihoods accumulate across epochs, so the cumulative breach rate
//!   is monotone non-decreasing in the observation count.
//!
//! The attack outcome is a [`BreachReport`]: how many records the
//! adversary re-identified, out of how many. Next to each empirical rate
//! the module computes the matching *analytic* MAP rate
//! ([`nominal_linkage_rate`], [`nominal_discrete_rate`]) — the
//! single-shot success probability of the same adversary, predicted from
//! the channel and prior alone. Empirical rates from richer adversaries
//! (correlation, repetition) exceeding the nominal rate are exactly the
//! leakage the nominal metrics do not see.
//!
//! Note the nominal MAP rate is *not* [`crate::privacy::discrete::posterior_breach`]:
//! the breach is the worst single posterior entry (a per-record
//! worst-case), while the MAP rate is the adversary's expected success
//! over the population — always `<=` the breach. The sweep harness
//! reports both.

mod correlated;
mod linkage;
mod repeated;

pub use correlated::{CorrelatedLinkage, JointPrior};
pub use linkage::{nominal_discrete_rate, nominal_linkage_rate, DiscreteLinkage, PosteriorLinkage};
pub use repeated::{audit_repeated, audit_snapshot_stream, EpochObservation};

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::NoiseDensity;

/// Outcome of one attack over a cohort of records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreachReport {
    /// Records the attack was run against.
    pub records: usize,
    /// Records whose true bucket/state the adversary's MAP guess
    /// identified correctly.
    pub hits: usize,
    /// Records on which the adversary could not form a posterior (every
    /// candidate had zero likelihood x prior); counted as misses.
    pub undecided: usize,
}

impl BreachReport {
    /// Fraction of records breached (`0.0` for an empty cohort).
    pub fn rate(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.hits as f64 / self.records as f64
        }
    }
}

/// Validates an attacker prior over `expected` buckets/states and
/// returns it normalized. Zero-mass entries are allowed (the adversary
/// may know some buckets are empty); a prior with no mass at all is not.
pub(crate) fn validated_prior(prior: &[f64], expected: usize) -> Result<Vec<f64>> {
    if prior.len() != expected {
        return Err(Error::LengthMismatch { left: expected, right: prior.len() });
    }
    if let Some(bad) = prior.iter().find(|p| !p.is_finite() || **p < 0.0) {
        return Err(Error::InvalidMass(format!(
            "attacker prior entries must be finite and >= 0, got {bad}"
        )));
    }
    let total: f64 = prior.iter().sum();
    if total <= 0.0 {
        return Err(Error::InvalidMass("attacker prior carries no mass".to_string()));
    }
    Ok(prior.iter().map(|p| p / total).collect())
}

/// Per-bucket likelihood of one observed value `z` under the additive
/// channel: `L_b(z) = P(z in dz | X in bucket b) = mass_between(z - hi_b,
/// z - lo_b) / width_b` — the cell-average kernel, exact when the true
/// value is uniform within its bucket (the same modeling assumption the
/// reconstruction engine's `CellAverage` kernel makes).
pub(crate) fn bucket_likelihoods(
    noise: &dyn NoiseDensity,
    partition: &Partition,
    z: f64,
    out: &mut [f64],
) {
    let w = partition.cell_width();
    for (b, l) in out.iter_mut().enumerate() {
        let (lo, hi) = partition.interval(b);
        *l = noise.mass_between(z - hi, z - lo) / w;
    }
}

/// Deterministic argmax: first index of the strictly largest positive
/// score, or `None` when every score is zero (the undecidable case).
pub(crate) fn map_index(scores: &[f64]) -> Option<usize> {
    let mut best_i = None;
    let mut best_s = 0.0;
    for (i, &s) in scores.iter().enumerate() {
        if s > best_s {
            best_s = s;
            best_i = Some(i);
        }
    }
    best_i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::randomize::NoiseModel;

    #[test]
    fn breach_report_rate_handles_empty_cohorts() {
        let empty = BreachReport { records: 0, hits: 0, undecided: 0 };
        assert_eq!(empty.rate(), 0.0);
        let half = BreachReport { records: 10, hits: 5, undecided: 1 };
        assert!((half.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validated_prior_normalizes_and_rejects_garbage() {
        let p = validated_prior(&[2.0, 0.0, 6.0], 3).unwrap();
        assert_eq!(p, vec![0.25, 0.0, 0.75]);
        assert!(validated_prior(&[1.0, 1.0], 3).is_err());
        assert!(validated_prior(&[0.0, 0.0], 2).is_err());
        assert!(validated_prior(&[f64::NAN, 1.0], 2).is_err());
        assert!(validated_prior(&[-0.5, 1.0], 2).is_err());
    }

    #[test]
    fn identity_channel_likelihood_is_the_bucket_indicator() {
        let partition = Partition::new(Domain::new(0.0, 10.0).unwrap(), 5).unwrap();
        let mut l = vec![0.0; 5];
        bucket_likelihoods(&NoiseModel::None, &partition, 3.0, &mut l);
        // z = 3.0 lies in bucket 1 ([2, 4)); only that bucket's interval
        // contains the (zero) noise offset.
        assert!(l[1] > 0.0);
        assert_eq!(l.iter().filter(|x| **x > 0.0).count(), 1);
    }

    #[test]
    fn map_index_is_deterministic_and_none_on_all_zero() {
        assert_eq!(map_index(&[0.0, 2.0, 2.0]), Some(1));
        assert_eq!(map_index(&[0.0, 0.0]), None);
        assert_eq!(map_index(&[1.0, 3.0, 2.0]), Some(1));
    }
}
