//! Correlated-attribute inference: a second randomized column sharpens
//! the per-record posterior on the target column beyond anything the
//! single-column metrics can account for.
//!
//! AS00 perturbs each column independently, and its privacy metrics are
//! per-column. But an adversary with background knowledge of the
//! *cross-column* distribution (a census joint, a public contingency
//! table, or simply the reconstructed joint of an earlier release) can
//! combine both perturbed values: `P(a | z_t, z_s) ∝ Σ_b J(a, b) *
//! L_t(z_t | a) * L_s(z_s | b)`. When the joint factorizes
//! (independent columns) this reduces *exactly* to the single-column
//! attack — the side column cancels — so the attack can only help, and
//! the gap over the single-column rate measures the correlation leak.

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::NoiseDensity;

use super::{bucket_likelihoods, map_index, BreachReport};

/// A (normalized) joint prior over `(target bucket, side bucket)` pairs,
/// row-major: `probs[a * side_len + b]`.
#[derive(Debug, Clone, PartialEq)]
pub struct JointPrior {
    target_len: usize,
    side_len: usize,
    probs: Vec<f64>,
}

impl JointPrior {
    /// Builds a joint prior from nonnegative weights (normalized
    /// internally; zero cells allowed, an all-zero table is not).
    pub fn new(target_len: usize, side_len: usize, weights: &[f64]) -> Result<JointPrior> {
        if weights.len() != target_len * side_len {
            return Err(Error::LengthMismatch {
                left: target_len * side_len,
                right: weights.len(),
            });
        }
        if let Some(bad) = weights.iter().find(|p| !p.is_finite() || **p < 0.0) {
            return Err(Error::InvalidMass(format!(
                "joint prior entries must be finite and >= 0, got {bad}"
            )));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(Error::InvalidMass("joint prior carries no mass".to_string()));
        }
        Ok(JointPrior { target_len, side_len, probs: weights.iter().map(|w| w / total).collect() })
    }

    /// The independence (product) joint of two marginals — the control
    /// case under which [`CorrelatedLinkage`] reduces exactly to
    /// [`super::PosteriorLinkage`].
    pub fn product(target_marginal: &[f64], side_marginal: &[f64]) -> Result<JointPrior> {
        let weights: Vec<f64> =
            target_marginal.iter().flat_map(|a| side_marginal.iter().map(move |b| a * b)).collect();
        JointPrior::new(target_marginal.len(), side_marginal.len(), &weights)
    }

    /// Empirical joint of two paired value columns bucketed through their
    /// partitions — the "informed adversary" background knowledge used by
    /// the audit sweep.
    pub fn from_samples(
        target_partition: &Partition,
        side_partition: &Partition,
        target_values: &[f64],
        side_values: &[f64],
    ) -> Result<JointPrior> {
        if target_values.len() != side_values.len() {
            return Err(Error::LengthMismatch {
                left: target_values.len(),
                right: side_values.len(),
            });
        }
        let (ka, kb) = (target_partition.len(), side_partition.len());
        let mut weights = vec![0.0; ka * kb];
        for (&x, &y) in target_values.iter().zip(side_values) {
            weights[target_partition.locate(x) * kb + side_partition.locate(y)] += 1.0;
        }
        JointPrior::new(ka, kb, &weights)
    }

    /// Number of target buckets.
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// Number of side buckets.
    pub fn side_len(&self) -> usize {
        self.side_len
    }

    /// Marginal over target buckets — the prior the matching
    /// single-column attack uses.
    pub fn target_marginal(&self) -> Vec<f64> {
        (0..self.target_len)
            .map(|a| self.probs[a * self.side_len..(a + 1) * self.side_len].iter().sum())
            .collect()
    }

    /// `P(target = a, side = b)`.
    pub fn prob(&self, a: usize, b: usize) -> f64 {
        self.probs[a * self.side_len + b]
    }
}

/// The correlated two-column adversary: sees a perturbed target value
/// and a perturbed side value per record plus the cross-column
/// [`JointPrior`], and MAP-guesses each record's true *target* bucket.
pub struct CorrelatedLinkage<'a> {
    target_noise: &'a dyn NoiseDensity,
    target_partition: Partition,
    side_noise: &'a dyn NoiseDensity,
    side_partition: Partition,
    joint: JointPrior,
}

impl<'a> CorrelatedLinkage<'a> {
    /// An adversary armed with both (public) channels, both attack
    /// partitions, and the joint prior.
    pub fn new(
        target_noise: &'a dyn NoiseDensity,
        target_partition: Partition,
        side_noise: &'a dyn NoiseDensity,
        side_partition: Partition,
        joint: JointPrior,
    ) -> Result<CorrelatedLinkage<'a>> {
        if joint.target_len() != target_partition.len() {
            return Err(Error::LengthMismatch {
                left: target_partition.len(),
                right: joint.target_len(),
            });
        }
        if joint.side_len() != side_partition.len() {
            return Err(Error::LengthMismatch {
                left: side_partition.len(),
                right: joint.side_len(),
            });
        }
        Ok(CorrelatedLinkage { target_noise, target_partition, side_noise, side_partition, joint })
    }

    /// Unnormalized posterior scores over target buckets:
    /// `score_a = L_t(z_t | a) * Σ_b J(a, b) * L_s(z_s | b)`.
    fn scores(&self, observed_target: f64, observed_side: f64) -> Vec<f64> {
        let kb = self.side_partition.len();
        let mut side_lik = vec![0.0; kb];
        bucket_likelihoods(self.side_noise, &self.side_partition, observed_side, &mut side_lik);
        let mut target_lik = vec![0.0; self.target_partition.len()];
        bucket_likelihoods(
            self.target_noise,
            &self.target_partition,
            observed_target,
            &mut target_lik,
        );
        target_lik
            .iter()
            .enumerate()
            .map(|(a, lt)| {
                let weighted: f64 =
                    side_lik.iter().enumerate().map(|(b, ls)| self.joint.prob(a, b) * ls).sum();
                lt * weighted
            })
            .collect()
    }

    /// Posterior over target buckets given both perturbed values
    /// (all-zero when the pair is impossible under the joint prior).
    pub fn posterior(&self, observed_target: f64, observed_side: f64) -> Vec<f64> {
        let mut scores = self.scores(observed_target, observed_side);
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        }
        scores
    }

    /// The adversary's MAP guess for one record's pair of perturbed
    /// values.
    pub fn map_guess(&self, observed_target: f64, observed_side: f64) -> Option<usize> {
        map_index(&self.scores(observed_target, observed_side))
    }

    /// Runs the attack: per record, combine the perturbed target and
    /// side values, guess the target bucket, score against the true
    /// target values.
    pub fn audit(
        &self,
        observed_target: &[f64],
        observed_side: &[f64],
        truth_target: &[f64],
    ) -> Result<BreachReport> {
        if observed_target.len() != observed_side.len() {
            return Err(Error::LengthMismatch {
                left: observed_target.len(),
                right: observed_side.len(),
            });
        }
        if observed_target.len() != truth_target.len() {
            return Err(Error::LengthMismatch {
                left: observed_target.len(),
                right: truth_target.len(),
            });
        }
        let mut report = BreachReport { records: truth_target.len(), hits: 0, undecided: 0 };
        for ((&zt, &zs), &x) in observed_target.iter().zip(observed_side).zip(truth_target) {
            match self.map_guess(zt, zs) {
                Some(guess) if guess == self.target_partition.locate(x) => report.hits += 1,
                Some(_) => {}
                None => report.undecided += 1,
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::PosteriorLinkage;
    use crate::domain::Domain;
    use crate::randomize::NoiseModel;

    fn part(cells: usize) -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
    }

    #[test]
    fn joint_prior_validates_and_marginalizes() {
        assert!(JointPrior::new(2, 2, &[1.0, 1.0]).is_err());
        assert!(JointPrior::new(2, 2, &[0.0; 4]).is_err());
        assert!(JointPrior::new(2, 2, &[1.0, f64::NAN, 1.0, 1.0]).is_err());
        let j = JointPrior::new(2, 3, &[2.0, 0.0, 2.0, 1.0, 2.0, 1.0]).unwrap();
        let m = j.target_marginal();
        assert!((m[0] - 0.5).abs() < 1e-12 && (m[1] - 0.5).abs() < 1e-12, "{m:?}");
        assert!((j.prob(0, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn product_joint_reduces_to_the_single_column_attack() {
        // Independence is the control: the side likelihood factor is
        // constant across target buckets and cancels on normalization,
        // so posteriors and guesses match the single-column adversary
        // exactly (up to float rounding).
        let tn = NoiseModel::gaussian(12.0).unwrap();
        let sn = NoiseModel::uniform(20.0).unwrap();
        let ta = [0.1, 0.4, 0.3, 0.2];
        let sa = [0.25, 0.5, 0.25];
        let joint = JointPrior::product(&ta, &sa).unwrap();
        let corr = CorrelatedLinkage::new(&tn, part(4), &sn, part(3), joint).unwrap();
        let single = PosteriorLinkage::new(&tn, part(4), &ta).unwrap();
        for (zt, zs) in [(10.0, 30.0), (55.0, 80.0), (97.0, 5.0), (-10.0, 110.0)] {
            let pc = corr.posterior(zt, zs);
            let ps = single.posterior(zt);
            for (a, b) in pc.iter().zip(&ps) {
                assert!((a - b).abs() < 1e-12, "posterior diverged: {pc:?} vs {ps:?}");
            }
            assert_eq!(corr.map_guess(zt, zs), single.map_guess(zt));
        }
    }

    #[test]
    fn perfect_correlation_with_clean_side_column_reveals_the_target() {
        // Joint concentrated on the diagonal and an identity side
        // channel: the side value alone pins the target bucket, however
        // noisy the target channel is.
        let tn = NoiseModel::gaussian(200.0).unwrap();
        let sn = NoiseModel::None;
        let diag = [1.0, 0.0, 0.0, 1.0];
        let joint = JointPrior::new(2, 2, &diag).unwrap();
        let corr = CorrelatedLinkage::new(&tn, part(2), &sn, part(2), joint).unwrap();
        let truth = [10.0, 80.0, 30.0, 60.0];
        let side = truth; // same bucket structure, observed unperturbed
        let noisy_target = [400.0, -300.0, 250.0, -100.0]; // useless reports
        let report = corr.audit(&noisy_target, &side, &truth).unwrap();
        assert_eq!(report.hits, report.records, "{report:?}");
    }

    #[test]
    fn from_samples_counts_pairs() {
        let xs = [10.0, 10.0, 60.0, 60.0];
        let ys = [10.0, 10.0, 60.0, 10.0];
        let j = JointPrior::from_samples(&part(2), &part(2), &xs, &ys).unwrap();
        assert!((j.prob(0, 0) - 0.5).abs() < 1e-12);
        assert!((j.prob(1, 1) - 0.25).abs() < 1e-12);
        assert!((j.prob(1, 0) - 0.25).abs() < 1e-12);
        assert_eq!(j.prob(0, 1), 0.0);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let n = NoiseModel::gaussian(5.0).unwrap();
        let joint = JointPrior::new(2, 2, &[1.0; 4]).unwrap();
        assert!(CorrelatedLinkage::new(&n, part(3), &n, part(2), joint.clone()).is_err());
        assert!(CorrelatedLinkage::new(&n, part(2), &n, part(3), joint).is_err());
    }
}
