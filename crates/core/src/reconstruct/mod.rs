//! Distribution reconstruction — the server-side half of AS00 (section 3).
//!
//! Given `n` perturbed observations `w_i = x_i + y_i`, the known noise
//! density `f_Y`, and a partition of the attribute domain into `m`
//! intervals, estimate the number of *original* points per interval.
//!
//! The iterate is Bayes' rule applied interval-wise, starting from the
//! uniform prior:
//!
//! ```text
//! Pr'(X in I_p) = (1/n) * sum_i  f_Y(w_i - mid(I_p)) * Pr(X in I_p)
//!                              ---------------------------------------
//!                              sum_r f_Y(w_i - mid(I_r)) * Pr(X in I_r)
//! ```
//!
//! Two refinements, both from the papers:
//!
//! * **Bucketing** (AS00's optimization): the observed values are also
//!   bucketed into intervals (over a partition extended by the noise span),
//!   turning each iteration from `O(n * m)` into `O((m + k) * m)`.
//! * **Cell-averaged likelihood** (Agrawal & Aggarwal 2001): replacing the
//!   midpoint density `f_Y(w - mid(I_p))` with the exact cell average
//!   `(1/|I_p|) * integral over I_p of f_Y(w - x) dx` makes the iterate the
//!   EM algorithm for the interval-discretized likelihood, which provably
//!   converges to the maximum-likelihood estimate.
//!
//! The production entry points are the [`ReconstructionEngine`] — which
//! precomputes the likelihood terms as a reusable kernel matrix (stored
//! transposed for the vectorized iterate), caches kernels across calls,
//! and fans batches of independent problems across worker threads (see
//! [`engine`]) — and the free [`reconstruct`] function, a thin wrapper
//! over a process-wide shared engine that keeps the paper-facing API
//! stable. Both the continuous paths and the discrete `Iterative` solver
//! run the same lane-blocked iterate core (the private `iterate` module
//! over [`crate::simd`]). The original serial implementation is
//! preserved byte-for-byte as [`reconstruct_reference`]: the scalar
//! oracle the equivalence suites bound the vectorized engine against
//! (≤ 1e-10), and the baseline the benches measure speedups from.
//!
//! For workloads where the sample arrives in batches across shards rather
//! than as one static slice, the [`streaming`] module provides mergeable
//! sufficient statistics ([`SuffStats`]), shard-parallel ingestion
//! ([`ShardedAccumulator`]), and warm-started incremental EM
//! ([`IncrementalReconstructor`]).
//!
//! Categorical data goes through the same motions in the [`discrete`]
//! module: a [`DiscreteReconstructionEngine`] caches factored channel
//! matrices by [`crate::randomize::ChannelFingerprint`] and inverts any
//! [`crate::randomize::DiscreteChannel`] either in closed form (pivoted
//! LU) or with the same Bayes/EM iterate and [`StoppingRule`]s, with
//! [`DiscreteSuffStats`] as the mergeable streaming sketch.

pub mod discrete;
pub mod engine;
mod iterate;
mod reference;
mod stopping;
pub mod streaming;

pub use discrete::{
    shared_discrete_engine, DiscreteJob, DiscreteJobInput, DiscreteReconstruction,
    DiscreteReconstructionConfig, DiscreteReconstructionEngine, DiscreteSolver, DiscreteSuffStats,
    FactoredChannel,
};
pub use engine::{
    shared_engine, CacheStats, JobInput, KernelLayout, KernelMatrix, ReconstructionEngine,
    ReconstructionJob,
};
pub use reference::reconstruct_reference;
pub use stopping::{paper_chi_square_rule, StoppingRule};
pub use streaming::{IncrementalReconstructor, ShardedAccumulator, SuffStats};

use serde::{Deserialize, Serialize};

use crate::domain::Partition;
use crate::error::Result;
use crate::randomize::NoiseDensity;
use crate::stats::Histogram;

/// How the likelihood of an observation given an interval is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LikelihoodKernel {
    /// `f_Y(w - midpoint)` — AS00's original Bayesian iterate.
    Midpoint,
    /// Cell-averaged likelihood — the EM formulation of AA01.
    CellAverage,
}

/// Whether each observation is used exactly or after bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateMode {
    /// Every observation contributes its own Bayes update. `O(n * m)` per
    /// iteration. The engine materializes the per-observation likelihood
    /// rows once per call while `n x m` fits its budget, and *streams*
    /// them beyond it (recomputed on the fly, `O(m)` memory), so huge
    /// samples never allocate an `n x m` matrix. Rows are sample-dependent
    /// and never cached across calls.
    Exact,
    /// Observations are bucketed into an extended partition first.
    /// `O((m + k) * m)` per iteration — AS00's production path.
    Bucketed,
}

/// Whether a single solve may fan its E-step across worker threads.
///
/// The parallel iterate partitions each E-step into fixed-size blocks
/// whose count depends only on the problem geometry — never on the
/// thread count — and every floating-point combine runs in a fixed
/// order, so the parallel result is **bit-identical** to the serial
/// path for any thread count (see the `iterate` module docs and
/// `tests/iterate_parallel_props.rs`). The policy therefore only
/// trades wall-clock for cores; it never changes a result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelPolicy {
    /// Never parallelize inside a solve.
    Serial,
    /// Parallelize when the per-iteration work clears a size threshold
    /// *and* the caller is not already inside a rayon fan-out (an outer
    /// `reconstruct_many` batch or a sweep cell claims the pool; inner
    /// parallelism then stays off to avoid oversubscription). The
    /// default: large single solves scale across cores, batches and
    /// small solves stay serial.
    #[default]
    Auto,
    /// Always run the block-parallel E-step, regardless of problem size
    /// or pool state. Intended for benches and determinism tests; under
    /// an outer fan-out the blocks simply run inline on the worker's
    /// budget.
    Forced,
}

/// Configuration of the reconstruction procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconstructionConfig {
    /// Likelihood evaluation strategy.
    pub kernel: LikelihoodKernel,
    /// Exact or bucketed updates.
    pub mode: UpdateMode,
    /// Early-stopping rule.
    pub stopping: StoppingRule,
    /// Hard cap on iterations regardless of the stopping rule.
    pub max_iterations: usize,
    /// Intra-solve parallelism policy. Defaults to [`ParallelPolicy::Auto`];
    /// absent in serialized configs from before the field existed.
    #[serde(default)]
    pub parallel: ParallelPolicy,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        ReconstructionConfig {
            kernel: LikelihoodKernel::Midpoint,
            mode: UpdateMode::Bucketed,
            stopping: StoppingRule::default(),
            max_iterations: 5_000,
            parallel: ParallelPolicy::Auto,
        }
    }
}

impl ReconstructionConfig {
    /// AS00's configuration: midpoint kernel, bucketed updates, chi-square
    /// stopping.
    pub fn bayes() -> Self {
        Self::default()
    }

    /// AA01's EM configuration: cell-averaged likelihood, bucketed updates,
    /// chi-square stopping.
    pub fn em() -> Self {
        ReconstructionConfig { kernel: LikelihoodKernel::CellAverage, ..Self::default() }
    }
}

/// Result of a reconstruction run.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    /// Estimated per-interval mass of the *original* values, scaled so the
    /// total equals the number of observations.
    pub histogram: Histogram,
    /// Number of Bayes/EM iterations performed.
    pub iterations: usize,
    /// Whether the stopping rule fired before the iteration cap.
    pub converged: bool,
}

/// Reconstructs the original distribution of `observed` perturbed values.
///
/// Thin wrapper over the process-wide [`shared_engine`], so repeated calls
/// with the same noise/partition geometry reuse one precomputed likelihood
/// kernel. Accepts any [`NoiseDensity`] channel; pass a
/// [`crate::randomize::NoiseModel`] for the paper's uniform/Gaussian
/// setting.
///
/// # Errors
///
/// Returns [`crate::Error::NoObservations`] for an empty sample.
/// Non-finite observations are rejected as [`crate::Error::InvalidMass`].
pub fn reconstruct(
    noise: &dyn NoiseDensity,
    partition: Partition,
    observed: &[f64],
    config: &ReconstructionConfig,
) -> Result<Reconstruction> {
    shared_engine().reconstruct(noise, partition, observed, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::error::Error;
    use crate::randomize::NoiseModel;
    use crate::stats::total_variation;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn part(lo: f64, hi: f64, n: usize) -> Partition {
        Partition::new(Domain::new(lo, hi).unwrap(), n).unwrap()
    }

    /// Draws from a bimodal mixture of two triangles on [0, 100].
    fn bimodal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let center = if rng.gen_bool(0.5) { 25.0 } else { 75.0 };
                // Triangle via sum of two uniforms on [-5, 5].
                center + rng.gen_range(-5.0..5.0) + rng.gen_range(-5.0..5.0)
            })
            .collect()
    }

    #[test]
    fn empty_observations_error() {
        let p = part(0.0, 1.0, 4);
        let noise = NoiseModel::gaussian(1.0).unwrap();
        assert_eq!(
            reconstruct(&noise, p, &[], &ReconstructionConfig::default()).unwrap_err(),
            Error::NoObservations
        );
    }

    #[test]
    fn non_finite_observation_error() {
        let p = part(0.0, 1.0, 4);
        let noise = NoiseModel::gaussian(1.0).unwrap();
        assert!(reconstruct(&noise, p, &[0.5, f64::NAN], &ReconstructionConfig::default()).is_err());
    }

    #[test]
    fn no_noise_returns_empirical_histogram() {
        let p = part(0.0, 10.0, 5);
        let obs = [1.0, 1.5, 9.0];
        let r = reconstruct(&NoiseModel::None, p, &obs, &ReconstructionConfig::default()).unwrap();
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
        assert_eq!(r.histogram.masses(), &[2.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn mass_conservation() {
        let p = part(0.0, 100.0, 20);
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let originals: Vec<f64> = (0..5_000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let observed = noise.perturb_all(&originals, &mut rng);
        let r = reconstruct(&noise, p, &observed, &ReconstructionConfig::default()).unwrap();
        assert!((r.histogram.total() - 5_000.0).abs() < 1e-6);
        assert!(r.iterations >= 1);
    }

    #[test]
    fn uniform_original_reconstructs_to_near_uniform() {
        let p = part(0.0, 100.0, 10);
        let noise = NoiseModel::gaussian(20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let originals: Vec<f64> = (0..20_000).map(|_| rng.gen_range(0.0..100.0)).collect();
        let observed = noise.perturb_all(&originals, &mut rng);
        let r = reconstruct(&noise, p, &observed, &ReconstructionConfig::default()).unwrap();
        let truth = Histogram::from_values(p, &originals);
        let tv = total_variation(&r.histogram, &truth).unwrap();
        assert!(tv < 0.06, "tv {tv}");
    }

    #[test]
    fn bimodal_structure_recovered_gaussian() {
        let p = part(0.0, 100.0, 25);
        let originals = bimodal_sample(20_000, 3);
        let noise = NoiseModel::gaussian(25.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let observed = noise.perturb_all(&originals, &mut rng);

        let truth = Histogram::from_values(p, &originals);
        let naive = Histogram::from_values(p, &observed); // clamped perturbed values
        let r = reconstruct(&noise, p, &observed, &ReconstructionConfig::bayes()).unwrap();

        let tv_recon = total_variation(&r.histogram, &truth).unwrap();
        let tv_naive = total_variation(&naive, &truth).unwrap();
        assert!(
            tv_recon < 0.5 * tv_naive,
            "reconstruction ({tv_recon}) should beat naive ({tv_naive}) by 2x"
        );
        // The two modes (cells containing 25.0 and 75.0) should carry more
        // mass than the valley cell (50.0).
        let mode1 = r.histogram.mass(p.locate(25.0));
        let valley = r.histogram.mass(p.locate(50.0));
        let mode2 = r.histogram.mass(p.locate(75.0));
        assert!(mode1 > 2.0 * valley, "mode1 {mode1} valley {valley}");
        assert!(mode2 > 2.0 * valley, "mode2 {mode2} valley {valley}");
    }

    #[test]
    fn bimodal_structure_recovered_uniform_noise() {
        let p = part(0.0, 100.0, 25);
        let originals = bimodal_sample(20_000, 5);
        let noise = NoiseModel::uniform(40.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let observed = noise.perturb_all(&originals, &mut rng);

        let truth = Histogram::from_values(p, &originals);
        let naive = Histogram::from_values(p, &observed);
        let r = reconstruct(&noise, p, &observed, &ReconstructionConfig::bayes()).unwrap();
        let tv_recon = total_variation(&r.histogram, &truth).unwrap();
        let tv_naive = total_variation(&naive, &truth).unwrap();
        assert!(tv_recon < tv_naive, "recon {tv_recon} naive {tv_naive}");
    }

    #[test]
    fn bimodal_structure_recovered_laplace_and_mixture() {
        // The new families flow through the same engine: both kernels
        // must beat the naive perturbed histogram on the bimodal sample.
        let p = part(0.0, 100.0, 25);
        let originals = bimodal_sample(20_000, 15);
        let channels: [NoiseModel; 2] = [
            NoiseModel::laplace(15.0).unwrap(),
            NoiseModel::gaussian_mixture(8.0, 30.0, 0.25).unwrap(),
        ];
        for (i, noise) in channels.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(16 + i as u64);
            let observed = noise.perturb_all(&originals, &mut rng);
            let truth = Histogram::from_values(p, &originals);
            let naive = Histogram::from_values(p, &observed);
            for config in [ReconstructionConfig::bayes(), ReconstructionConfig::em()] {
                let r = reconstruct(noise, p, &observed, &config).unwrap();
                let tv_recon = total_variation(&r.histogram, &truth).unwrap();
                let tv_naive = total_variation(&naive, &truth).unwrap();
                assert!(
                    tv_recon < tv_naive,
                    "{noise:?} {:?}: recon {tv_recon} naive {tv_naive}",
                    config.kernel
                );
                assert!((r.histogram.total() - 20_000.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_and_bucketed_reach_similar_quality() {
        // Bucketing is a performance optimization: at convergence the two
        // modes need not produce identical histograms (the deconvolution
        // sharpens small likelihood differences), but they must recover the
        // original distribution comparably well.
        let p = part(0.0, 100.0, 15);
        let originals = bimodal_sample(3_000, 7);
        let noise = NoiseModel::gaussian(15.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let observed = noise.perturb_all(&originals, &mut rng);
        let truth = Histogram::from_values(p, &originals);

        let exact_cfg = ReconstructionConfig { mode: UpdateMode::Exact, ..Default::default() };
        let bucket_cfg = ReconstructionConfig { mode: UpdateMode::Bucketed, ..Default::default() };
        let exact = reconstruct(&noise, p, &observed, &exact_cfg).unwrap();
        let bucketed = reconstruct(&noise, p, &observed, &bucket_cfg).unwrap();
        let tv_exact = total_variation(&exact.histogram, &truth).unwrap();
        let tv_bucketed = total_variation(&bucketed.histogram, &truth).unwrap();
        assert!(tv_exact < 0.2, "exact tv {tv_exact}");
        assert!(tv_bucketed < 0.2, "bucketed tv {tv_bucketed}");
        assert!(
            (tv_exact - tv_bucketed).abs() < 0.06,
            "modes should be comparably accurate: exact {tv_exact}, bucketed {tv_bucketed}"
        );
    }

    #[test]
    fn bayes_and_em_agree() {
        let p = part(0.0, 100.0, 15);
        let originals = bimodal_sample(5_000, 9);
        let noise = NoiseModel::gaussian(15.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let observed = noise.perturb_all(&originals, &mut rng);

        let bayes = reconstruct(&noise, p, &observed, &ReconstructionConfig::bayes()).unwrap();
        let em = reconstruct(&noise, p, &observed, &ReconstructionConfig::em()).unwrap();
        let tv = total_variation(&bayes.histogram, &em.histogram).unwrap();
        assert!(tv < 0.05, "bayes vs em tv {tv}");
    }

    #[test]
    fn stopping_rule_limits_iterations() {
        let p = part(0.0, 100.0, 10);
        let originals = bimodal_sample(2_000, 11);
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let observed = noise.perturb_all(&originals, &mut rng);

        let capped = ReconstructionConfig {
            stopping: StoppingRule::MaxIterationsOnly,
            max_iterations: 3,
            ..Default::default()
        };
        let r = reconstruct(&noise, p, &observed, &capped).unwrap();
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);

        let chi = reconstruct(&noise, p, &observed, &ReconstructionConfig::default()).unwrap();
        assert!(chi.converged, "chi-square rule should converge");
        assert!(chi.iterations > 3, "paper stopping rule should run well past 3 iterations");
        assert!(chi.iterations < 5_000);
    }

    #[test]
    fn more_iterations_dont_hurt() {
        // The L1 rule with a tight tolerance should give at least as good a
        // fit as an extremely loose tolerance.
        let p = part(0.0, 100.0, 20);
        let originals = bimodal_sample(10_000, 13);
        let noise = NoiseModel::gaussian(20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let observed = noise.perturb_all(&originals, &mut rng);
        let truth = Histogram::from_values(p, &originals);

        let loose = ReconstructionConfig {
            stopping: StoppingRule::L1 { tolerance: 0.5 },
            ..Default::default()
        };
        let tight = ReconstructionConfig {
            stopping: StoppingRule::L1 { tolerance: 1e-6 },
            ..Default::default()
        };
        let r_loose = reconstruct(&noise, p, &observed, &loose).unwrap();
        let r_tight = reconstruct(&noise, p, &observed, &tight).unwrap();
        assert!(r_tight.iterations > r_loose.iterations);
        let tv_loose = total_variation(&r_loose.histogram, &truth).unwrap();
        let tv_tight = total_variation(&r_tight.histogram, &truth).unwrap();
        assert!(tv_tight <= tv_loose + 0.02, "tight {tv_tight} loose {tv_loose}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_reconstruction_is_valid_distribution(
            seed in 0u64..500,
            n in 50usize..400,
            sigma in 1.0..30.0f64,
        ) {
            let p = part(0.0, 100.0, 12);
            let noise = NoiseModel::gaussian(sigma).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let originals: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
            let observed = noise.perturb_all(&originals, &mut rng);
            let r = reconstruct(&noise, p, &observed, &ReconstructionConfig::default()).unwrap();
            prop_assert!((r.histogram.total() - n as f64).abs() < 1e-6);
            prop_assert!(r.histogram.masses().iter().all(|m| *m >= 0.0 && m.is_finite()));
        }
    }
}
