//! Stopping rules for the iterative reconstruction procedure.
//!
//! AS00 stops "when the reconstructed distribution is statistically the
//! same as in the previous iteration", operationalized with a chi-square
//! test between successive estimates. An L1 rule and a fixed-iteration
//! rule are provided for experimentation (see the `ablation_stopping`
//! harness).

use serde::{Deserialize, Serialize};

use crate::stats::special::chi_square_quantile;

/// When to declare the reconstruction iterate converged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StoppingRule {
    /// Never stop early; run until the iteration cap.
    MaxIterationsOnly,
    /// Stop when the relative improvement of the observed-data
    /// log-likelihood falls below `rel_tolerance`. The default.
    ///
    /// The reconstruction iterate is (a midpoint approximation of) EM, so
    /// the log-likelihood increases monotonically and flattens exactly when
    /// the estimate stops explaining the data better — a much more robust
    /// criterion at high noise levels than comparing successive estimates,
    /// which go quiet thousands of iterations before convergence (see the
    /// `ablation_stopping` harness).
    LogLikelihood {
        /// Relative per-iteration improvement below which to stop.
        rel_tolerance: f64,
    },
    /// Stop when the chi-square statistic between successive estimates
    /// (scaled by the sample size) drops below `critical_fraction` times the
    /// critical value at the given significance level.
    ///
    /// This is the paper's criterion: AS00 stops "when the difference
    /// between successive estimates becomes very small (1% of the threshold
    /// of the chi-square test)". The fraction matters — the iterate moves
    /// slowly near the optimum (it is an EM iteration on a deconvolution
    /// problem), so a per-step change that is already statistically
    /// insignificant can still leave large cumulative movement on the
    /// table.
    ChiSquare {
        /// Test significance level, e.g. `0.05`.
        significance: f64,
        /// Fraction of the critical value below which to stop (AS00: 0.01).
        critical_fraction: f64,
    },
    /// Stop when the L1 distance between successive probability vectors
    /// drops below `tolerance`.
    L1 {
        /// Total absolute change below which iteration stops.
        tolerance: f64,
    },
}

impl Default for StoppingRule {
    fn default() -> Self {
        StoppingRule::LogLikelihood { rel_tolerance: 1e-8 }
    }
}

/// AS00's published criterion (chi-square between successive estimates at
/// 1% of the critical value), offered for faithful comparison.
pub fn paper_chi_square_rule() -> StoppingRule {
    StoppingRule::ChiSquare { significance: 0.05, critical_fraction: 0.01 }
}

impl StoppingRule {
    /// Whether this rule reads the observed-data log-likelihood that
    /// [`Self::should_stop`] is handed. The iterate skips the per-row
    /// `ln` accumulation — a measurable fraction of an iteration at
    /// paper scale — for rules that never look at it, passing `NaN`
    /// placeholders instead.
    pub(crate) fn needs_log_likelihood(&self) -> bool {
        matches!(self, StoppingRule::LogLikelihood { .. })
    }

    /// Decides whether the step from `old` to `new` (probability vectors
    /// over the same partition, summing to one) is small enough to stop,
    /// given `n` observations and the observed-data log-likelihoods before
    /// (`ll_old`) and after (`ll_new`) the step.
    pub(crate) fn should_stop(
        &self,
        old: &[f64],
        new: &[f64],
        n: f64,
        ll_old: f64,
        ll_new: f64,
    ) -> bool {
        debug_assert_eq!(old.len(), new.len());
        match *self {
            StoppingRule::MaxIterationsOnly => false,
            StoppingRule::LogLikelihood { rel_tolerance } => {
                if !ll_old.is_finite() || !ll_new.is_finite() {
                    return false;
                }
                (ll_new - ll_old).abs() <= rel_tolerance * ll_new.abs().max(f64::MIN_POSITIVE)
            }
            StoppingRule::ChiSquare { significance, critical_fraction } => {
                let mut stat = 0.0;
                for (o, w) in old.iter().zip(new) {
                    if *o > 0.0 {
                        let d = w - o;
                        stat += d * d / o;
                    } else if *w > 1e-12 {
                        return false; // mass appeared from nowhere: keep going
                    }
                }
                stat *= n;
                let dof = old.len().saturating_sub(1).max(1);
                let critical = chi_square_quantile(1.0 - significance.clamp(1e-9, 1.0 - 1e-9), dof);
                stat < critical_fraction * critical
            }
            StoppingRule::L1 { tolerance } => {
                let l1: f64 = old.iter().zip(new).map(|(o, w)| (w - o).abs()).sum();
                l1 < tolerance
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LL: f64 = -1000.0; // arbitrary finite log-likelihood for rules that ignore it

    #[test]
    fn max_iterations_never_stops() {
        let p = vec![0.5, 0.5];
        assert!(!StoppingRule::MaxIterationsOnly.should_stop(&p, &p, 1e6, LL, LL));
    }

    #[test]
    fn log_likelihood_stops_on_flat_improvement() {
        let p = vec![0.25; 4];
        let rule = StoppingRule::default();
        assert!(rule.should_stop(&p, &p, 1e6, -1000.0, -1000.0 + 1e-9));
        assert!(!rule.should_stop(&p, &p, 1e6, -1000.0, -999.0));
    }

    #[test]
    fn log_likelihood_never_stops_on_first_iteration() {
        let p = vec![0.25; 4];
        let rule = StoppingRule::default();
        assert!(!rule.should_stop(&p, &p, 1e6, f64::NEG_INFINITY, -1000.0));
    }

    #[test]
    fn chi_square_stops_on_identical() {
        let p = vec![0.25; 4];
        let rule = paper_chi_square_rule();
        assert!(rule.should_stop(&p, &p, 1e9, LL, LL));
    }

    #[test]
    fn chi_square_keeps_going_on_large_change() {
        let old = vec![0.25; 4];
        let new = vec![0.10, 0.40, 0.10, 0.40];
        let rule = paper_chi_square_rule();
        assert!(!rule.should_stop(&old, &new, 10_000.0, LL, LL));
    }

    #[test]
    fn chi_square_scales_with_n() {
        // The same small change is negligible for small n but a real
        // difference for large n.
        let old = vec![0.25; 4];
        let new = vec![0.249, 0.251, 0.25, 0.25];
        let rule = paper_chi_square_rule();
        assert!(rule.should_stop(&old, &new, 100.0, LL, LL));
        assert!(!rule.should_stop(&old, &new, 10_000_000.0, LL, LL));
    }

    #[test]
    fn critical_fraction_tightens_the_rule() {
        let old = vec![0.25; 4];
        let new = vec![0.245, 0.255, 0.25, 0.25];
        let loose = StoppingRule::ChiSquare { significance: 0.05, critical_fraction: 1.0 };
        let paper = paper_chi_square_rule();
        assert!(loose.should_stop(&old, &new, 10_000.0, LL, LL));
        assert!(!paper.should_stop(&old, &new, 10_000.0, LL, LL));
    }

    #[test]
    fn chi_square_rejects_mass_from_nowhere() {
        let old = vec![1.0, 0.0];
        let new = vec![0.9, 0.1];
        let rule = paper_chi_square_rule();
        assert!(!rule.should_stop(&old, &new, 10.0, LL, LL));
    }

    #[test]
    fn l1_rule_thresholds() {
        let old = vec![0.5, 0.5];
        let new = vec![0.49, 0.51];
        assert!(StoppingRule::L1 { tolerance: 0.05 }.should_stop(&old, &new, 1.0, LL, LL));
        assert!(!StoppingRule::L1 { tolerance: 0.001 }.should_stop(&old, &new, 1.0, LL, LL));
    }
}
