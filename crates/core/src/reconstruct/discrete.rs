//! Discrete-channel reconstruction: factored channel matrices + batched,
//! parallel inversion for categorical data.
//!
//! This is the categorical half of the engine story. A
//! [`DiscreteChannel`] observes a true state in `0..k` through a known
//! `k x k` transition matrix `M` (`observed = M * true` in expectation);
//! reconstructing the original state distribution from observed-state
//! counts is a `k`-dimensional inverse problem, solved here two ways:
//!
//! * **Closed form** ([`DiscreteSolver::ClosedForm`]): solve
//!   `M x = observed` exactly by pivoted LU. The factorization depends
//!   only on the channel, never on the data, so it is computed once per
//!   [`ChannelFingerprint`] and cached ([`FactoredChannel`]) — the
//!   discrete analogue of the continuous engine's kernel cache. The
//!   arithmetic reproduces classic Gaussian elimination with partial
//!   pivoting step for step, so results match the retired bespoke
//!   solvers bit for bit.
//! * **Iterative Bayes/EM** ([`DiscreteSolver::Iterative`]): the AS00
//!   iterate specialized to point masses — guaranteed nonnegative and
//!   normalized, sharing the continuous engine's [`StoppingRule`]
//!   machinery (and warm starts, mirroring the streaming path).
//!
//! [`DiscreteSuffStats`] mirrors the numeric [`super::SuffStats`]: the
//! observed-state counts are integer-valued sufficient statistics, so
//! shard merging is exactly associative/commutative and fingerprint
//! mismatches fail fast. [`DiscreteReconstructionEngine::reconstruct_many`]
//! fans independent jobs over worker threads, results in job order.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::randomize::{ChannelFingerprint, DiscreteChannel};

use super::engine::floored_prior;
use super::iterate::{engaged_plan, run_iterate_core, ColumnMatrix, ParallelPlan, TransposedEStep};
use super::stopping::StoppingRule;
use super::ParallelPolicy;

/// A channel matrix factored once (pivoted LU) for repeated closed-form
/// solves against different right-hand sides.
///
/// The elimination follows textbook Gaussian elimination with partial
/// pivoting in the exact operation order of the bespoke solvers it
/// replaces (`ppdm-assoc`'s `linalg::solve`), so a factored solve is
/// bit-identical to eliminating the augmented system per call.
#[derive(Debug)]
pub struct FactoredChannel {
    states: usize,
    /// Row-major `[observed][truth]` transition matrix (the iterate's
    /// likelihood rows).
    matrix: Vec<f64>,
    /// Column-major `[truth][observed]` copy of the transition matrix:
    /// the vectorized iterate's contiguous likelihood columns, built
    /// once here so warm `Iterative` solves never re-transpose.
    transposed: Vec<f64>,
    /// Packed LU factors after row swaps: `U` on and above the diagonal,
    /// the elimination multipliers of `L` below it.
    lu: Vec<f64>,
    /// Row swaps `(col, pivot_row)` in elimination order, replayed on
    /// each right-hand side.
    swaps: Vec<(usize, usize)>,
}

impl FactoredChannel {
    /// Factors one channel's transition matrix.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidStateCount`] for channels under 2 states;
    /// [`Error::InvalidMass`] when the matrix is (numerically) singular.
    pub fn build(channel: &dyn DiscreteChannel) -> Result<Self> {
        let n = channel.states();
        if n < 2 {
            return Err(Error::InvalidStateCount { found: n });
        }
        let matrix = channel.matrix();
        if matrix.len() != n * n {
            return Err(Error::LengthMismatch { left: matrix.len(), right: n * n });
        }
        if let Some(bad) = matrix.iter().find(|v| !v.is_finite()) {
            return Err(Error::InvalidMass(format!("non-finite transition probability {bad}")));
        }
        let mut lu = matrix.clone();
        let mut swaps = Vec::with_capacity(n);
        for col in 0..n {
            // Partial pivoting; `max_by` keeps the *last* of equal maxima,
            // matching the legacy solver's tie-breaking exactly.
            let pivot_row = (col..n)
                .max_by(|&x, &y| {
                    lu[x * n + col]
                        .abs()
                        .partial_cmp(&lu[y * n + col].abs())
                        .expect("finite matrix entries")
                })
                .expect("non-empty range");
            if lu[pivot_row * n + col].abs() < 1e-12 {
                return Err(Error::InvalidMass(format!("singular channel matrix at column {col}")));
            }
            if pivot_row != col {
                for k in 0..n {
                    lu.swap(col * n + k, pivot_row * n + k);
                }
            }
            swaps.push((col, pivot_row));
            for row in col + 1..n {
                let factor = lu[row * n + col] / lu[col * n + col];
                lu[row * n + col] = factor;
                if factor == 0.0 {
                    continue;
                }
                for k in col + 1..n {
                    lu[row * n + k] -= factor * lu[col * n + k];
                }
            }
        }
        let mut transposed = vec![0.0f64; n * n];
        for observed in 0..n {
            for truth in 0..n {
                transposed[truth * n + observed] = matrix[observed * n + truth];
            }
        }
        Ok(FactoredChannel { states: n, matrix, transposed, lu, swaps })
    }

    /// Number of states `k`.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Transition-likelihood row of one observed state (over true
    /// states) — the iterate's likelihood row.
    #[inline]
    pub fn row(&self, observed: usize) -> &[f64] {
        &self.matrix[observed * self.states..(observed + 1) * self.states]
    }

    /// Solves `M x = rhs` against the cached factorization.
    ///
    /// # Errors
    ///
    /// [`Error::CategoryMismatch`] when `rhs` is not `states` long.
    pub fn solve(&self, rhs: &[f64]) -> Result<Vec<f64>> {
        let n = self.states;
        if rhs.len() != n {
            return Err(Error::CategoryMismatch { expected: n, found: rhs.len() });
        }
        let mut x = rhs.to_vec();
        for &(a, b) in &self.swaps {
            x.swap(a, b);
        }
        // Forward substitution with the stored multipliers — the same
        // updates, in the same order, the legacy solver applied to its
        // augmented column (bit-for-bit equivalence depends on it).
        #[allow(clippy::needless_range_loop)]
        for col in 0..n {
            for row in col + 1..n {
                let factor = self.lu[row * n + col];
                if factor != 0.0 {
                    x[row] -= factor * x[col];
                }
            }
        }
        // Back substitution (same order as the legacy solver's).
        #[allow(clippy::needless_range_loop)]
        for row in (0..n).rev() {
            let mut acc = x[row];
            for col in row + 1..n {
                acc -= self.lu[row * n + col] * x[col];
            }
            x[row] = acc / self.lu[row * n + row];
        }
        Ok(x)
    }

    /// Memory footprint in `f64` entries (matrix + transposed copy +
    /// factors), the unit of the engine's cache budget.
    pub fn entries(&self) -> usize {
        self.matrix.len() + self.transposed.len() + self.lu.len()
    }
}

/// How a discrete reconstruction inverts the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscreteSolver {
    /// Exact LU solve of `M x = observed`. Unbiased but not
    /// range-respecting: small samples can produce negative estimates,
    /// which are returned raw so callers choose their own clamping.
    ClosedForm,
    /// The Bayes/EM iterate: nonnegative, normalized, shares the
    /// continuous engine's stopping rules.
    Iterative,
}

/// Configuration of a discrete reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscreteReconstructionConfig {
    /// Inversion strategy.
    pub solver: DiscreteSolver,
    /// Early-stopping rule ([`DiscreteSolver::Iterative`] only).
    pub stopping: StoppingRule,
    /// Hard cap on iterations regardless of the stopping rule.
    pub max_iterations: usize,
    /// Intra-solve parallelism for the [`DiscreteSolver::Iterative`]
    /// E-step; the closed form ignores it. Same semantics — and the same
    /// bit-identity guarantee — as the continuous
    /// [`super::ReconstructionConfig::parallel`].
    #[serde(default)]
    pub parallel: ParallelPolicy,
}

impl Default for DiscreteReconstructionConfig {
    fn default() -> Self {
        DiscreteReconstructionConfig {
            solver: DiscreteSolver::Iterative,
            stopping: StoppingRule::default(),
            max_iterations: 5_000,
            parallel: ParallelPolicy::Auto,
        }
    }
}

impl DiscreteReconstructionConfig {
    /// Exact LU inversion.
    pub fn closed_form() -> Self {
        DiscreteReconstructionConfig { solver: DiscreteSolver::ClosedForm, ..Default::default() }
    }

    /// The Bayes/EM iterate with default stopping.
    pub fn iterative() -> Self {
        Self::default()
    }
}

/// Result of a discrete reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteReconstruction {
    /// Estimated per-state counts of the *original* values. Sums to the
    /// observed total (exactly for the iterative solver; up to rounding
    /// for the closed form, whose entries may also be negative).
    pub estimate: Vec<f64>,
    /// Bayes/EM iterations performed (`0` for the closed form and the
    /// identity channel).
    pub iterations: usize,
    /// Whether the stopping rule fired before the iteration cap (always
    /// `true` for the closed form).
    pub converged: bool,
}

/// Mergeable sufficient statistics of a categorical sample: integer
/// observed-state counts bound to one channel fingerprint.
///
/// The discrete analogue of [`super::SuffStats`]: every field is an
/// integer, so shard merging is *exactly* associative and commutative,
/// and [`DiscreteSuffStats::merge`] refuses sketches built against a
/// different channel ([`Error::ShardMismatch`]) so incompatible shards
/// fail fast.
///
/// # Example
///
/// ```
/// use ppdm_core::randomize::RandomizedResponse;
/// use ppdm_core::reconstruct::DiscreteSuffStats;
///
/// let channel = RandomizedResponse::new(3, 0.7)?;
/// let shard_a = DiscreteSuffStats::from_states(&channel, &[0, 1, 2, 0])?;
/// let shard_b = DiscreteSuffStats::from_states(&channel, &[2, 2])?;
/// let merged = shard_a.merge(&shard_b)?;
/// assert_eq!(merged.count(), 6);
/// assert_eq!(merged.counts(), &[2, 1, 3]);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscreteSuffStats {
    fingerprint: ChannelFingerprint,
    /// Observations per observed state. Integer, hence exact.
    counts: Vec<u64>,
    /// Number of observations ingested.
    count: u64,
}

impl DiscreteSuffStats {
    /// An empty sketch for one channel.
    ///
    /// The channel must report a stable [`ChannelFingerprint`]; without
    /// one there is no way to verify at merge time that two shards saw
    /// the same channel.
    pub fn new(channel: &dyn DiscreteChannel) -> Result<Self> {
        let fingerprint = channel.fingerprint().ok_or(Error::MissingInput {
            what: "DiscreteSuffStats requires a channel with a stable fingerprint",
        })?;
        Ok(DiscreteSuffStats { fingerprint, counts: vec![0; channel.states()], count: 0 })
    }

    /// A sketch pre-loaded with one batch of observed states.
    pub fn from_states(channel: &dyn DiscreteChannel, observed: &[usize]) -> Result<Self> {
        let mut stats = Self::new(channel)?;
        stats.ingest(observed)?;
        Ok(stats)
    }

    /// Tallies a batch of observed states into the sketch. Validates the
    /// whole batch before touching any count, so a bad batch leaves the
    /// sketch unchanged.
    pub fn ingest(&mut self, observed: &[usize]) -> Result<()> {
        let k = self.counts.len();
        if let Some(&bad) = observed.iter().find(|&&s| s >= k) {
            return Err(Error::StateOutOfRange { state: bad, states: k });
        }
        for &s in observed {
            self.counts[s] += 1;
        }
        self.count += observed.len() as u64;
        Ok(())
    }

    /// Checks that `other` was built against the same channel.
    ///
    /// The single compatibility gate for combining discrete sketches:
    /// [`Self::merge_from`] and the federated wire decode path
    /// ([`crate::federate::WireSketch`]) both route through it.
    pub(crate) fn compatible(&self, other: &DiscreteSuffStats) -> Result<()> {
        if self.fingerprint != other.fingerprint {
            return Err(Error::ShardMismatch(format!(
                "channel fingerprints differ: {:?} vs {:?}",
                self.fingerprint, other.fingerprint
            )));
        }
        debug_assert_eq!(self.counts.len(), other.counts.len(), "same fingerprint, same states");
        Ok(())
    }

    /// Merges `other` into `self`. Errs (leaving `self` untouched) on a
    /// fingerprint mismatch.
    pub fn merge_from(&mut self, other: &DiscreteSuffStats) -> Result<()> {
        self.compatible(other)?;
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        Ok(())
    }

    /// The merge of two sketches, leaving both inputs intact. Integer
    /// counts make this exactly associative and commutative.
    pub fn merge(&self, other: &DiscreteSuffStats) -> Result<DiscreteSuffStats> {
        let mut merged = self.clone();
        merged.merge_from(other)?;
        Ok(merged)
    }

    /// Channel fingerprint the sketch is bound to.
    pub fn fingerprint(&self) -> ChannelFingerprint {
        self.fingerprint
    }

    /// Number of states the sketch counts over.
    pub fn states(&self) -> usize {
        self.counts.len()
    }

    /// Per-state observation counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The counts as `f64`s (the solvers' working type; exact — every
    /// count is a small integer).
    pub fn counts_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Number of observations ingested.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Overwrites the per-state counts wholesale — the federated wire
    /// decode path's installer. Only the geometry-determined length is
    /// re-checked here; the wire layer validates everything else.
    pub(crate) fn install_counts(&mut self, counts: &[u64], count: u64) -> Result<()> {
        if counts.len() != self.counts.len() {
            return Err(Error::ShardMismatch(format!(
                "state count vector has {} entries, channel expects {}",
                counts.len(),
                self.counts.len()
            )));
        }
        self.counts.copy_from_slice(counts);
        self.count = count;
        Ok(())
    }
}

/// What a [`DiscreteJob`] reconstructs from.
pub enum DiscreteJobInput<'a> {
    /// Observed-state counts (length = channel states).
    Counts(Cow<'a, [f64]>),
    /// A [`DiscreteSuffStats`] sketch (ingested locally or merged from
    /// shards).
    Stats(Cow<'a, DiscreteSuffStats>),
}

/// One independent discrete reconstruction problem for
/// [`DiscreteReconstructionEngine::reconstruct_many`].
pub struct DiscreteJob<'a> {
    /// The public channel the observations went through.
    pub channel: &'a dyn DiscreteChannel,
    /// The observations, as counts or as a sketch.
    pub input: DiscreteJobInput<'a>,
    /// Inversion parameters.
    pub config: DiscreteReconstructionConfig,
}

impl<'a> DiscreteJob<'a> {
    /// A job borrowing its observed-state counts.
    pub fn borrowed(
        channel: &'a dyn DiscreteChannel,
        observed_counts: &'a [f64],
        config: DiscreteReconstructionConfig,
    ) -> Self {
        DiscreteJob {
            channel,
            input: DiscreteJobInput::Counts(Cow::Borrowed(observed_counts)),
            config,
        }
    }

    /// A job owning its observed-state counts.
    pub fn owned(
        channel: &'a dyn DiscreteChannel,
        observed_counts: Vec<f64>,
        config: DiscreteReconstructionConfig,
    ) -> Self {
        DiscreteJob {
            channel,
            input: DiscreteJobInput::Counts(Cow::Owned(observed_counts)),
            config,
        }
    }

    /// A job owning a sufficient-statistics sketch.
    pub fn from_stats(
        channel: &'a dyn DiscreteChannel,
        stats: DiscreteSuffStats,
        config: DiscreteReconstructionConfig,
    ) -> Self {
        DiscreteJob { channel, input: DiscreteJobInput::Stats(Cow::Owned(stats)), config }
    }

    /// A job borrowing a sufficient-statistics sketch.
    pub fn borrowed_stats(
        channel: &'a dyn DiscreteChannel,
        stats: &'a DiscreteSuffStats,
        config: DiscreteReconstructionConfig,
    ) -> Self {
        DiscreteJob { channel, input: DiscreteJobInput::Stats(Cow::Borrowed(stats)), config }
    }
}

/// Factored-channel cache state: map plus a running total of `f64`
/// entries, bounding actual footprint rather than channel count.
struct ChannelCache {
    map: HashMap<ChannelFingerprint, Arc<FactoredChannel>>,
    entries: usize,
}

/// Reusable, thread-safe discrete reconstruction engine with a
/// factored-channel cache. See the [module docs](self) for the caching
/// rules and solver semantics.
///
/// # Example
///
/// ```
/// use ppdm_core::randomize::RandomizedResponse;
/// use ppdm_core::reconstruct::{DiscreteReconstructionConfig, DiscreteReconstructionEngine};
///
/// // 10k survey answers through a 75%-truthful 4-way channel.
/// let channel = RandomizedResponse::new(4, 0.75)?;
/// let observed = vec![4_000.0, 3_000.0, 2_000.0, 1_000.0];
/// let engine = DiscreteReconstructionEngine::new();
/// let result =
///     engine.reconstruct(&channel, &observed, &DiscreteReconstructionConfig::iterative())?;
/// assert!((result.estimate.iter().sum::<f64>() - 10_000.0).abs() < 1e-6);
/// // The factored channel is cached by fingerprint: a second solve
/// // (any sample, same channel) skips the factorization.
/// assert_eq!(engine.factored_builds(), 1);
/// engine.reconstruct(&channel, &observed, &DiscreteReconstructionConfig::closed_form())?;
/// assert_eq!(engine.factored_builds(), 1);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
pub struct DiscreteReconstructionEngine {
    cache: RwLock<ChannelCache>,
    /// Soft bound on total cached `f64` entries across factorizations.
    entry_budget: usize,
    /// Total factorizations ever built (cache misses), for tests and the
    /// `discrete_inversion` bench's built-exactly-once assertion.
    builds: AtomicUsize,
    /// Lookups served from the cache (read-lock hits plus double-checked
    /// write-lock hits).
    hits: AtomicUsize,
    /// Factorizations discarded by wholesale budget flushes.
    evictions: AtomicUsize,
    /// Block geometry used when an iterative solve engages the parallel
    /// E-step.
    parallel_plan: ParallelPlan,
    /// Solves that actually engaged the block-parallel E-step (for the
    /// oversubscription assertions; mirrors
    /// [`super::ReconstructionEngine::parallel_solves`]).
    parallel_solves: AtomicUsize,
}

impl Default for DiscreteReconstructionEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DiscreteReconstructionEngine {
    /// Default cache budget in `f64` entries: 1M entries = 8 MB. A
    /// `k`-state factorization costs `3 k^2` entries (transition matrix,
    /// its transposed copy for the vectorized iterate, LU factors) —
    /// channel matrices are tiny (itemset channels are `(k+1) x (k+1)`
    /// with `k` rarely above 10), so this holds tens of thousands of
    /// channels.
    pub const DEFAULT_CACHE_ENTRY_BUDGET: usize = 1_000_000;

    /// An engine with the default cache budget.
    pub fn new() -> Self {
        Self::with_cache_entry_budget(Self::DEFAULT_CACHE_ENTRY_BUDGET)
    }

    /// An engine whose cache holds at most ~`budget` `f64` entries; the
    /// cache is flushed wholesale when an insert would exceed it. A
    /// single factorization larger than the budget is still cached — the
    /// bound is soft by at most one channel.
    pub fn with_cache_entry_budget(budget: usize) -> Self {
        DiscreteReconstructionEngine {
            cache: RwLock::new(ChannelCache { map: HashMap::new(), entries: 0 }),
            entry_budget: budget,
            builds: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            parallel_plan: ParallelPlan::default(),
            parallel_solves: AtomicUsize::new(0),
        }
    }

    /// Overrides the parallel E-step's block geometry (rows per
    /// denominator block, cells per gather block; both clamped to ≥ 1).
    /// Mirrors [`super::ReconstructionEngine::with_parallel_blocks`].
    pub fn with_parallel_blocks(mut self, row_block: usize, col_block: usize) -> Self {
        self.parallel_plan = ParallelPlan::new(row_block, col_block);
        self
    }

    /// How many iterative solves engaged the block-parallel E-step over
    /// the engine's lifetime. Mirrors
    /// [`super::ReconstructionEngine::parallel_solves`].
    pub fn parallel_solves(&self) -> usize {
        self.parallel_solves.load(Ordering::Relaxed)
    }

    /// Number of factored channels currently cached.
    pub fn cached_channels(&self) -> usize {
        self.cache.read().expect("channel cache lock poisoned").map.len()
    }

    /// Total `f64` entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.cache.read().expect("channel cache lock poisoned").entries
    }

    /// Total factorizations built over the engine's lifetime (cache
    /// misses + unfingerprinted channels). A warm workload over `d`
    /// distinct fingerprints reports exactly `d`.
    pub fn factored_builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Lifetime cache counters; see [`super::CacheStats`]. `misses`
    /// equals [`Self::factored_builds`].
    pub fn cache_stats(&self) -> super::CacheStats {
        super::CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Returns the (possibly cached) factorization for one channel.
    fn factored_for(&self, channel: &dyn DiscreteChannel) -> Result<Arc<FactoredChannel>> {
        let Some(fingerprint) = channel.fingerprint() else {
            self.builds.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(FactoredChannel::build(channel)?));
        };
        if let Some(hit) =
            self.cache.read().expect("channel cache lock poisoned").map.get(&fingerprint).cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Build under the write lock (double-checked): when a cold batch
        // fans out jobs sharing one channel, exactly one thread factors
        // it and the rest wait instead of duplicating the work.
        let mut cache = self.cache.write().expect("channel cache lock poisoned");
        if let Some(hit) = cache.map.get(&fingerprint).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(FactoredChannel::build(channel)?);
        if cache.entries + built.entries() > self.entry_budget && !cache.map.is_empty() {
            self.evictions.fetch_add(cache.map.len(), Ordering::Relaxed);
            cache.map.clear();
            cache.entries = 0;
        }
        cache.entries += built.entries();
        cache.map.insert(fingerprint, built.clone());
        Ok(built)
    }

    /// Raw closed-form inversion: solves `M x = observed_counts` against
    /// the cached factorization and returns the solution untouched
    /// (entries may be negative; callers own any clamping). This is the
    /// exact replacement for the retired per-call Gaussian eliminations.
    pub fn solve_closed_form(
        &self,
        channel: &dyn DiscreteChannel,
        observed_counts: &[f64],
    ) -> Result<Vec<f64>> {
        self.validate_counts(channel, observed_counts)?;
        if channel.is_identity() {
            return Ok(observed_counts.to_vec());
        }
        self.factored_for(channel)?.solve(observed_counts)
    }

    /// Reconstructs the original state distribution from observed-state
    /// counts.
    ///
    /// # Errors
    ///
    /// [`Error::CategoryMismatch`] on a length mismatch,
    /// [`Error::InvalidMass`] for negative/non-finite counts,
    /// [`Error::NoObservations`] when the counts sum to zero, and the
    /// factorization errors of [`FactoredChannel::build`].
    pub fn reconstruct(
        &self,
        channel: &dyn DiscreteChannel,
        observed_counts: &[f64],
        config: &DiscreteReconstructionConfig,
    ) -> Result<DiscreteReconstruction> {
        self.validate_counts(channel, observed_counts)?;
        let total: f64 = observed_counts.iter().sum();
        if total <= 0.0 {
            return Err(Error::NoObservations);
        }
        // Truthful reporting: the observed counts are the originals.
        if channel.is_identity() {
            return Ok(DiscreteReconstruction {
                estimate: observed_counts.to_vec(),
                iterations: 0,
                converged: true,
            });
        }
        let factored = self.factored_for(channel)?;
        match config.solver {
            DiscreteSolver::ClosedForm => Ok(DiscreteReconstruction {
                estimate: factored.solve(observed_counts)?,
                iterations: 0,
                converged: true,
            }),
            DiscreteSolver::Iterative => {
                let plan = self.engaged_plan_for(config, factored.states());
                run_discrete_iterate(&factored, observed_counts, total, config, None, plan)
            }
        }
    }

    /// Reconstructs from a [`DiscreteSuffStats`] sketch, optionally
    /// warm-starting the iterative solver from a previous posterior
    /// (`initial`: normalized per-state probabilities; floored away from
    /// zero before use, mirroring the numeric streaming path).
    ///
    /// # Errors
    ///
    /// [`Error::NoObservations`] on an empty sketch;
    /// [`Error::ShardMismatch`] when `channel` does not match the
    /// sketch's fingerprint; [`Error::InvalidMass`] for a malformed
    /// `initial` vector.
    pub fn reconstruct_stats(
        &self,
        channel: &dyn DiscreteChannel,
        stats: &DiscreteSuffStats,
        config: &DiscreteReconstructionConfig,
        initial: Option<&[f64]>,
    ) -> Result<DiscreteReconstruction> {
        if stats.is_empty() {
            return Err(Error::NoObservations);
        }
        if channel.fingerprint() != Some(stats.fingerprint()) {
            return Err(Error::ShardMismatch(format!(
                "channel fingerprint {:?} does not match the sketch's {:?}",
                channel.fingerprint(),
                stats.fingerprint()
            )));
        }
        let counts = stats.counts_f64();
        if channel.is_identity() {
            return Ok(DiscreteReconstruction { estimate: counts, iterations: 0, converged: true });
        }
        let factored = self.factored_for(channel)?;
        match config.solver {
            DiscreteSolver::ClosedForm => Ok(DiscreteReconstruction {
                estimate: factored.solve(&counts)?,
                iterations: 0,
                converged: true,
            }),
            DiscreteSolver::Iterative => {
                let warm = initial.map(|probs| floored_prior(probs, stats.states())).transpose()?;
                let plan = self.engaged_plan_for(config, factored.states());
                run_discrete_iterate(
                    &factored,
                    &counts,
                    stats.count() as f64,
                    config,
                    warm.as_deref(),
                    plan,
                )
            }
        }
    }

    /// Runs a batch of independent problems across worker threads,
    /// returning results in job order. Jobs sharing a fingerprint share
    /// one cached factorization.
    pub fn reconstruct_many(
        &self,
        jobs: &[DiscreteJob<'_>],
    ) -> Vec<Result<DiscreteReconstruction>> {
        jobs.par_iter()
            .map(|job| match &job.input {
                DiscreteJobInput::Counts(counts) => {
                    self.reconstruct(job.channel, counts, &job.config)
                }
                DiscreteJobInput::Stats(stats) => {
                    self.reconstruct_stats(job.channel, stats, &job.config, None)
                }
            })
            .collect()
    }

    /// Resolves the effective parallel plan for one iterative solve (the
    /// discrete E-step is a `k x k` problem: `k` rows of `k` cells) and
    /// bumps the engagement counter when it is live.
    fn engaged_plan_for(
        &self,
        config: &DiscreteReconstructionConfig,
        k: usize,
    ) -> Option<ParallelPlan> {
        let plan = engaged_plan(config.parallel, k, k, self.parallel_plan);
        if plan.is_some() {
            self.parallel_solves.fetch_add(1, Ordering::Relaxed);
        }
        plan
    }

    fn validate_counts(&self, channel: &dyn DiscreteChannel, counts: &[f64]) -> Result<()> {
        if counts.len() != channel.states() {
            return Err(Error::CategoryMismatch {
                expected: channel.states(),
                found: counts.len(),
            });
        }
        if let Some(bad) = counts.iter().find(|c| !c.is_finite() || **c < 0.0) {
            return Err(Error::InvalidMass(format!(
                "observed counts must be finite and >= 0, got {bad}"
            )));
        }
        Ok(())
    }
}

/// The discrete Bayes/EM iterate: the shared vectorized core
/// ([`super::iterate`]) over the channel's transition matrix. Identical
/// skeleton (zero-denominator skip, stall breakout, stopping machinery,
/// warm starts) to the continuous engine — both engines call the same
/// `run_iterate_core`. Zero-weight observed states contribute exactly
/// nothing, matching the retired loop's explicit skip.
fn run_discrete_iterate(
    factored: &FactoredChannel,
    observed_counts: &[f64],
    n: f64,
    config: &DiscreteReconstructionConfig,
    initial: Option<&[f64]>,
    plan: Option<ParallelPlan>,
) -> Result<DiscreteReconstruction> {
    let k = factored.states();
    // The column-major transition copy was built once at factorization
    // time (cached by fingerprint), so warm solves borrow it outright.
    let matrix = ColumnMatrix::new(Cow::Borrowed(&factored.transposed), k, k);
    let mut estep = TransposedEStep::with_plan(matrix, Cow::Borrowed(observed_counts), plan);
    let out = run_iterate_core(&mut estep, k, n, &config.stopping, config.max_iterations, initial);
    let estimate: Vec<f64> = out.probs.iter().map(|p| p * n).collect();
    Ok(DiscreteReconstruction { estimate, iterations: out.iterations, converged: out.converged })
}

/// The process-wide engine behind engine-routed categorical inversions
/// ([`crate::randomize::RandomizedResponse::reconstruct`], `ppdm-assoc`
/// support estimation): serial callers share cached factorizations too.
pub fn shared_discrete_engine() -> &'static DiscreteReconstructionEngine {
    static SHARED: OnceLock<DiscreteReconstructionEngine> = OnceLock::new();
    SHARED.get_or_init(DiscreteReconstructionEngine::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomize::{RandomizedResponse, StochasticMatrix};

    fn rr(k: usize, p: f64) -> RandomizedResponse {
        RandomizedResponse::new(k, p).unwrap()
    }

    /// The legacy augmented-matrix Gaussian elimination (verbatim
    /// semantics of the retired `ppdm-assoc` solver), for bit-for-bit
    /// comparison against the LU path.
    fn legacy_solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let n = b.len();
        let mut m: Vec<Vec<f64>> = a
            .iter()
            .zip(b)
            .map(|(row, rhs)| {
                let mut r = row.clone();
                r.push(*rhs);
                r
            })
            .collect();
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&x, &y| m[x][col].abs().partial_cmp(&m[y][col].abs()).unwrap())
                .unwrap();
            assert!(m[pivot_row][col].abs() >= 1e-12, "singular test matrix");
            m.swap(col, pivot_row);
            for row in col + 1..n {
                let factor = m[row][col] / m[col][col];
                if factor == 0.0 {
                    continue;
                }
                let (pivot_slice, rest) = m.split_at_mut(col + 1);
                let pivot = &pivot_slice[col];
                let target = &mut rest[row - col - 1];
                for k in col..=n {
                    target[k] -= factor * pivot[k];
                }
            }
        }
        let mut x = vec![0.0f64; n];
        for row in (0..n).rev() {
            let mut acc = m[row][n];
            for col in row + 1..n {
                acc -= m[row][col] * x[col];
            }
            x[row] = acc / m[row][row];
        }
        x
    }

    #[test]
    fn lu_solve_is_bit_identical_to_legacy_elimination() {
        let channel = StochasticMatrix::new(
            4,
            vec![
                0.58, 0.11, 0.07, 0.21, //
                0.12, 0.62, 0.13, 0.09, //
                0.09, 0.14, 0.66, 0.12, //
                0.21, 0.13, 0.14, 0.58,
            ],
        )
        .unwrap();
        let factored = FactoredChannel::build(&channel).unwrap();
        let rows: Vec<Vec<f64>> =
            (0..4).map(|o| (0..4).map(|t| channel.transition(o, t)).collect()).collect();
        for rhs in
            [vec![100.0, 250.0, 40.0, 610.0], vec![1.0, 0.0, 0.0, 0.0], vec![3.25, 7.5, 2.125, 9.0]]
        {
            let lu = factored.solve(&rhs).unwrap();
            let legacy = legacy_solve(&rows, &rhs);
            assert_eq!(lu, legacy, "rhs {rhs:?}");
        }
    }

    #[test]
    fn factored_channel_rejects_singular_and_tiny() {
        // Columns sum to 1 but the matrix is rank-1.
        let singular = StochasticMatrix::new(2, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        assert!(matches!(FactoredChannel::build(&singular), Err(Error::InvalidMass(_))));
    }

    #[test]
    fn closed_form_inverts_exactly_on_exact_counts() {
        // Feed counts that are exactly M * truth: the solve must return
        // the truth to floating-point accuracy.
        let channel = rr(3, 0.6);
        let truth = [600.0, 250.0, 150.0];
        let mut observed = [0.0f64; 3];
        for (o, obs) in observed.iter_mut().enumerate() {
            for (t, &tr) in truth.iter().enumerate() {
                *obs += channel.transition(o, t) * tr;
            }
        }
        let engine = DiscreteReconstructionEngine::new();
        let r = engine
            .reconstruct(&channel, &observed, &DiscreteReconstructionConfig::closed_form())
            .unwrap();
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
        for (e, t) in r.estimate.iter().zip(&truth) {
            assert!((e - t).abs() < 1e-9, "estimate {e} vs truth {t}");
        }
    }

    #[test]
    fn iterative_recovers_distribution_and_normalizes() {
        let channel = rr(4, 0.5);
        let truth = [4_000.0, 3_000.0, 2_000.0, 1_000.0];
        let mut observed = [0.0f64; 4];
        for (o, obs) in observed.iter_mut().enumerate() {
            for (t, &tr) in truth.iter().enumerate() {
                *obs += channel.transition(o, t) * tr;
            }
        }
        let engine = DiscreteReconstructionEngine::new();
        let r = engine
            .reconstruct(&channel, &observed, &DiscreteReconstructionConfig::iterative())
            .unwrap();
        assert!(r.iterations >= 1);
        assert!((r.estimate.iter().sum::<f64>() - 10_000.0).abs() < 1e-6);
        for (e, t) in r.estimate.iter().zip(&truth) {
            assert!((e - t).abs() < 50.0, "estimate {e} vs truth {t}");
        }
        // Observed counts are much flatter than the recovered estimate.
        let raw_err: f64 = observed.iter().zip(&truth).map(|(o, t)| (o - t).abs()).sum();
        let est_err: f64 = r.estimate.iter().zip(&truth).map(|(e, t)| (e - t).abs()).sum();
        assert!(est_err < raw_err / 5.0, "est_err {est_err} raw_err {raw_err}");
    }

    #[test]
    fn identity_channel_short_circuits() {
        let channel = rr(3, 1.0);
        let engine = DiscreteReconstructionEngine::new();
        for config in
            [DiscreteReconstructionConfig::closed_form(), DiscreteReconstructionConfig::iterative()]
        {
            let r = engine.reconstruct(&channel, &[5.0, 2.0, 3.0], &config).unwrap();
            assert_eq!(r.estimate, vec![5.0, 2.0, 3.0]);
            assert_eq!(r.iterations, 0);
        }
        assert_eq!(engine.factored_builds(), 0, "identity never factors");
    }

    #[test]
    fn engine_validates_inputs() {
        let channel = rr(3, 0.5);
        let engine = DiscreteReconstructionEngine::new();
        let cfg = DiscreteReconstructionConfig::default();
        assert!(matches!(
            engine.reconstruct(&channel, &[1.0, 2.0], &cfg),
            Err(Error::CategoryMismatch { expected: 3, found: 2 })
        ));
        assert!(engine.reconstruct(&channel, &[1.0, -1.0, 0.0], &cfg).is_err());
        assert!(engine.reconstruct(&channel, &[1.0, f64::NAN, 0.0], &cfg).is_err());
        assert_eq!(
            engine.reconstruct(&channel, &[0.0, 0.0, 0.0], &cfg).unwrap_err(),
            Error::NoObservations
        );
    }

    #[test]
    fn factorizations_are_cached_by_fingerprint() {
        let engine = DiscreteReconstructionEngine::new();
        let a = rr(3, 0.5);
        let b = rr(3, 0.7); // different keep_prob -> different fingerprint
        let c = rr(4, 0.5); // different state count
        let cfg = DiscreteReconstructionConfig::closed_form();
        for _ in 0..3 {
            engine.reconstruct(&a, &[1.0, 2.0, 3.0], &cfg).unwrap();
        }
        assert_eq!(engine.factored_builds(), 1);
        assert_eq!(engine.cached_channels(), 1);
        engine.reconstruct(&b, &[1.0, 2.0, 3.0], &cfg).unwrap();
        engine.reconstruct(&c, &[1.0, 2.0, 3.0, 4.0], &cfg).unwrap();
        assert_eq!(engine.factored_builds(), 3);
        assert_eq!(engine.cached_channels(), 3);
        // Warm repeats build nothing new.
        engine.reconstruct(&b, &[4.0, 4.0, 4.0], &cfg).unwrap();
        assert_eq!(engine.factored_builds(), 3);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3, "two warm `a` repeats plus one warm `b` repeat");
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn cache_budget_flushes_but_stays_correct() {
        // Budget of 60 entries: a 4-state factorization is 48 entries, a
        // 5-state one is 75 — inserting both must flush in between, and
        // results must be unaffected.
        let engine = DiscreteReconstructionEngine::with_cache_entry_budget(60);
        let cfg = DiscreteReconstructionConfig::closed_form();
        let reference = DiscreteReconstructionEngine::new();
        for k in [4usize, 5, 4, 5] {
            let channel = rr(k, 0.6);
            let counts: Vec<f64> = (0..k).map(|i| (i + 1) as f64 * 10.0).collect();
            let budgeted = engine.reconstruct(&channel, &counts, &cfg).unwrap();
            let unbudgeted = reference.reconstruct(&channel, &counts, &cfg).unwrap();
            assert_eq!(budgeted, unbudgeted, "k {k}");
            assert!(engine.cached_entries() <= 60 || engine.cached_channels() == 1);
        }
        assert!(engine.factored_builds() > 2, "budget never forced a rebuild");
        assert!(engine.cache_stats().evictions > 0, "flushes must be observable as evictions");
    }

    #[test]
    fn unfingerprinted_channels_are_rebuilt_per_call() {
        struct Anon;
        impl DiscreteChannel for Anon {
            fn states(&self) -> usize {
                2
            }
            fn transition(&self, observed: usize, truth: usize) -> f64 {
                if observed == truth {
                    0.8
                } else {
                    0.2
                }
            }
        }
        let engine = DiscreteReconstructionEngine::new();
        let cfg = DiscreteReconstructionConfig::closed_form();
        engine.reconstruct(&Anon, &[3.0, 7.0], &cfg).unwrap();
        engine.reconstruct(&Anon, &[3.0, 7.0], &cfg).unwrap();
        assert_eq!(engine.cached_channels(), 0);
        assert_eq!(engine.factored_builds(), 2);
    }

    #[test]
    fn suff_stats_ingest_merge_and_mismatch() {
        let channel = rr(3, 0.5);
        let mut stats = DiscreteSuffStats::new(&channel).unwrap();
        assert!(stats.is_empty());
        stats.ingest(&[0, 1, 1, 2]).unwrap();
        assert_eq!(stats.counts(), &[1, 2, 1]);
        assert_eq!(stats.count(), 4);
        // Bad batch leaves the sketch untouched.
        assert!(matches!(
            stats.ingest(&[1, 5]),
            Err(Error::StateOutOfRange { state: 5, states: 3 })
        ));
        assert_eq!(stats.count(), 4);

        let other = DiscreteSuffStats::from_states(&channel, &[2, 2]).unwrap();
        let merged = stats.merge(&other).unwrap();
        assert_eq!(merged.counts(), &[1, 2, 3]);
        assert_eq!(merged.count(), 6);

        let mismatched = DiscreteSuffStats::new(&rr(3, 0.7)).unwrap();
        assert!(matches!(stats.merge(&mismatched), Err(Error::ShardMismatch(_))));
    }

    #[test]
    fn stats_solve_matches_counts_solve_bit_for_bit() {
        let channel = rr(4, 0.6);
        let observed_states: Vec<usize> = (0..5_000).map(|i| (i * 7 + i / 13) % 4).collect();
        let stats = DiscreteSuffStats::from_states(&channel, &observed_states).unwrap();
        let engine = DiscreteReconstructionEngine::new();
        for config in
            [DiscreteReconstructionConfig::closed_form(), DiscreteReconstructionConfig::iterative()]
        {
            let via_stats = engine.reconstruct_stats(&channel, &stats, &config, None).unwrap();
            let via_counts = engine.reconstruct(&channel, &stats.counts_f64(), &config).unwrap();
            assert_eq!(via_stats, via_counts);
        }
    }

    #[test]
    fn stats_solve_rejects_wrong_channel_and_empty() {
        let channel = rr(3, 0.5);
        let stats = DiscreteSuffStats::from_states(&channel, &[0, 1]).unwrap();
        let engine = DiscreteReconstructionEngine::new();
        let cfg = DiscreteReconstructionConfig::default();
        assert!(matches!(
            engine.reconstruct_stats(&rr(3, 0.9), &stats, &cfg, None),
            Err(Error::ShardMismatch(_))
        ));
        let empty = DiscreteSuffStats::new(&channel).unwrap();
        assert_eq!(
            engine.reconstruct_stats(&channel, &empty, &cfg, None).unwrap_err(),
            Error::NoObservations
        );
    }

    #[test]
    fn warm_start_converges_no_slower_and_agrees() {
        let channel = rr(5, 0.4);
        let base: Vec<usize> = (0..40_000).map(|i| (i * 31) % 5).collect();
        let mut stats = DiscreteSuffStats::from_states(&channel, &base).unwrap();
        let engine = DiscreteReconstructionEngine::new();
        let cfg = DiscreteReconstructionConfig::iterative();
        let cold = engine.reconstruct_stats(&channel, &stats, &cfg, None).unwrap();
        let total: f64 = cold.estimate.iter().sum();
        let posterior: Vec<f64> = cold.estimate.iter().map(|e| e / total).collect();
        // Small append, then a warm re-solve from the previous posterior.
        stats.ingest(&[0, 0, 1, 2, 3, 4]).unwrap();
        let warm = engine.reconstruct_stats(&channel, &stats, &cfg, Some(&posterior)).unwrap();
        let re_cold = engine.reconstruct_stats(&channel, &stats, &cfg, None).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= re_cold.iterations,
            "warm ({}) should not exceed cold ({})",
            warm.iterations,
            re_cold.iterations
        );
        let n: f64 = stats.count() as f64;
        let l1: f64 =
            warm.estimate.iter().zip(&re_cold.estimate).map(|(a, b)| (a - b).abs() / n).sum();
        assert!(l1 < 0.01, "warm vs cold l1 {l1}");
    }

    #[test]
    fn reconstruct_many_preserves_job_order_and_errors() {
        let engine = DiscreteReconstructionEngine::new();
        let a = rr(3, 0.5);
        let b = rr(4, 0.8);
        let stats = DiscreteSuffStats::from_states(&b, &[0, 1, 2, 3, 3]).unwrap();
        let cfg = DiscreteReconstructionConfig::closed_form();
        let good = vec![10.0, 20.0, 30.0];
        let jobs = vec![
            DiscreteJob::borrowed(&a, &good, cfg),
            DiscreteJob::owned(&a, vec![0.0, 0.0, 0.0], cfg),
            DiscreteJob::borrowed_stats(&b, &stats, cfg),
        ];
        let results = engine.reconstruct_many(&jobs);
        assert_eq!(results.len(), 3);
        let serial = engine.reconstruct(&a, &good, &cfg).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &serial);
        assert_eq!(results[1].as_ref().unwrap_err(), &Error::NoObservations);
        assert_eq!(results[2].as_ref().unwrap().estimate.len(), 4);
    }

    #[test]
    fn batched_equals_serial() {
        let engine = DiscreteReconstructionEngine::new();
        let channel = rr(4, 0.6);
        let cfg = DiscreteReconstructionConfig::iterative();
        let samples: Vec<Vec<f64>> =
            (0..6).map(|i| (0..4).map(|s| ((i * 13 + s * 7) % 40 + 5) as f64).collect()).collect();
        let jobs: Vec<DiscreteJob<'_>> =
            samples.iter().map(|c| DiscreteJob::borrowed(&channel, c, cfg)).collect();
        let batched = engine.reconstruct_many(&jobs);
        for (counts, batched) in samples.iter().zip(batched) {
            let serial = engine.reconstruct(&channel, counts, &cfg).unwrap();
            assert_eq!(serial, batched.unwrap());
        }
    }
}
