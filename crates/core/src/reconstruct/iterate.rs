//! The shared Bayes/EM iterate core.
//!
//! Every reconstruction in this crate — the continuous engine's bucketed,
//! dense-Exact, streamed-Exact, and sufficient-statistics paths, and the
//! discrete engine's `Iterative` solver — bottoms out in the same
//! fixed-point update:
//!
//! ```text
//! probs'[p] ∝ probs[p] * Σ_i  L[i][p] * w_i / (Σ_r L[i][r] * probs[r])
//! ```
//!
//! Before this module existed the loop lived in two hand-rolled copies
//! (`run_iterate` in `engine.rs`, `run_discrete_iterate` in
//! `discrete.rs`), each with its own scratch zeroing, zero-denominator
//! skip, stall breakout, and stopping plumbing. [`run_iterate_core`] is
//! the single implementation of that skeleton; what varies per path is
//! only *how the E-step evidence is accumulated*, abstracted as an
//! [`EStep`].
//!
//! # The two E-step shapes
//!
//! * [`TransposedEStep`] — the vectorized production path. Works on a
//!   column-major ([`ColumnMatrix`]) active likelihood matrix so each
//!   iteration is a blocked dense `K·p` (per-4-column [`simd::axpy4`]
//!   sweeps over the denominator vector) followed by a fused weighted
//!   `Kᵀ·(w/denom)` gather (one lane-blocked [`simd::dot`] per column),
//!   instead of per-row strided traversals. Used by every kernel-matrix
//!   and counts-backed solve, continuous and discrete.
//! * Row-wise E-steps (the continuous engine's Exact mode, where rows are
//!   per-observation and possibly streamed) implement [`EStep`] directly
//!   over row slices with [`simd::dot`] + [`simd::axpy`].
//!
//! # Numerics
//!
//! Lane-blocked summation changes accumulation order relative to the
//! scalar reference (`reconstruct_reference`, the retired discrete loop),
//! so engine results are no longer bit-identical to it — the equivalence
//! suites bound the divergence at ≤ 1e-10 instead, and the scalar
//! reference is kept byte-for-byte untouched as the oracle. Results stay
//! fully deterministic (fixed lane width [`simd::LANES`], fixed
//! accumulation order, no threading inside a solve), so golden fixtures
//! remain byte-reproducible run to run and across machines.
//!
//! The observed-data log-likelihood falls out of the per-row denominators
//! for free *except* for the `ln` call per row, which measurably taxes
//! the iterate (~20% per iteration at paper scale). It is therefore only
//! accumulated when the configured [`StoppingRule`] actually consumes it
//! ([`StoppingRule::needs_log_likelihood`]); rules that ignore it see
//! `NaN` placeholders, which they never read.

use std::borrow::Cow;

use crate::simd;

use super::stopping::StoppingRule;

/// Unconditional stall breakout threshold: once the L1 distance between
/// successive probability vectors drops below this, the step is at
/// floating-point noise level and no stopping rule can learn anything
/// from running on. The value predates this module (both retired loop
/// copies used it) and is part of the iterate's observable behavior:
/// well below any meaningful stopping tolerance (default log-likelihood
/// `rel_tolerance` is 1e-8), well above f64 round-off for the ≤ ~100-cell
/// probability vectors the iterate runs over.
pub(crate) const STALL_L1_THRESHOLD: f64 = 1e-12;

/// Outcome of the shared iterate: the final (normalized) probability
/// vector plus the bookkeeping both engines report.
pub(crate) struct IterateOutcome {
    pub probs: Vec<f64>,
    pub iterations: usize,
    pub converged: bool,
}

/// One E-step strategy: turns the current estimate into the unnormalized
/// next estimate.
pub(crate) trait EStep {
    /// Fills `next` (pre-zeroed, length `m`) with the unnormalized
    /// updated cell masses for the current `probs`, applying the
    /// zero-denominator skip. Returns `(used_weight, log_likelihood)`;
    /// when `need_ll` is `false` the log-likelihood is not accumulated
    /// and `NaN` is returned in its place.
    fn accumulate(&mut self, probs: &[f64], next: &mut [f64], need_ll: bool) -> (f64, f64);
}

/// A column-major `rows × cells` active likelihood matrix: column `p`
/// holds the likelihood of every active observation row given cell `p`,
/// contiguously. Borrowed directly from a transposed kernel when every
/// observation bucket is active, or gathered into a compact owned buffer
/// otherwise.
pub(crate) struct ColumnMatrix<'a> {
    values: Cow<'a, [f64]>,
    rows: usize,
    cells: usize,
}

impl<'a> ColumnMatrix<'a> {
    pub(crate) fn new(values: Cow<'a, [f64]>, rows: usize, cells: usize) -> Self {
        debug_assert_eq!(values.len(), rows * cells);
        ColumnMatrix { values, rows, cells }
    }

    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    pub(crate) fn cells(&self) -> usize {
        self.cells
    }

    /// Likelihood column of cell `p` over the active rows.
    #[inline]
    pub(crate) fn col(&self, p: usize) -> &[f64] {
        &self.values[p * self.rows..(p + 1) * self.rows]
    }
}

/// The vectorized transposed E-step (see the module docs).
pub(crate) struct TransposedEStep<'a> {
    matrix: ColumnMatrix<'a>,
    /// Per-row observation weights (bucket masses / state counts).
    weights: Cow<'a, [f64]>,
    /// Scratch: per-row denominators `K·p` of the current estimate.
    denom: Vec<f64>,
    /// Scratch: per-row update coefficients `w / denom` (0 for skipped rows).
    coeff: Vec<f64>,
}

impl<'a> TransposedEStep<'a> {
    pub(crate) fn new(matrix: ColumnMatrix<'a>, weights: Cow<'a, [f64]>) -> Self {
        let rows = matrix.rows();
        debug_assert_eq!(weights.len(), rows);
        TransposedEStep { matrix, weights, denom: vec![0.0; rows], coeff: vec![0.0; rows] }
    }
}

impl EStep for TransposedEStep<'_> {
    fn accumulate(&mut self, probs: &[f64], next: &mut [f64], need_ll: bool) -> (f64, f64) {
        let m = self.matrix.cells();
        debug_assert_eq!(probs.len(), m);
        debug_assert_eq!(next.len(), m);

        // Denominators: the blocked dense K·p. axpy4 is bit-identical to
        // four sequential axpys, so the 4-column blocking plus scalar
        // tail is one well-defined accumulation order.
        self.denom.fill(0.0);
        let mut p = 0;
        while p + 4 <= m {
            simd::axpy4(
                [probs[p], probs[p + 1], probs[p + 2], probs[p + 3]],
                [
                    self.matrix.col(p),
                    self.matrix.col(p + 1),
                    self.matrix.col(p + 2),
                    self.matrix.col(p + 3),
                ],
                &mut self.denom,
            );
            p += 4;
        }
        while p < m {
            simd::axpy(probs[p], self.matrix.col(p), &mut self.denom);
            p += 1;
        }

        // Update coefficients, used weight, and (optionally) the free
        // log-likelihood. A row whose denominator underflows carries no
        // usable evidence this round (possible with bounded noise
        // once cells hit zero) and is skipped via a zero coefficient; a
        // zero-weight row contributes exactly nothing the same way.
        let mut used_weight = 0.0;
        let mut log_likelihood = if need_ll { 0.0 } else { f64::NAN };
        for ((c, &d), &w) in self.coeff.iter_mut().zip(&self.denom).zip(self.weights.as_ref()) {
            if d <= f64::MIN_POSITIVE {
                *c = 0.0;
                continue;
            }
            used_weight += w;
            if need_ll {
                log_likelihood += w * d.ln();
            }
            *c = w / d;
        }

        // Fused weighted scatter: next[p] = probs[p] * (Kᵀ·coeff)[p],
        // one lane-blocked dot per contiguous column.
        for (p, slot) in next.iter_mut().enumerate() {
            *slot = probs[p] * simd::dot(self.matrix.col(p), &self.coeff);
        }
        (used_weight, log_likelihood)
    }
}

/// The shared iterate skeleton: initialization (uniform or warm start),
/// E-step, normalization, stopping-rule evaluation, and the stall
/// breakout — in one place for every engine path.
///
/// `initial` must be a normalized length-`m` vector when present
/// (callers floor and renormalize warm starts first); `n` is the
/// observation count the stopping rules scale by.
pub(crate) fn run_iterate_core<E: EStep>(
    estep: &mut E,
    m: usize,
    n: f64,
    stopping: &StoppingRule,
    max_iterations: usize,
    initial: Option<&[f64]>,
) -> IterateOutcome {
    let mut probs = match initial {
        Some(prior) => prior.to_vec(),
        None => vec![1.0 / m as f64; m],
    };
    let mut next = vec![0.0f64; m];
    let mut iterations = 0;
    let mut converged = false;
    let need_ll = stopping.needs_log_likelihood();
    let mut prev_log_likelihood = f64::NEG_INFINITY;

    while iterations < max_iterations {
        iterations += 1;
        next.fill(0.0);
        let (used_weight, log_likelihood) = estep.accumulate(&probs, &mut next, need_ll);
        if used_weight <= 0.0 {
            // Every observation became incompatible: keep the last
            // estimate and report non-convergence.
            break;
        }
        let total: f64 = next.iter().sum();
        debug_assert!(total > 0.0);
        for x in &mut next {
            *x /= total;
        }
        let stop = stopping.should_stop(&probs, &next, n, prev_log_likelihood, log_likelihood);
        prev_log_likelihood = log_likelihood;
        // Unconditional stall breakout (see STALL_L1_THRESHOLD).
        let stalled =
            probs.iter().zip(&next).map(|(o, w)| (w - o).abs()).sum::<f64>() < STALL_L1_THRESHOLD;
        std::mem::swap(&mut probs, &mut next);
        if stop || stalled {
            converged = true;
            break;
        }
    }

    IterateOutcome { probs, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scalar E-step mirroring the retired loop shape, for exercising
    /// the skeleton against hand-computable cases.
    struct ScalarEStep {
        rows: Vec<Vec<f64>>,
        weights: Vec<f64>,
    }

    impl EStep for ScalarEStep {
        fn accumulate(&mut self, probs: &[f64], next: &mut [f64], need_ll: bool) -> (f64, f64) {
            let mut used = 0.0;
            let mut ll = if need_ll { 0.0 } else { f64::NAN };
            for (row, &w) in self.rows.iter().zip(&self.weights) {
                let denom: f64 = row.iter().zip(probs).map(|(l, p)| l * p).sum();
                if denom <= f64::MIN_POSITIVE {
                    continue;
                }
                used += w;
                if need_ll {
                    ll += w * denom.ln();
                }
                let inv = w / denom;
                for (s, (l, p)) in next.iter_mut().zip(row.iter().zip(probs)) {
                    *s += l * p * inv;
                }
            }
            (used, ll)
        }
    }

    #[test]
    fn transposed_estep_matches_scalar_estep_closely() {
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|i| (0..6).map(|p| 0.01 + ((i * 7 + p * 3) % 11) as f64 / 10.0).collect())
            .collect();
        let weights: Vec<f64> = (0..13).map(|i| ((i * 5) % 9) as f64).collect();
        let mut cols = vec![0.0f64; 13 * 6];
        for (i, row) in rows.iter().enumerate() {
            for (p, &v) in row.iter().enumerate() {
                cols[p * 13 + i] = v;
            }
        }
        let mut scalar = ScalarEStep { rows, weights: weights.clone() };
        let mut vectorized =
            TransposedEStep::new(ColumnMatrix::new(Cow::Owned(cols), 13, 6), Cow::Owned(weights));
        let probs = vec![1.0 / 6.0; 6];
        let mut next_s = vec![0.0; 6];
        let mut next_v = vec![0.0; 6];
        let (used_s, ll_s) = scalar.accumulate(&probs, &mut next_s, true);
        let (used_v, ll_v) = vectorized.accumulate(&probs, &mut next_v, true);
        assert_eq!(used_s, used_v, "used weight is a plain ordered sum on both sides");
        assert!((ll_s - ll_v).abs() < 1e-9 * ll_s.abs());
        for (s, v) in next_s.iter().zip(&next_v) {
            assert!((s - v).abs() <= 1e-12 * s.abs().max(1e-300), "scalar {s} vs vectorized {v}");
        }
    }

    #[test]
    fn skeleton_converges_on_identity_likelihood() {
        // Identity likelihood rows: the fixed point is the weight
        // distribution itself.
        let m = 4;
        let rows: Vec<Vec<f64>> =
            (0..m).map(|i| (0..m).map(|p| if p == i { 1.0 } else { 0.0 }).collect()).collect();
        let weights = vec![10.0, 20.0, 30.0, 40.0];
        let mut estep = ScalarEStep { rows, weights };
        let out = run_iterate_core(
            &mut estep,
            m,
            100.0,
            &StoppingRule::L1 { tolerance: 1e-13 },
            5_000,
            None,
        );
        assert!(out.converged);
        for (p, expect) in out.probs.iter().zip([0.1, 0.2, 0.3, 0.4]) {
            assert!((p - expect).abs() < 1e-9, "prob {p} vs {expect}");
        }
    }

    #[test]
    fn skeleton_breaks_out_when_all_rows_become_incompatible() {
        // Zero likelihood everywhere: used_weight stays 0, the loop exits
        // after one iteration, the estimate stays at the start point.
        let mut estep = ScalarEStep { rows: vec![vec![0.0, 0.0]; 3], weights: vec![1.0, 1.0, 1.0] };
        let out = run_iterate_core(&mut estep, 2, 3.0, &StoppingRule::MaxIterationsOnly, 50, None);
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
        assert_eq!(out.probs, vec![0.5, 0.5]);
    }

    #[test]
    fn warm_start_is_used_as_initial_estimate() {
        let mut estep = ScalarEStep { rows: vec![vec![0.0, 0.0]; 1], weights: vec![1.0] };
        // With an all-incompatible E-step the initial estimate survives
        // untouched, proving the warm start was installed.
        let warm = vec![0.9, 0.1];
        let out =
            run_iterate_core(&mut estep, 2, 1.0, &StoppingRule::MaxIterationsOnly, 10, Some(&warm));
        assert_eq!(out.probs, warm);
    }
}
