//! The shared Bayes/EM iterate core.
//!
//! Every reconstruction in this crate — the continuous engine's bucketed,
//! dense-Exact, streamed-Exact, and sufficient-statistics paths, and the
//! discrete engine's `Iterative` solver — bottoms out in the same
//! fixed-point update:
//!
//! ```text
//! probs'[p] ∝ probs[p] * Σ_i  L[i][p] * w_i / (Σ_r L[i][r] * probs[r])
//! ```
//!
//! Before this module existed the loop lived in two hand-rolled copies
//! (`run_iterate` in `engine.rs`, `run_discrete_iterate` in
//! `discrete.rs`), each with its own scratch zeroing, zero-denominator
//! skip, stall breakout, and stopping plumbing. [`run_iterate_core`] is
//! the single implementation of that skeleton; what varies per path is
//! only *how the E-step evidence is accumulated*, abstracted as an
//! [`EStep`].
//!
//! # The two E-step shapes
//!
//! * [`TransposedEStep`] — the vectorized production path. Works on a
//!   column-major ([`ColumnMatrix`]) active likelihood matrix so each
//!   iteration is a blocked dense `K·p` (per-4-column [`simd::axpy4`]
//!   sweeps over the denominator vector) followed by a fused weighted
//!   `Kᵀ·(w/denom)` gather (one lane-blocked [`simd::dot`] per column),
//!   instead of per-row strided traversals. Used by every kernel-matrix
//!   and counts-backed solve, continuous and discrete.
//! * Row-wise E-steps (the continuous engine's Exact mode, where rows are
//!   per-observation and possibly streamed) implement [`EStep`] directly
//!   over row slices with [`simd::dot`] + [`simd::axpy`].
//!
//! # Numerics
//!
//! Lane-blocked summation changes accumulation order relative to the
//! scalar reference (`reconstruct_reference`, the retired discrete loop),
//! so engine results are no longer bit-identical to it — the equivalence
//! suites bound the divergence at ≤ 1e-10 instead, and the scalar
//! reference is kept byte-for-byte untouched as the oracle. Results stay
//! fully deterministic (fixed lane width [`simd::LANES`], fixed
//! accumulation order), so golden fixtures remain byte-reproducible run
//! to run and across machines.
//!
//! # Block-parallel E-steps
//!
//! A solve may additionally fan its E-step across worker threads (see
//! [`super::ParallelPolicy`]) without perturbing a single bit of the
//! result. The decomposition is chosen so that **no floating-point
//! reduction ever depends on the thread count**:
//!
//! * Work is partitioned into fixed-size blocks ([`ParallelPlan`]) whose
//!   count is a pure function of the problem geometry (`rows`, `cells`)
//!   — never of how many threads happen to execute them.
//! * The heavy phases are *element-disjoint*: the denominator sweep
//!   partitions by **rows** (each block replays the identical
//!   [`simd::axpy4`] column sweep on its contiguous row range — the
//!   per-element operations and their order are exactly the serial
//!   ones), and the transposed `next` gather partitions by **columns**
//!   (each cell's [`simd::dot`] is computed whole, in one block, exactly
//!   as the serial path computes it; the column-major layout keeps
//!   every block's reads contiguous). Disjoint elements need no combine
//!   at all; their "reduction tree" is concatenation, which is
//!   trivially shape-fixed. The Exact dense E-step (row-major
//!   per-observation rows, in `engine.rs`) parallelizes its row
//!   partition only — denominators, coefficients, and `ln` terms — and
//!   keeps the gather as the serial `axpy` sweep: its `next` vector
//!   accumulates across all rows in one flat chain, so a row partition
//!   would need a cross-block reduction (not bit-identical) and a
//!   column partition strides the row-major matrix against the grain.
//! * The only true reductions — `used_weight` and the log-likelihood —
//!   are combined in a fixed left-to-right chain over per-row terms in
//!   row order: the *same* chain the serial loop runs, so the sums are
//!   bit-identical to serial, not merely deterministic. (A balanced
//!   pairwise tree over block partials would also be thread-count
//!   independent, but would diverge from the serial oracle; the chain is
//!   the degenerate fixed-shape tree that preserves it.)
//!
//! The serial accumulate bodies below are byte-untouched and remain the
//! oracle; `tests/iterate_parallel_props.rs` property-tests bitwise
//! equality across block sizes and `RAYON_NUM_THREADS` settings. The
//! engines engage the parallel path per [`super::ParallelPolicy`]: under
//! `Auto` only when the per-iteration work clears
//! [`PARALLEL_WORK_THRESHOLD`] and the caller does not already sit
//! inside a rayon fan-out (`rayon::current_thread_index()` is `None` and
//! spare budget exists) — an outer `reconstruct_many` batch or sweep
//! cell claims the pool and inner parallelism stays off.
//!
//! The observed-data log-likelihood falls out of the per-row denominators
//! for free *except* for the `ln` call per row, which measurably taxes
//! the iterate (~20% per iteration at paper scale). It is therefore only
//! accumulated when the configured [`StoppingRule`] actually consumes it
//! ([`StoppingRule::needs_log_likelihood`]); rules that ignore it see
//! `NaN` placeholders, which they never read.

use std::borrow::Cow;

use rayon::slice::ParallelSliceMut;

use crate::simd;

use super::stopping::StoppingRule;
use super::ParallelPolicy;

/// Unconditional stall breakout threshold: once the L1 distance between
/// successive probability vectors drops below this, the step is at
/// floating-point noise level and no stopping rule can learn anything
/// from running on. The value predates this module (both retired loop
/// copies used it) and is part of the iterate's observable behavior:
/// well below any meaningful stopping tolerance (default log-likelihood
/// `rel_tolerance` is 1e-8), well above f64 round-off for the ≤ ~100-cell
/// probability vectors the iterate runs over.
pub(crate) const STALL_L1_THRESHOLD: f64 = 1e-12;

/// Minimum per-iteration work (`rows * cells` likelihood entries) before
/// [`ParallelPolicy::Auto`] engages the block-parallel E-step. Below
/// this, thread dispatch costs more than it saves: at ~1ns per entry the
/// threshold corresponds to ~250µs of serial E-step per iteration,
/// orders of magnitude above the stand-in pool's scoped-spawn cost.
/// Bucketed paper-scale solves (`(m + k) × m` ≈ tens of thousands of
/// entries) deliberately stay under it; dense/streamed Exact solves and
/// very fine discrete channels clear it.
pub(crate) const PARALLEL_WORK_THRESHOLD: usize = 1 << 18;

/// Default row-block height for the parallel denominator sweep.
pub(crate) const DEFAULT_PARALLEL_ROW_BLOCK: usize = 512;

/// Default column-block width for the parallel `next` gather.
pub(crate) const DEFAULT_PARALLEL_COL_BLOCK: usize = 4;

/// Fixed block geometry for a parallel E-step. Block *counts* are
/// derived from these sizes and the problem geometry alone, so the work
/// decomposition — and with it every floating-point operation order —
/// is independent of the executing thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ParallelPlan {
    /// Rows per denominator block (phase 1).
    pub row_block: usize,
    /// Cells per `next`-gather block (phase 3).
    pub col_block: usize,
}

impl Default for ParallelPlan {
    fn default() -> Self {
        ParallelPlan {
            row_block: DEFAULT_PARALLEL_ROW_BLOCK,
            col_block: DEFAULT_PARALLEL_COL_BLOCK,
        }
    }
}

impl ParallelPlan {
    pub(crate) fn new(row_block: usize, col_block: usize) -> Self {
        ParallelPlan { row_block: row_block.max(1), col_block: col_block.max(1) }
    }
}

/// Decides whether a solve over a `rows × cells` E-step engages the
/// block-parallel path, per the policy semantics documented on
/// [`ParallelPolicy`]. Returns the plan to run with, or `None` for the
/// byte-untouched serial path.
pub(crate) fn engaged_plan(
    policy: ParallelPolicy,
    rows: usize,
    cells: usize,
    plan: ParallelPlan,
) -> Option<ParallelPlan> {
    match policy {
        ParallelPolicy::Serial => None,
        ParallelPolicy::Forced => Some(plan),
        ParallelPolicy::Auto => {
            let big_enough = rows.saturating_mul(cells) >= PARALLEL_WORK_THRESHOLD;
            // Inside an outer fan-out (batched jobs, sweep cells) the
            // pool is claimed: stay serial unless this worker was left
            // spare budget by a smaller-than-pool batch.
            let pool_free = rayon::available_inner_parallelism() > 1;
            (big_enough && pool_free).then_some(plan)
        }
    }
}

/// Outcome of the shared iterate: the final (normalized) probability
/// vector plus the bookkeeping both engines report.
pub(crate) struct IterateOutcome {
    pub probs: Vec<f64>,
    pub iterations: usize,
    pub converged: bool,
}

/// One E-step strategy: turns the current estimate into the unnormalized
/// next estimate.
pub(crate) trait EStep {
    /// Fills `next` (pre-zeroed, length `m`) with the unnormalized
    /// updated cell masses for the current `probs`, applying the
    /// zero-denominator skip. Returns `(used_weight, log_likelihood)`;
    /// when `need_ll` is `false` the log-likelihood is not accumulated
    /// and `NaN` is returned in its place.
    fn accumulate(&mut self, probs: &[f64], next: &mut [f64], need_ll: bool) -> (f64, f64);
}

/// A column-major `rows × cells` active likelihood matrix: column `p`
/// holds the likelihood of every active observation row given cell `p`,
/// contiguously. Borrowed directly from a transposed kernel when every
/// observation bucket is active, or gathered into a compact owned buffer
/// otherwise.
pub(crate) struct ColumnMatrix<'a> {
    values: Cow<'a, [f64]>,
    rows: usize,
    cells: usize,
}

impl<'a> ColumnMatrix<'a> {
    pub(crate) fn new(values: Cow<'a, [f64]>, rows: usize, cells: usize) -> Self {
        debug_assert_eq!(values.len(), rows * cells);
        ColumnMatrix { values, rows, cells }
    }

    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    pub(crate) fn cells(&self) -> usize {
        self.cells
    }

    /// Likelihood column of cell `p` over the active rows.
    #[inline]
    pub(crate) fn col(&self, p: usize) -> &[f64] {
        &self.values[p * self.rows..(p + 1) * self.rows]
    }
}

/// The vectorized transposed E-step (see the module docs).
pub(crate) struct TransposedEStep<'a> {
    matrix: ColumnMatrix<'a>,
    /// Per-row observation weights (bucket masses / state counts).
    weights: Cow<'a, [f64]>,
    /// Scratch: per-row denominators `K·p` of the current estimate.
    denom: Vec<f64>,
    /// Scratch: per-row update coefficients `w / denom` (0 for skipped rows).
    coeff: Vec<f64>,
    /// Block geometry for the parallel path; `None` runs the serial body.
    plan: Option<ParallelPlan>,
}

impl<'a> TransposedEStep<'a> {
    /// Serial construction — the oracle the determinism tests compare
    /// the planned path against.
    #[cfg(test)]
    pub(crate) fn new(matrix: ColumnMatrix<'a>, weights: Cow<'a, [f64]>) -> Self {
        Self::with_plan(matrix, weights, None)
    }

    pub(crate) fn with_plan(
        matrix: ColumnMatrix<'a>,
        weights: Cow<'a, [f64]>,
        plan: Option<ParallelPlan>,
    ) -> Self {
        let rows = matrix.rows();
        debug_assert_eq!(weights.len(), rows);
        TransposedEStep { matrix, weights, denom: vec![0.0; rows], coeff: vec![0.0; rows], plan }
    }

    /// The block-parallel accumulate: bit-identical to the serial body
    /// (see the module docs for why), phase by phase:
    ///
    /// 1. **Denominators, partitioned by rows.** Each block zeroes and
    ///    sweeps its own contiguous `denom` range using the same
    ///    4-column `axpy4` + scalar-tail schedule as the serial path,
    ///    restricted to the block's row range of each column. `axpy`
    ///    kernels are element-wise, so restricting them to a subrange
    ///    performs exactly the serial per-element operations.
    /// 2. **Coefficients + reductions, serial.** The `used_weight` /
    ///    log-likelihood chain is O(rows) adds over the ≤ few-thousand
    ///    transposed rows — cheap next to the O(rows·m) sweeps — and
    ///    runs the serial loop verbatim, preserving its skip structure
    ///    and left-to-right order bit for bit.
    /// 3. **`next` gather, partitioned by columns.** Each cell's
    ///    `probs[p] * dot(col(p), coeff)` is one whole serial-identical
    ///    lane-blocked dot.
    fn accumulate_parallel(
        &mut self,
        plan: ParallelPlan,
        probs: &[f64],
        next: &mut [f64],
        need_ll: bool,
    ) -> (f64, f64) {
        let m = self.matrix.cells();
        let matrix = &self.matrix;

        self.denom.par_chunks_mut(plan.row_block).enumerate().for_each(|(b, seg)| {
            let start = b * plan.row_block;
            let end = start + seg.len();
            seg.fill(0.0);
            let mut p = 0;
            while p + 4 <= m {
                simd::axpy4(
                    [probs[p], probs[p + 1], probs[p + 2], probs[p + 3]],
                    [
                        &matrix.col(p)[start..end],
                        &matrix.col(p + 1)[start..end],
                        &matrix.col(p + 2)[start..end],
                        &matrix.col(p + 3)[start..end],
                    ],
                    seg,
                );
                p += 4;
            }
            while p < m {
                simd::axpy(probs[p], &matrix.col(p)[start..end], seg);
                p += 1;
            }
        });

        let mut used_weight = 0.0;
        let mut log_likelihood = if need_ll { 0.0 } else { f64::NAN };
        for ((c, &d), &w) in self.coeff.iter_mut().zip(&self.denom).zip(self.weights.as_ref()) {
            if d <= f64::MIN_POSITIVE {
                *c = 0.0;
                continue;
            }
            used_weight += w;
            if need_ll {
                log_likelihood += w * d.ln();
            }
            *c = w / d;
        }

        let coeff = &self.coeff;
        next.par_chunks_mut(plan.col_block).enumerate().for_each(|(b, seg)| {
            let base = b * plan.col_block;
            for (j, slot) in seg.iter_mut().enumerate() {
                let p = base + j;
                *slot = probs[p] * simd::dot(matrix.col(p), coeff);
            }
        });
        (used_weight, log_likelihood)
    }
}

impl EStep for TransposedEStep<'_> {
    fn accumulate(&mut self, probs: &[f64], next: &mut [f64], need_ll: bool) -> (f64, f64) {
        let m = self.matrix.cells();
        debug_assert_eq!(probs.len(), m);
        debug_assert_eq!(next.len(), m);
        if let Some(plan) = self.plan {
            return self.accumulate_parallel(plan, probs, next, need_ll);
        }

        // Denominators: the blocked dense K·p. axpy4 is bit-identical to
        // four sequential axpys, so the 4-column blocking plus scalar
        // tail is one well-defined accumulation order.
        self.denom.fill(0.0);
        let mut p = 0;
        while p + 4 <= m {
            simd::axpy4(
                [probs[p], probs[p + 1], probs[p + 2], probs[p + 3]],
                [
                    self.matrix.col(p),
                    self.matrix.col(p + 1),
                    self.matrix.col(p + 2),
                    self.matrix.col(p + 3),
                ],
                &mut self.denom,
            );
            p += 4;
        }
        while p < m {
            simd::axpy(probs[p], self.matrix.col(p), &mut self.denom);
            p += 1;
        }

        // Update coefficients, used weight, and (optionally) the free
        // log-likelihood. A row whose denominator underflows carries no
        // usable evidence this round (possible with bounded noise
        // once cells hit zero) and is skipped via a zero coefficient; a
        // zero-weight row contributes exactly nothing the same way.
        let mut used_weight = 0.0;
        let mut log_likelihood = if need_ll { 0.0 } else { f64::NAN };
        for ((c, &d), &w) in self.coeff.iter_mut().zip(&self.denom).zip(self.weights.as_ref()) {
            if d <= f64::MIN_POSITIVE {
                *c = 0.0;
                continue;
            }
            used_weight += w;
            if need_ll {
                log_likelihood += w * d.ln();
            }
            *c = w / d;
        }

        // Fused weighted scatter: next[p] = probs[p] * (Kᵀ·coeff)[p],
        // one lane-blocked dot per contiguous column.
        for (p, slot) in next.iter_mut().enumerate() {
            *slot = probs[p] * simd::dot(self.matrix.col(p), &self.coeff);
        }
        (used_weight, log_likelihood)
    }
}

/// The shared iterate skeleton: initialization (uniform or warm start),
/// E-step, normalization, stopping-rule evaluation, and the stall
/// breakout — in one place for every engine path.
///
/// `initial` must be a normalized length-`m` vector when present
/// (callers floor and renormalize warm starts first); `n` is the
/// observation count the stopping rules scale by.
pub(crate) fn run_iterate_core<E: EStep>(
    estep: &mut E,
    m: usize,
    n: f64,
    stopping: &StoppingRule,
    max_iterations: usize,
    initial: Option<&[f64]>,
) -> IterateOutcome {
    let mut probs = match initial {
        Some(prior) => prior.to_vec(),
        None => vec![1.0 / m as f64; m],
    };
    let mut next = vec![0.0f64; m];
    let mut iterations = 0;
    let mut converged = false;
    let need_ll = stopping.needs_log_likelihood();
    let mut prev_log_likelihood = f64::NEG_INFINITY;

    while iterations < max_iterations {
        iterations += 1;
        next.fill(0.0);
        let (used_weight, log_likelihood) = estep.accumulate(&probs, &mut next, need_ll);
        if used_weight <= 0.0 {
            // Every observation became incompatible: keep the last
            // estimate and report non-convergence.
            break;
        }
        let total: f64 = next.iter().sum();
        debug_assert!(total > 0.0);
        for x in &mut next {
            *x /= total;
        }
        let stop = stopping.should_stop(&probs, &next, n, prev_log_likelihood, log_likelihood);
        prev_log_likelihood = log_likelihood;
        // Unconditional stall breakout (see STALL_L1_THRESHOLD).
        let stalled =
            probs.iter().zip(&next).map(|(o, w)| (w - o).abs()).sum::<f64>() < STALL_L1_THRESHOLD;
        std::mem::swap(&mut probs, &mut next);
        if stop || stalled {
            converged = true;
            break;
        }
    }

    IterateOutcome { probs, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scalar E-step mirroring the retired loop shape, for exercising
    /// the skeleton against hand-computable cases.
    struct ScalarEStep {
        rows: Vec<Vec<f64>>,
        weights: Vec<f64>,
    }

    impl EStep for ScalarEStep {
        fn accumulate(&mut self, probs: &[f64], next: &mut [f64], need_ll: bool) -> (f64, f64) {
            let mut used = 0.0;
            let mut ll = if need_ll { 0.0 } else { f64::NAN };
            for (row, &w) in self.rows.iter().zip(&self.weights) {
                let denom: f64 = row.iter().zip(probs).map(|(l, p)| l * p).sum();
                if denom <= f64::MIN_POSITIVE {
                    continue;
                }
                used += w;
                if need_ll {
                    ll += w * denom.ln();
                }
                let inv = w / denom;
                for (s, (l, p)) in next.iter_mut().zip(row.iter().zip(probs)) {
                    *s += l * p * inv;
                }
            }
            (used, ll)
        }
    }

    #[test]
    fn transposed_estep_matches_scalar_estep_closely() {
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|i| (0..6).map(|p| 0.01 + ((i * 7 + p * 3) % 11) as f64 / 10.0).collect())
            .collect();
        let weights: Vec<f64> = (0..13).map(|i| ((i * 5) % 9) as f64).collect();
        let mut cols = vec![0.0f64; 13 * 6];
        for (i, row) in rows.iter().enumerate() {
            for (p, &v) in row.iter().enumerate() {
                cols[p * 13 + i] = v;
            }
        }
        let mut scalar = ScalarEStep { rows, weights: weights.clone() };
        let mut vectorized =
            TransposedEStep::new(ColumnMatrix::new(Cow::Owned(cols), 13, 6), Cow::Owned(weights));
        let probs = vec![1.0 / 6.0; 6];
        let mut next_s = vec![0.0; 6];
        let mut next_v = vec![0.0; 6];
        let (used_s, ll_s) = scalar.accumulate(&probs, &mut next_s, true);
        let (used_v, ll_v) = vectorized.accumulate(&probs, &mut next_v, true);
        assert_eq!(used_s, used_v, "used weight is a plain ordered sum on both sides");
        assert!((ll_s - ll_v).abs() < 1e-9 * ll_s.abs());
        for (s, v) in next_s.iter().zip(&next_v) {
            assert!((s - v).abs() <= 1e-12 * s.abs().max(1e-300), "scalar {s} vs vectorized {v}");
        }
    }

    #[test]
    fn skeleton_converges_on_identity_likelihood() {
        // Identity likelihood rows: the fixed point is the weight
        // distribution itself.
        let m = 4;
        let rows: Vec<Vec<f64>> =
            (0..m).map(|i| (0..m).map(|p| if p == i { 1.0 } else { 0.0 }).collect()).collect();
        let weights = vec![10.0, 20.0, 30.0, 40.0];
        let mut estep = ScalarEStep { rows, weights };
        let out = run_iterate_core(
            &mut estep,
            m,
            100.0,
            &StoppingRule::L1 { tolerance: 1e-13 },
            5_000,
            None,
        );
        assert!(out.converged);
        for (p, expect) in out.probs.iter().zip([0.1, 0.2, 0.3, 0.4]) {
            assert!((p - expect).abs() < 1e-9, "prob {p} vs {expect}");
        }
    }

    #[test]
    fn skeleton_breaks_out_when_all_rows_become_incompatible() {
        // Zero likelihood everywhere: used_weight stays 0, the loop exits
        // after one iteration, the estimate stays at the start point.
        let mut estep = ScalarEStep { rows: vec![vec![0.0, 0.0]; 3], weights: vec![1.0, 1.0, 1.0] };
        let out = run_iterate_core(&mut estep, 2, 3.0, &StoppingRule::MaxIterationsOnly, 50, None);
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
        assert_eq!(out.probs, vec![0.5, 0.5]);
    }

    /// An irregular column-major likelihood matrix plus weights, sized
    /// to leave ragged tail blocks for any small block size.
    fn irregular_problem(rows: usize, m: usize) -> (Vec<f64>, Vec<f64>) {
        let mut cols = vec![0.0f64; rows * m];
        for p in 0..m {
            for i in 0..rows {
                // Deterministic, scale-diverse, strictly positive.
                cols[p * rows + i] = 1e-6 + (((i * 13 + p * 29 + 7) % 101) as f64).exp2() * 1e-9;
            }
        }
        let weights: Vec<f64> = (0..rows).map(|i| ((i * 17) % 23) as f64).collect();
        (cols, weights)
    }

    #[test]
    fn parallel_transposed_estep_is_bit_identical_for_every_block_shape() {
        let (rows, m) = (237, 11);
        let (cols, weights) = irregular_problem(rows, m);
        let probs: Vec<f64> = (0..m).map(|p| (p + 1) as f64 / (m * (m + 1) / 2) as f64).collect();

        let mut serial = TransposedEStep::new(
            ColumnMatrix::new(Cow::Borrowed(&cols), rows, m),
            Cow::Borrowed(&weights),
        );
        let mut next_s = vec![0.0; m];
        let (used_s, ll_s) = serial.accumulate(&probs, &mut next_s, true);

        for (rb, cb) in [(1, 1), (3, 2), (8, 4), (64, 3), (512, 4), (1024, 64)] {
            let mut parallel = TransposedEStep::with_plan(
                ColumnMatrix::new(Cow::Borrowed(&cols), rows, m),
                Cow::Borrowed(&weights),
                Some(ParallelPlan::new(rb, cb)),
            );
            let mut next_p = vec![0.0; m];
            let (used_p, ll_p) = parallel.accumulate(&probs, &mut next_p, true);
            assert_eq!(used_s.to_bits(), used_p.to_bits(), "used_weight, blocks {rb}x{cb}");
            assert_eq!(ll_s.to_bits(), ll_p.to_bits(), "log_likelihood, blocks {rb}x{cb}");
            for (p, (s, q)) in next_s.iter().zip(&next_p).enumerate() {
                assert_eq!(s.to_bits(), q.to_bits(), "next[{p}], blocks {rb}x{cb}");
            }
        }
    }

    #[test]
    fn parallel_transposed_estep_preserves_the_skip_structure() {
        // Rows whose denominator underflows must be skipped identically
        // in both paths (zero coefficient, no used-weight / ll term).
        let (rows, m) = (70, 6);
        let (mut cols, weights) = irregular_problem(rows, m);
        for p in 0..m {
            // Zero out every third row's likelihood across all cells.
            for i in (0..rows).step_by(3) {
                cols[p * rows + i] = 0.0;
            }
        }
        let probs = vec![1.0 / m as f64; m];
        let mut serial = TransposedEStep::new(
            ColumnMatrix::new(Cow::Borrowed(&cols), rows, m),
            Cow::Borrowed(&weights),
        );
        let mut parallel = TransposedEStep::with_plan(
            ColumnMatrix::new(Cow::Borrowed(&cols), rows, m),
            Cow::Borrowed(&weights),
            Some(ParallelPlan::new(16, 1)),
        );
        let (mut next_s, mut next_p) = (vec![0.0; m], vec![0.0; m]);
        let (used_s, ll_s) = serial.accumulate(&probs, &mut next_s, true);
        let (used_p, ll_p) = parallel.accumulate(&probs, &mut next_p, true);
        assert_eq!(used_s.to_bits(), used_p.to_bits());
        assert_eq!(ll_s.to_bits(), ll_p.to_bits());
        assert_eq!(
            next_s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            next_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn engaged_plan_honors_policy_threshold_and_pool_state() {
        let plan = ParallelPlan::default();
        let big = PARALLEL_WORK_THRESHOLD; // rows*cells exactly at threshold
        assert_eq!(engaged_plan(ParallelPolicy::Serial, big, 1, plan), None);
        assert_eq!(engaged_plan(ParallelPolicy::Forced, 1, 1, plan), Some(plan));
        assert_eq!(engaged_plan(ParallelPolicy::Auto, big - 1, 1, plan), None, "below threshold");
        std::env::set_var("RAYON_NUM_THREADS", "4");
        assert_eq!(engaged_plan(ParallelPolicy::Auto, big, 1, plan), Some(plan));
        std::env::set_var("RAYON_NUM_THREADS", "1");
        assert_eq!(engaged_plan(ParallelPolicy::Auto, big, 1, plan), None, "no spare threads");
        std::env::remove_var("RAYON_NUM_THREADS");
    }

    #[test]
    fn warm_start_is_used_as_initial_estimate() {
        let mut estep = ScalarEStep { rows: vec![vec![0.0, 0.0]; 1], weights: vec![1.0] };
        // With an all-incompatible E-step the initial estimate survives
        // untouched, proving the warm start was installed.
        let warm = vec![0.9, 0.1];
        let out =
            run_iterate_core(&mut estep, 2, 1.0, &StoppingRule::MaxIterationsOnly, 10, Some(&warm));
        assert_eq!(out.probs, warm);
    }
}
