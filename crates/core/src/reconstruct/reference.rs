//! The straight-line serial reconstruction of the original seed
//! implementation, kept verbatim as an executable specification.
//!
//! [`reconstruct_reference`] materializes its likelihood rows per call
//! (no kernel cache, no batching) and iterates with plain scalar
//! arithmetic in the seed's exact accumulation order. It deliberately
//! does **not** use the lane-blocked `ppdm_core::simd` primitives: its
//! job is to be the independent oracle whose summation order the
//! vectorized engine is *not* allowed to share, so the equivalence
//! suites (`tests/engine_equivalence.rs`) can bound the engine's
//! lane-reordering divergence (≤ 1e-10) against an implementation whose
//! numerics never move. It is also the scalar baseline of the
//! `engine_vs_legacy` and `iterate_kernels` benches. Production callers
//! should use [`crate::reconstruct::reconstruct`] or
//! [`super::ReconstructionEngine`] instead.

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::NoiseDensity;
use crate::stats::Histogram;

use super::{LikelihoodKernel, Reconstruction, ReconstructionConfig, UpdateMode};

/// Reference reconstruction: the unfactored serial algorithm.
///
/// # Errors
///
/// Returns [`Error::NoObservations`] for an empty sample. Non-finite
/// observations are rejected as [`Error::InvalidMass`].
pub fn reconstruct_reference(
    noise: &dyn NoiseDensity,
    partition: Partition,
    observed: &[f64],
    config: &ReconstructionConfig,
) -> Result<Reconstruction> {
    if observed.is_empty() {
        return Err(Error::NoObservations);
    }
    if let Some(bad) = observed.iter().find(|w| !w.is_finite()) {
        return Err(Error::InvalidMass(format!("observation {bad} is not finite")));
    }

    // Without noise the perturbed values are the originals.
    if noise.is_identity() {
        return Ok(Reconstruction {
            histogram: Histogram::from_values(partition, observed),
            iterations: 0,
            converged: true,
        });
    }

    // Represent observations as (weight, value) pairs: either every raw
    // observation, or one pair per non-empty bucket of the extended
    // partition.
    let pairs: Vec<(f64, f64)> = match config.mode {
        UpdateMode::Exact => observed.iter().map(|&w| (1.0, w)).collect(),
        UpdateMode::Bucketed => {
            let (extended, _) = partition.extend_by(noise.span())?;
            let obs_hist = Histogram::from_values(extended, observed);
            (0..extended.len())
                .filter(|&s| obs_hist.mass(s) > 0.0)
                .map(|s| (obs_hist.mass(s), extended.midpoint(s)))
                .collect()
        }
    };

    let m = partition.len();
    // Likelihood matrix: rows = observation pairs, cols = original cells.
    let likelihood: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(_, w)| {
            (0..m)
                .map(|p| match config.kernel {
                    LikelihoodKernel::Midpoint => noise.density(w - partition.midpoint(p)),
                    LikelihoodKernel::CellAverage => {
                        let (lo, hi) = partition.interval(p);
                        noise.mass_between(w - hi, w - lo) / partition.cell_width()
                    }
                })
                .collect()
        })
        .collect();

    let n = observed.len() as f64;
    let mut probs = vec![1.0 / m as f64; m];
    let mut scratch = vec![0.0f64; m];
    let mut iterations = 0;
    let mut converged = false;
    let mut prev_log_likelihood = f64::NEG_INFINITY;

    while iterations < config.max_iterations {
        iterations += 1;
        scratch.iter_mut().for_each(|s| *s = 0.0);
        let mut used_weight = 0.0;
        // Observed-data log-likelihood of the *current* estimate, available
        // for free from the per-observation denominators.
        let mut log_likelihood = 0.0;
        for ((weight, _), row) in pairs.iter().zip(&likelihood) {
            let denom: f64 = row.iter().zip(&probs).map(|(l, p)| l * p).sum();
            if denom <= f64::MIN_POSITIVE {
                // Observation incompatible with the current estimate (can
                // happen with bounded uniform noise once cells hit zero);
                // it carries no usable evidence this round.
                continue;
            }
            used_weight += weight;
            log_likelihood += weight * denom.ln();
            let inv = weight / denom;
            for (s, (l, p)) in scratch.iter_mut().zip(row.iter().zip(&probs)) {
                *s += l * p * inv;
            }
        }
        if used_weight <= 0.0 {
            // Every observation became incompatible: keep the last estimate
            // and report non-convergence.
            break;
        }
        let total: f64 = scratch.iter().sum();
        debug_assert!(total > 0.0);
        for s in &mut scratch {
            *s /= total;
        }
        let stop =
            config.stopping.should_stop(&probs, &scratch, n, prev_log_likelihood, log_likelihood);
        prev_log_likelihood = log_likelihood;
        // Unconditional stall breakout: once the step is at floating-point
        // noise level, no stopping rule can learn anything from running on.
        let stalled = probs.iter().zip(&scratch).map(|(o, w)| (w - o).abs()).sum::<f64>() < 1e-12;
        std::mem::swap(&mut probs, &mut scratch);
        if stop || stalled {
            converged = true;
            break;
        }
    }

    let mass: Vec<f64> = probs.iter().map(|p| p * n).collect();
    Ok(Reconstruction { histogram: Histogram::from_mass(partition, mass)?, iterations, converged })
}
