//! Streaming ingestion of perturbed records: mergeable sufficient
//! statistics, sharded accumulation, and warm-started incremental EM.
//!
//! AS00 defines reconstruction over one complete static sample, but a
//! service absorbing perturbed records from millions of clients never
//! sees such a sample: records arrive in batches, land on different
//! shards, and the current estimate must be refreshable without a cold
//! solve over everything seen so far. This module factors the bucketed
//! reconstruction update through a [`SuffStats`] sketch that makes all
//! three possible.
//!
//! # Why the sketch is lossless (and exactly mergeable)
//!
//! The bucketed iterate ([`super::UpdateMode::Bucketed`]) only ever reads
//! the observed sample through its per-bucket counts over the extended
//! partition. Those counts are *sufficient statistics*: two samples with
//! the same counts produce bit-identical reconstructions. Each ingested
//! observation adds exactly `1.0` to one bucket, and IEEE-754 doubles add
//! small integers exactly, so shard counts are integers and merging is
//! *exactly* associative and commutative — a merged sharded solve equals
//! the monolithic [`super::ReconstructionEngine::reconstruct`] on the
//! concatenated sample bit for bit (property-tested in
//! `tests/streaming_equivalence.rs`).
//!
//! # Warm starts
//!
//! [`IncrementalReconstructor`] keeps the posterior of its last solve and
//! uses it as the EM starting point for the next one. After appending a
//! small batch the optimum moves only slightly, so the warm solve
//! converges in a handful of iterations instead of a cold solve's
//! hundreds (measured in the `streaming_vs_batch` bench). Warm starts are
//! floored away from zero before use: EM can never revive a cell whose
//! probability is exactly zero, and fresh data may support cells the old
//! posterior had emptied.

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::{NoiseDensity, NoiseFingerprint};

use super::engine::{shared_engine, ReconstructionEngine};
use super::{Reconstruction, ReconstructionConfig, UpdateMode};

/// Mergeable sufficient statistics of a perturbed sample for the bucketed
/// reconstruction update: per-bucket counts over the noise-extended
/// partition, plus the ingested observation count.
///
/// Every field is integer-valued (stored as exact `f64` integers), so
/// merging is *exactly* associative and commutative — no field is
/// order-dependent floating-point arithmetic.
///
/// A sketch is bound to one `(noise fingerprint, partition)` geometry at
/// construction; [`SuffStats::merge`] refuses shards built against a
/// different channel or partition, so incompatible shards fail fast
/// instead of silently corrupting the estimate.
///
/// # Example
///
/// ```
/// use ppdm_core::domain::{Domain, Partition};
/// use ppdm_core::randomize::NoiseModel;
/// use ppdm_core::reconstruct::SuffStats;
///
/// let noise = NoiseModel::uniform(10.0)?;
/// let partition = Partition::new(Domain::new(0.0, 100.0)?, 10)?;
///
/// // Two shards ingest disjoint batches...
/// let shard_a = SuffStats::from_values(&noise, partition, &[5.0, 42.0, 99.0])?;
/// let shard_b = SuffStats::from_values(&noise, partition, &[17.0, 63.0])?;
///
/// // ...and merge into exactly the statistics of the concatenated sample.
/// let merged = shard_a.merge(&shard_b)?;
/// assert_eq!(merged.count(), 5);
/// let together =
///     SuffStats::from_values(&noise, partition, &[5.0, 42.0, 99.0, 17.0, 63.0])?;
/// assert_eq!(merged, together);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SuffStats {
    noise: NoiseFingerprint,
    /// Partition of the original attribute domain (the solve's output
    /// geometry).
    partition: Partition,
    /// `partition` extended by the noise span: the observation buckets.
    extended: Partition,
    /// Observations per extended bucket. Integer-valued, hence exact.
    counts: Vec<f64>,
    /// Number of observations ingested.
    count: u64,
}

impl SuffStats {
    /// An empty sketch for one channel/partition geometry.
    ///
    /// The channel must report a stable [`NoiseFingerprint`]; without one
    /// there is no way to verify at merge time that two shards saw the
    /// same channel.
    pub fn new(noise: &dyn NoiseDensity, partition: Partition) -> Result<Self> {
        let fingerprint = noise.fingerprint().ok_or(Error::MissingInput {
            what: "SuffStats requires a noise channel with a stable fingerprint",
        })?;
        let (extended, _) = partition.extend_by(noise.span())?;
        Ok(SuffStats {
            noise: fingerprint,
            partition,
            extended,
            counts: vec![0.0; extended.len()],
            count: 0,
        })
    }

    /// A sketch pre-loaded with one batch of observations.
    pub fn from_values(
        noise: &dyn NoiseDensity,
        partition: Partition,
        observed: &[f64],
    ) -> Result<Self> {
        let mut stats = Self::new(noise, partition)?;
        stats.ingest(observed)?;
        Ok(stats)
    }

    /// Buckets a batch of perturbed observations into the sketch.
    ///
    /// Out-of-range values clamp into the first/last extended bucket,
    /// exactly as the monolithic bucketed path does.
    pub fn ingest(&mut self, observed: &[f64]) -> Result<()> {
        if let Some(bad) = observed.iter().find(|w| !w.is_finite()) {
            return Err(Error::InvalidMass(format!("observation {bad} is not finite")));
        }
        for &w in observed {
            self.counts[self.extended.locate(w)] += 1.0;
        }
        self.count += observed.len() as u64;
        Ok(())
    }

    /// Checks that `other` was built against the same channel and
    /// geometry.
    ///
    /// This is the single compatibility gate for combining sketches: the
    /// in-process [`Self::merge_from`] and the federated wire decode
    /// path ([`crate::federate::WireSketch`]) both route through it, so
    /// a sketch that would be refused by a local merge is refused at the
    /// wire boundary with the same [`Error::ShardMismatch`].
    pub(crate) fn compatible(&self, other: &SuffStats) -> Result<()> {
        if self.noise != other.noise {
            return Err(Error::ShardMismatch(format!(
                "noise fingerprints differ: {:?} vs {:?}",
                self.noise, other.noise
            )));
        }
        if self.partition != other.partition {
            return Err(Error::ShardMismatch(format!(
                "partitions differ: {:?} vs {:?}",
                self.partition, other.partition
            )));
        }
        debug_assert_eq!(self.extended, other.extended, "same (noise, partition), same extension");
        Ok(())
    }

    /// Merges `other` into `self`. Errs (leaving `self` untouched) on a
    /// channel or partition mismatch.
    pub fn merge_from(&mut self, other: &SuffStats) -> Result<()> {
        self.compatible(other)?;
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        Ok(())
    }

    /// The merge of two sketches, leaving both inputs intact.
    ///
    /// Counts are integer-valued, so this operation is exactly
    /// associative and commutative: any merge tree over any shard order
    /// yields bit-identical statistics.
    pub fn merge(&self, other: &SuffStats) -> Result<SuffStats> {
        let mut merged = self.clone();
        merged.merge_from(other)?;
        Ok(merged)
    }

    /// Channel fingerprint the sketch is bound to.
    pub fn fingerprint(&self) -> NoiseFingerprint {
        self.noise
    }

    /// Partition of the original domain (the solve's output geometry).
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The extended partition the observation buckets live on.
    pub fn extended(&self) -> Partition {
        self.extended
    }

    /// Per-bucket observation counts over [`Self::extended`].
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Number of observations ingested.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total bucketed mass; equals [`Self::count`] as a float.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Whether no observations have been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets the sketch to empty while keeping its geometry binding and
    /// bucket storage. The serving layer's drain protocol round-trips
    /// sketches through this instead of allocating fresh ones per epoch.
    pub fn clear(&mut self) {
        self.counts.fill(0.0);
        self.count = 0;
    }

    /// Overwrites the bucket counts wholesale — the federated wire
    /// decode path's installer. `counts` must already be validated as
    /// exact non-negative integer values over [`Self::extended`] (the
    /// wire layer checks each value fits in `f64` exactly before
    /// calling); this only re-checks the geometry-determined length.
    pub(crate) fn install_counts(&mut self, counts: &[f64], count: u64) -> Result<()> {
        if counts.len() != self.counts.len() {
            return Err(Error::ShardMismatch(format!(
                "bucket count vector has {} entries, geometry expects {}",
                counts.len(),
                self.counts.len()
            )));
        }
        self.counts.copy_from_slice(counts);
        self.count = count;
        Ok(())
    }
}

/// Shard-parallel ingestion of perturbed record batches.
///
/// Each shard owns an independent [`SuffStats`]; batches are distributed
/// round-robin and bucketed concurrently across worker threads. Because
/// sketch merging is exact (see [`SuffStats::merge`]), [`Self::merged`]
/// is independent of shard count, batch order, and thread scheduling.
#[derive(Debug, Clone)]
pub struct ShardedAccumulator {
    shards: Vec<SuffStats>,
    /// Per-shard delta sketches reused across [`Self::ingest_batches`]
    /// calls (built lazily on first use), so steady-state round-robin
    /// ingestion allocates nothing: batch data is read in place — never
    /// copied — and the only allocations ever made are these sketches,
    /// once.
    scratch: Vec<SuffStats>,
}

impl ShardedAccumulator {
    /// An accumulator with `shards >= 1` empty shards for one
    /// channel/partition geometry.
    pub fn new(noise: &dyn NoiseDensity, partition: Partition, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(Error::ShardMismatch("shard count must be at least 1".to_string()));
        }
        let empty = SuffStats::new(noise, partition)?;
        Ok(ShardedAccumulator { shards: vec![empty; shards], scratch: Vec::new() })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The sketch held by shard `i`.
    pub fn shard(&self, i: usize) -> &SuffStats {
        &self.shards[i]
    }

    /// Ingests one batch into an explicit shard (the path a router with
    /// its own placement policy uses).
    pub fn ingest_batch(&mut self, shard: usize, observed: &[f64]) -> Result<()> {
        let num_shards = self.shards.len();
        let stats = self.shards.get_mut(shard).ok_or_else(|| {
            Error::ShardMismatch(format!("shard {shard} out of range (have {num_shards})"))
        })?;
        stats.ingest(observed)
    }

    /// Distributes batches round-robin over the shards and buckets them
    /// concurrently, one worker per shard.
    ///
    /// Each shard's delta is built independently and then merged in, so
    /// the result is deterministic regardless of thread scheduling. The
    /// hot path is the same [`SuffStats::ingest`] the serving layer's
    /// shard workers run: batch slices are bucketed in place (no copies
    /// of the observation data are ever taken), and the per-shard delta
    /// sketches are drawn from a recycled scratch pool owned by the
    /// accumulator, so repeated calls allocate nothing after the first.
    pub fn ingest_batches(&mut self, batches: &[Vec<f64>]) -> Result<()> {
        if batches.is_empty() {
            return Ok(());
        }
        let num_shards = self.shards.len();
        if self.scratch.len() != num_shards {
            let template = SuffStats {
                counts: vec![0.0; self.shards[0].counts.len()],
                count: 0,
                ..self.shards[0].clone()
            };
            self.scratch = vec![template; num_shards];
        }
        // Every delta is validated before ANY shard is touched, so a bad
        // batch (e.g. a non-finite observation) leaves the accumulator
        // exactly as it was — no partial ingestion to unwind or
        // double-count on retry. (A dirty scratch sketch from a failed
        // call is harmless: deltas are cleared before reuse.)
        if num_shards == 1 {
            let delta = &mut self.scratch[0];
            delta.clear();
            for batch in batches {
                delta.ingest(batch)?;
            }
        } else {
            let results: Vec<Result<()>> = std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .scratch
                    .iter_mut()
                    .enumerate()
                    .map(|(shard, delta)| {
                        s.spawn(move || {
                            delta.clear();
                            for batch in batches.iter().skip(shard).step_by(num_shards) {
                                delta.ingest(batch)?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard delta worker panicked"))
                    .collect()
            });
            for result in results {
                result?;
            }
        }
        for (shard, delta) in self.shards.iter_mut().zip(&self.scratch) {
            shard.merge_from(delta)?;
        }
        Ok(())
    }

    /// Merges every shard into one sketch. Exact: independent of shard
    /// count and merge order.
    pub fn merged(&self) -> Result<SuffStats> {
        let (first, rest) = self.shards.split_first().expect("at least one shard by construction");
        let mut merged = first.clone();
        for shard in rest {
            merged.merge_from(shard)?;
        }
        Ok(merged)
    }
}

/// Incremental reconstruction: accumulate batches (or absorb shard
/// sketches) and re-solve with EM warm-started from the previous
/// posterior.
///
/// A cold [`Self::solve`] is bit-identical to
/// [`ReconstructionEngine::reconstruct`] over the concatenated sample in
/// bucketed mode; a warm solve after appending a batch reaches the same
/// optimum (within the configured stopping tolerance) in far fewer
/// iterations.
pub struct IncrementalReconstructor<'a> {
    noise: &'a dyn NoiseDensity,
    engine: &'a ReconstructionEngine,
    stats: SuffStats,
    /// Per-cell probabilities of the last solve, the next warm start.
    posterior: Option<Vec<f64>>,
    config: ReconstructionConfig,
}

impl<'a> IncrementalReconstructor<'a> {
    /// A reconstructor over the process-wide shared engine.
    ///
    /// The sketch carries bucketed counts only, so solves always use
    /// [`UpdateMode::Bucketed`] regardless of `config.mode`.
    pub fn new(
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        config: ReconstructionConfig,
    ) -> Result<Self> {
        Self::with_engine(noise, partition, config, shared_engine())
    }

    /// As [`Self::new`] with an explicit engine (for embedders managing
    /// their own kernel-cache budgets).
    pub fn with_engine(
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        config: ReconstructionConfig,
        engine: &'a ReconstructionEngine,
    ) -> Result<Self> {
        Ok(IncrementalReconstructor {
            noise,
            engine,
            stats: SuffStats::new(noise, partition)?,
            posterior: None,
            config: ReconstructionConfig { mode: UpdateMode::Bucketed, ..config },
        })
    }

    /// Buckets a new batch of perturbed observations.
    pub fn ingest(&mut self, observed: &[f64]) -> Result<()> {
        self.stats.ingest(observed)
    }

    /// Merges a shard's sketch (e.g. from a [`ShardedAccumulator`]) into
    /// the accumulated statistics.
    pub fn absorb(&mut self, shard: &SuffStats) -> Result<()> {
        self.stats.merge_from(shard)
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &SuffStats {
        &self.stats
    }

    /// The posterior of the last solve, if any.
    pub fn posterior(&self) -> Option<&[f64]> {
        self.posterior.as_deref()
    }

    /// Drops the stored posterior so the next [`Self::solve`] runs cold.
    pub fn reset_posterior(&mut self) {
        self.posterior = None;
    }

    /// Reconstructs the original distribution from the accumulated
    /// statistics, warm-starting from the previous posterior when one
    /// exists, and stores the new posterior for the next call.
    ///
    /// This is a single-job solve, so `config.parallel` routes straight
    /// through: under the default [`super::ParallelPolicy::Auto`] a big
    /// enough re-solve engages the block-parallel E-step whenever the
    /// rayon pool is free — with results bit-identical to the serial
    /// path either way.
    pub fn solve(&mut self) -> Result<Reconstruction> {
        let result = self.engine.reconstruct_stats(
            self.noise,
            &self.stats,
            &self.config,
            self.posterior.as_deref(),
        )?;
        self.posterior = Some(result.histogram.probabilities());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::randomize::NoiseModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn part(cells: usize) -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
    }

    fn sample(n: usize, noise: &NoiseModel, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        noise.perturb_all(&xs, &mut rng)
    }

    #[test]
    fn ingest_tracks_count_and_total() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let mut stats = SuffStats::new(&noise, part(10)).unwrap();
        assert!(stats.is_empty());
        let obs = sample(500, &noise, 1);
        stats.ingest(&obs).unwrap();
        assert!(!stats.is_empty());
        assert_eq!(stats.count(), 500);
        assert_eq!(stats.total(), 500.0);
        assert_eq!(stats.counts().len(), stats.extended().len());
    }

    #[test]
    fn ingest_rejects_non_finite() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let mut stats = SuffStats::new(&noise, part(10)).unwrap();
        assert!(stats.ingest(&[1.0, f64::NAN]).is_err());
        assert!(stats.ingest(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn merge_rejects_mismatched_geometry() {
        let g = NoiseModel::gaussian(10.0).unwrap();
        let u = NoiseModel::uniform(10.0).unwrap();
        let a = SuffStats::new(&g, part(10)).unwrap();
        let b = SuffStats::new(&u, part(10)).unwrap();
        let c = SuffStats::new(&g, part(12)).unwrap();
        assert!(matches!(a.merge(&b), Err(Error::ShardMismatch(_))));
        assert!(matches!(a.merge(&c), Err(Error::ShardMismatch(_))));
        assert!(a.merge(&a.clone()).is_ok());
    }

    // Direct sketch-level compatibility tests: `compatible` is the one
    // gate shared by `merge_from` and the federated wire decode path
    // (`crate::federate`), so its two refusal modes are pinned here at
    // the sketch level — not only through `ShardedAccumulator` or the
    // wire tests.
    #[test]
    fn merge_from_rejects_fingerprint_mismatch_and_leaves_self_untouched() {
        let g = NoiseModel::gaussian(10.0).unwrap();
        let u = NoiseModel::uniform(10.0).unwrap();
        let mut a = SuffStats::from_values(&g, part(10), &sample(40, &g, 3)).unwrap();
        let before = a.clone();
        let b = SuffStats::from_values(&u, part(10), &sample(40, &u, 4)).unwrap();
        let err = a.merge_from(&b).unwrap_err();
        match err {
            Error::ShardMismatch(msg) => {
                assert!(msg.contains("noise fingerprints differ"), "got: {msg}")
            }
            other => panic!("expected ShardMismatch, got {other:?}"),
        }
        assert_eq!(a, before, "a failed merge must not mutate the receiver");
    }

    #[test]
    fn merge_from_rejects_partition_mismatch_and_leaves_self_untouched() {
        let g = NoiseModel::gaussian(10.0).unwrap();
        let mut a = SuffStats::from_values(&g, part(10), &sample(40, &g, 5)).unwrap();
        let before = a.clone();
        // Same cell count, different domain: the fingerprints agree, so
        // only the partition check can catch this.
        let other_domain = Partition::new(Domain::new(0.0, 50.0).unwrap(), 10).unwrap();
        let b = SuffStats::new(&g, other_domain).unwrap();
        let err = a.merge_from(&b).unwrap_err();
        match err {
            Error::ShardMismatch(msg) => assert!(msg.contains("partitions differ"), "got: {msg}"),
            other => panic!("expected ShardMismatch, got {other:?}"),
        }
        assert_eq!(a, before, "a failed merge must not mutate the receiver");
    }

    #[test]
    fn no_fingerprint_channel_is_rejected() {
        struct Anon;
        impl NoiseDensity for Anon {
            fn density(&self, _: f64) -> f64 {
                1.0
            }
            fn mass_between(&self, _: f64, _: f64) -> f64 {
                1.0
            }
            fn span(&self) -> f64 {
                1.0
            }
        }
        assert!(matches!(SuffStats::new(&Anon, part(5)), Err(Error::MissingInput { .. })));
    }

    #[test]
    fn accumulator_round_robin_matches_explicit_sharding() {
        let noise = NoiseModel::gaussian(12.0).unwrap();
        let batches: Vec<Vec<f64>> =
            (0..7).map(|i| sample(100 + 10 * i as usize, &noise, 20 + i)).collect();
        let mut auto = ShardedAccumulator::new(&noise, part(15), 3).unwrap();
        auto.ingest_batches(&batches).unwrap();
        let mut manual = ShardedAccumulator::new(&noise, part(15), 3).unwrap();
        for (i, batch) in batches.iter().enumerate() {
            manual.ingest_batch(i % 3, batch).unwrap();
        }
        for i in 0..3 {
            assert_eq!(auto.shard(i), manual.shard(i), "shard {i}");
        }
        assert_eq!(auto.merged().unwrap(), manual.merged().unwrap());
    }

    #[test]
    fn merged_is_shard_count_invariant() {
        let noise = NoiseModel::uniform(20.0).unwrap();
        let batches: Vec<Vec<f64>> = (0..8).map(|i| sample(250, &noise, 40 + i)).collect();
        let mut reference: Option<SuffStats> = None;
        for shards in [1usize, 4, 8] {
            let mut acc = ShardedAccumulator::new(&noise, part(20), shards).unwrap();
            acc.ingest_batches(&batches).unwrap();
            let merged = acc.merged().unwrap();
            match &reference {
                None => reference = Some(merged),
                Some(r) => assert_eq!(r, &merged, "{shards} shards diverged"),
            }
        }
    }

    #[test]
    fn ingest_batches_is_atomic_on_bad_input() {
        let noise = NoiseModel::gaussian(8.0).unwrap();
        let mut acc = ShardedAccumulator::new(&noise, part(8), 2).unwrap();
        acc.ingest_batches(&[sample(50, &noise, 60)]).unwrap();
        let before: Vec<SuffStats> = (0..2).map(|i| acc.shard(i).clone()).collect();
        // One good batch (shard 0) and one bad batch (shard 1): the error
        // must leave every shard untouched, not just the failing one.
        let err = acc.ingest_batches(&[vec![1.0, 2.0], vec![3.0, f64::NAN]]).unwrap_err();
        assert!(matches!(err, Error::InvalidMass(_)));
        for (i, b) in before.iter().enumerate() {
            assert_eq!(acc.shard(i), b, "shard {i} mutated by a failed ingest");
        }
    }

    #[test]
    fn accumulator_rejects_zero_shards_and_bad_shard_index() {
        let noise = NoiseModel::gaussian(5.0).unwrap();
        assert!(matches!(
            ShardedAccumulator::new(&noise, part(5), 0),
            Err(Error::ShardMismatch(_))
        ));
        let mut acc = ShardedAccumulator::new(&noise, part(5), 2).unwrap();
        assert!(matches!(acc.ingest_batch(2, &[1.0]), Err(Error::ShardMismatch(_))));
    }

    #[test]
    fn incremental_solve_matches_engine_on_same_stats() {
        let noise = NoiseModel::gaussian(15.0).unwrap();
        let obs = sample(2_000, &noise, 7);
        let cfg = ReconstructionConfig::default();
        let engine = ReconstructionEngine::new();
        let mut inc =
            IncrementalReconstructor::with_engine(&noise, part(20), cfg, &engine).unwrap();
        inc.ingest(&obs).unwrap();
        let cold = inc.solve().unwrap();
        let monolithic = engine.reconstruct(&noise, part(20), &obs, &cfg).unwrap();
        assert_eq!(cold, monolithic, "cold incremental solve must equal the monolithic solve");
        assert!(inc.posterior().is_some());
    }

    #[test]
    fn warm_start_converges_faster_after_append() {
        let noise = NoiseModel::gaussian(15.0).unwrap();
        let base = sample(20_000, &noise, 8);
        let append = sample(200, &noise, 9);
        let cfg = ReconstructionConfig::default();
        let engine = ReconstructionEngine::new();
        let mut inc =
            IncrementalReconstructor::with_engine(&noise, part(20), cfg, &engine).unwrap();
        inc.ingest(&base).unwrap();
        let cold = inc.solve().unwrap();
        inc.ingest(&append).unwrap();
        let warm = inc.solve().unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm ({}) should not exceed cold ({})",
            warm.iterations,
            cold.iterations
        );
        // The warm estimate agrees with a from-scratch solve on the same
        // statistics to within the stopping tolerance.
        inc.reset_posterior();
        let rescored = inc.solve().unwrap();
        let tv = crate::stats::total_variation(&warm.histogram, &rescored.histogram).unwrap();
        assert!(tv < 0.01, "warm vs cold tv {tv}");
    }
}
