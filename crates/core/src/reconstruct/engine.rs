//! The reconstruction engine: precomputed likelihood kernels + batched,
//! parallel reconstruction.
//!
//! # The kernel-matrix factorization
//!
//! Every iteration of the AS00/AA01 reconstruction iterate evaluates the
//! likelihood `L[s][p]` of an observation bucket `s` given an original
//! cell `p`:
//!
//! ```text
//! Midpoint    L[s][p] = f_Y(mid(E_s) - mid(I_p))
//! CellAverage L[s][p] = (1/|I_p|) * ∫_{I_p} f_Y(mid(E_s) - x) dx
//! ```
//!
//! where `E` is the attribute partition extended by the noise span and `I`
//! the original partition. Crucially, `L` depends only on the *noise
//! channel*, the *partition geometry*, and the *kernel* — never on the
//! observed sample or on the current estimate. The engine therefore
//! factors `L` out of the iterate: it is computed once as an
//! `(m + k) × m` [`KernelMatrix`] and every EM iteration becomes pure
//! matrix–vector arithmetic against it.
//!
//! # When caching applies
//!
//! Kernels are cached in the engine keyed by
//! `(noise fingerprint, partition domain, cell count, kernel)` — see
//! [`NoiseDensity::fingerprint`]. Any two reconstructions over the same
//! attribute geometry share one kernel, which is exactly the shape of the
//! tree-training workloads: ByClass runs `attributes × classes` problems
//! over identical partitions (one kernel per attribute serves every
//! class), and the Local algorithm re-reconstructs the same root
//! partitions at every untruncated node. Channels without a fingerprint
//! (custom [`NoiseDensity`] implementations that decline one) are rebuilt
//! per call and never cached.
//!
//! Caching is *only* applied to [`UpdateMode::Bucketed`] problems, whose
//! row space is the extended partition. [`UpdateMode::Exact`] rows are
//! per-observation (`n × m` for `n` observations) and sample-dependent,
//! so they are never cached: within the materialization budget
//! ([`ReconstructionEngine::DEFAULT_EXACT_MATERIALIZE_ENTRIES`]) they are
//! evaluated once per call, and beyond it they are *streamed* — each row
//! recomputed on the fly into a single scratch buffer, keeping memory at
//! `O(m)` regardless of `n`.
//!
//! # Layout and the vectorized iterate
//!
//! The engine stores its cached kernels in the *transposed*
//! ([`KernelLayout::Transposed`], column-major) layout: column `p` holds
//! the likelihood of every observation bucket given cell `p`,
//! contiguously. Each EM iteration then runs through the shared
//! vectorized core (the private `iterate` module): a blocked dense `K·p` for the
//! per-bucket denominators followed by a fused weighted `Kᵀ·(w/denom)`
//! gather, both over contiguous columns with lane-blocked accumulation
//! ([`crate::simd`]) — instead of the retired per-row scalar dot/axpy
//! sweeps. Lane blocking changes summation order, so engine results are
//! within 1e-10 of — not bit-identical to — the scalar
//! [`super::reconstruct_reference`], which stays byte-for-byte untouched
//! as the oracle; results remain fully deterministic across runs and
//! machines. Exact-mode per-observation rows keep a row-major shape
//! (dense or streamed) but use the same shared core and lane primitives.
//!
//! # Batching
//!
//! [`ReconstructionEngine::reconstruct_many`] fans a slice of independent
//! [`ReconstructionJob`]s across worker threads (results stay in job
//! order, and every job computes exactly what the serial path would). The
//! free function [`crate::reconstruct::reconstruct`] remains the
//! single-problem entry point; it delegates to a process-wide shared
//! engine so even serial callers reuse cached kernels.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use rayon::prelude::*;

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::{NoiseDensity, NoiseFingerprint};
use crate::simd;
use crate::stats::Histogram;

use super::iterate::{
    engaged_plan, run_iterate_core, ColumnMatrix, EStep, IterateOutcome, ParallelPlan,
    TransposedEStep,
};
use super::streaming::SuffStats;
use super::{LikelihoodKernel, Reconstruction, ReconstructionConfig, UpdateMode};

/// Cache key of a likelihood kernel: channel identity + partition
/// geometry + kernel choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct KernelKey {
    noise: NoiseFingerprint,
    domain_lo: u64,
    domain_hi: u64,
    cells: usize,
    kernel: LikelihoodKernel,
}

impl KernelKey {
    fn new(noise: NoiseFingerprint, partition: Partition, kernel: LikelihoodKernel) -> Self {
        KernelKey {
            noise,
            domain_lo: partition.domain().lo().to_bits(),
            domain_hi: partition.domain().hi().to_bits(),
            cells: partition.len(),
            kernel,
        }
    }
}

/// Evaluates one likelihood entry; shared by the precomputed and the
/// streaming paths so both produce bit-identical values.
#[inline]
fn likelihood(
    noise: &dyn NoiseDensity,
    partition: &Partition,
    kernel: LikelihoodKernel,
    w: f64,
    p: usize,
) -> f64 {
    match kernel {
        LikelihoodKernel::Midpoint => noise.density(w - partition.midpoint(p)),
        LikelihoodKernel::CellAverage => {
            let (lo, hi) = partition.interval(p);
            noise.mass_between(w - hi, w - lo) / partition.cell_width()
        }
    }
}

/// Memory layout of a [`KernelMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelLayout {
    /// Row-major: the likelihood row of one observation bucket is
    /// contiguous. The layout of the original implementation, natural
    /// for per-row scalar traversals.
    RowMajor,
    /// Column-major ("transposed"): the likelihood column of one original
    /// cell is contiguous. What the engine caches — the vectorized
    /// iterate runs blocked `K·p` / `Kᵀ·c` passes over contiguous
    /// columns.
    Transposed,
}

/// A precomputed `(m + k) × m` likelihood matrix over the extended
/// partition's bucket midpoints, in either layout (entries are
/// bit-identical across layouts; only the storage order differs).
#[derive(Debug)]
pub struct KernelMatrix {
    extended: Partition,
    m: usize,
    layout: KernelLayout,
    /// `extended.len() × m` likelihood values in `layout` order.
    values: Vec<f64>,
}

impl KernelMatrix {
    /// Precomputes the kernel for one `(noise, partition, kernel)` triple
    /// in the row-major layout.
    pub fn build(
        noise: &dyn NoiseDensity,
        partition: Partition,
        kernel: LikelihoodKernel,
    ) -> Result<Self> {
        Self::build_with_layout(noise, partition, kernel, KernelLayout::RowMajor)
    }

    /// Precomputes the kernel in an explicit layout. Every entry is the
    /// same likelihood evaluation regardless of layout, so the two
    /// layouts hold exactly the same values.
    pub fn build_with_layout(
        noise: &dyn NoiseDensity,
        partition: Partition,
        kernel: LikelihoodKernel,
        layout: KernelLayout,
    ) -> Result<Self> {
        let (extended, _) = partition.extend_by(noise.span())?;
        let m = partition.len();
        let mut values = Vec::with_capacity(extended.len() * m);
        match layout {
            KernelLayout::RowMajor => {
                for s in 0..extended.len() {
                    let w = extended.midpoint(s);
                    for p in 0..m {
                        values.push(likelihood(noise, &partition, kernel, w, p));
                    }
                }
            }
            KernelLayout::Transposed => {
                for p in 0..m {
                    for s in 0..extended.len() {
                        let w = extended.midpoint(s);
                        values.push(likelihood(noise, &partition, kernel, w, p));
                    }
                }
            }
        }
        Ok(KernelMatrix { extended, m, layout, values })
    }

    /// The partition extended by the noise span: the observation buckets
    /// this kernel's rows correspond to.
    pub fn extended(&self) -> Partition {
        self.extended
    }

    /// The storage layout.
    pub fn layout(&self) -> KernelLayout {
        self.layout
    }

    /// Likelihood of observation bucket `s` given original cell `p`,
    /// independent of layout.
    #[inline]
    pub fn value(&self, s: usize, p: usize) -> f64 {
        match self.layout {
            KernelLayout::RowMajor => self.values[s * self.m + p],
            KernelLayout::Transposed => self.values[p * self.extended.len() + s],
        }
    }

    /// Likelihood row of observation bucket `s`.
    ///
    /// # Panics
    ///
    /// Panics on a [`KernelLayout::Transposed`] matrix, whose rows are
    /// not contiguous — use [`KernelMatrix::value`] or
    /// [`KernelMatrix::column`] there.
    #[inline]
    pub fn row(&self, s: usize) -> &[f64] {
        assert_eq!(self.layout, KernelLayout::RowMajor, "rows are contiguous only in RowMajor");
        &self.values[s * self.m..(s + 1) * self.m]
    }

    /// Likelihood column of original cell `p`.
    ///
    /// # Panics
    ///
    /// Panics on a [`KernelLayout::RowMajor`] matrix, whose columns are
    /// not contiguous.
    #[inline]
    pub fn column(&self, p: usize) -> &[f64] {
        assert_eq!(
            self.layout,
            KernelLayout::Transposed,
            "columns are contiguous only in Transposed"
        );
        let rows = self.extended.len();
        &self.values[p * rows..(p + 1) * rows]
    }

    /// Memory footprint of the matrix in likelihood entries.
    pub fn entries(&self) -> usize {
        self.values.len()
    }

    /// The iterate input for a bucketed solve against this (transposed)
    /// kernel: a column-major active matrix plus per-row weights.
    ///
    /// When the problem is *mostly dense* — at least 7/8 of the
    /// observation buckets carry mass, the invariable case at paper
    /// scale — the kernel's own storage is borrowed outright: no
    /// per-call copy, and every solve re-touches the same cached memory.
    /// Empty buckets ride along with weight 0, which the E-step turns
    /// into an exact no-op (coefficient 0 contributes nothing to any
    /// accumulator). Sparser problems (small samples over wide
    /// extensions) gather the active columns into a compact owned matrix
    /// instead, so the per-iteration cost tracks the non-empty buckets
    /// the retired scalar loop iterated. The threshold is a fixed
    /// function of the input counts, so results stay deterministic.
    fn active_problem<'a>(&'a self, masses: &'a [f64]) -> (ColumnMatrix<'a>, Cow<'a, [f64]>) {
        let rows = self.extended.len();
        debug_assert_eq!(masses.len(), rows);
        debug_assert_eq!(self.layout, KernelLayout::Transposed);
        let active: Vec<usize> = (0..rows).filter(|&s| masses[s] > 0.0).collect();
        if active.len() >= rows - rows / 8 {
            let matrix = ColumnMatrix::new(Cow::Borrowed(&self.values[..]), rows, self.m);
            return (matrix, Cow::Borrowed(masses));
        }
        let weights: Vec<f64> = active.iter().map(|&s| masses[s]).collect();
        let r = active.len();
        let mut values = Vec::with_capacity(r * self.m);
        for p in 0..self.m {
            let col = &self.values[p * rows..(p + 1) * rows];
            values.extend(active.iter().map(|&s| col[s]));
        }
        (ColumnMatrix::new(Cow::Owned(values), r, self.m), Cow::Owned(weights))
    }
}

/// Supplies per-observation likelihood rows to the Exact-mode iterate:
/// materialized once per call, or streamed into a scratch buffer.
enum RowSource<'a> {
    /// Per-observation rows materialized once for this call (Exact mode
    /// when `n x m` fits the materialization budget).
    Dense { values: Vec<f64>, m: usize },
    /// Rows recomputed per pair from the raw observation value (Exact
    /// mode beyond the budget: `O(m)` memory, rows re-evaluated every
    /// iteration).
    Streamed {
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        kernel: LikelihoodKernel,
        buf: Vec<f64>,
    },
}

impl RowSource<'_> {
    #[inline]
    fn row(&mut self, idx: usize, value: f64) -> &[f64] {
        match self {
            RowSource::Dense { values, m } => &values[idx * *m..(idx + 1) * *m],
            RowSource::Streamed { noise, partition, kernel, buf } => {
                for (p, slot) in buf.iter_mut().enumerate() {
                    *slot = likelihood(*noise, partition, *kernel, value, p);
                }
                buf
            }
        }
    }
}

/// The Exact-mode E-step: row-wise over per-observation likelihood rows
/// (dense or streamed — both produce identical values in identical
/// order, so the two paths agree bit for bit), vectorized with the same
/// lane primitives as the transposed path.
struct ExactEStep<'a> {
    pairs: &'a [(f64, f64)],
    rows: RowSource<'a>,
    /// Block geometry for the parallel path; `None` (and always for
    /// streamed rows) runs the serial body. The streamed source keeps
    /// its `O(m)` memory contract by re-evaluating each row once per
    /// iteration inside one sequential sweep — a parallel decomposition
    /// would either duplicate the density evaluations per column block
    /// or break bit-identity with a cross-block reduction, so streaming
    /// stays serial and `Forced` only applies to materialized rows.
    plan: Option<ParallelPlan>,
    /// Parallel scratch, interleaved `[denom, coeff, ll_term]` per row.
    dcl: Vec<f64>,
}

impl<'a> ExactEStep<'a> {
    fn new(pairs: &'a [(f64, f64)], rows: RowSource<'a>, plan: Option<ParallelPlan>) -> Self {
        let plan = match rows {
            RowSource::Dense { .. } => plan,
            RowSource::Streamed { .. } => None,
        };
        let scratch = if plan.is_some() { pairs.len() } else { 0 };
        ExactEStep { pairs, rows, plan, dcl: vec![0.0; 3 * scratch] }
    }

    /// Whether this solve will actually run the block-parallel path
    /// (a `Forced`/`Auto` plan survives only for dense rows).
    fn engaged(&self) -> bool {
        self.plan.is_some()
    }

    /// The block-parallel accumulate over dense rows, bit-identical to
    /// the serial body (see the `iterate` module docs for the scheme):
    ///
    /// * **Phase A, partitioned by rows**: each row's `dot(row, probs)`
    ///   denominator — the serial dot, whole — its update coefficient
    ///   `w / denom` (0 for skipped rows), and its `w * ln(denom)`
    ///   log-likelihood term when requested (the `ln` is the expensive
    ///   part, so it must not stay serial). All three land in one
    ///   interleaved scratch so a block touches only its own rows once.
    /// * **Serial chains**: `used_weight` and the log-likelihood sum the
    ///   per-row terms left to right, and the gather replays the serial
    ///   `axpy` sweep — row-major, rows in order, identical skip
    ///   structure — verbatim from the precomputed coefficients. The
    ///   gather stays serial deliberately: `next` accumulates across
    ///   *all* rows in a flat left-to-right chain, so a row partition
    ///   would need a cross-block reduction (not bit-identical) and a
    ///   column partition strides the row-major matrix (measured ~2x
    ///   slower than the serial sweep from cache-line waste alone).
    ///   Phase A is where the wins are: the dots and `ln`s dominate the
    ///   E-step and split perfectly along rows.
    fn accumulate_parallel(
        &mut self,
        plan: ParallelPlan,
        probs: &[f64],
        next: &mut [f64],
        need_ll: bool,
    ) -> (f64, f64) {
        let (values, m) = match &self.rows {
            RowSource::Dense { values, m } => (values.as_slice(), *m),
            RowSource::Streamed { .. } => unreachable!("streamed rows never carry a plan"),
        };
        let pairs = self.pairs;

        self.dcl.par_chunks_mut(3 * plan.row_block).enumerate().for_each(|(b, seg)| {
            let start = b * plan.row_block;
            for (j, trio) in seg.chunks_exact_mut(3).enumerate() {
                let i = start + j;
                let weight = pairs[i].0;
                let row = &values[i * m..(i + 1) * m];
                let denom = simd::dot(row, probs);
                trio[0] = denom;
                if denom <= f64::MIN_POSITIVE {
                    trio[1] = 0.0;
                    trio[2] = 0.0;
                } else {
                    trio[1] = weight / denom;
                    trio[2] = if need_ll { weight * denom.ln() } else { 0.0 };
                }
            }
        });

        let mut used_weight = 0.0;
        let mut log_likelihood = if need_ll { 0.0 } else { f64::NAN };
        for (i, &(weight, _)) in pairs.iter().enumerate() {
            if self.dcl[3 * i] <= f64::MIN_POSITIVE {
                continue;
            }
            used_weight += weight;
            if need_ll {
                log_likelihood += self.dcl[3 * i + 2];
            }
        }

        for i in 0..pairs.len() {
            if self.dcl[3 * i] <= f64::MIN_POSITIVE {
                continue;
            }
            let row = &values[i * m..(i + 1) * m];
            simd::axpy(self.dcl[3 * i + 1], row, next);
        }
        for (slot, p) in next.iter_mut().zip(probs) {
            *slot *= p;
        }
        (used_weight, log_likelihood)
    }
}

impl EStep for ExactEStep<'_> {
    fn accumulate(&mut self, probs: &[f64], next: &mut [f64], need_ll: bool) -> (f64, f64) {
        if let Some(plan) = self.plan {
            return self.accumulate_parallel(plan, probs, next, need_ll);
        }
        let mut used_weight = 0.0;
        let mut log_likelihood = if need_ll { 0.0 } else { f64::NAN };
        for (idx, &(weight, value)) in self.pairs.iter().enumerate() {
            let row = self.rows.row(idx, value);
            let denom = simd::dot(row, probs);
            if denom <= f64::MIN_POSITIVE {
                // No usable evidence this round (see the module docs).
                continue;
            }
            used_weight += weight;
            if need_ll {
                log_likelihood += weight * denom.ln();
            }
            simd::axpy(weight / denom, row, next);
        }
        for (slot, p) in next.iter_mut().zip(probs) {
            *slot *= p;
        }
        (used_weight, log_likelihood)
    }
}

/// What a [`ReconstructionJob`] reconstructs from: a raw perturbed sample
/// or pre-bucketed streaming sufficient statistics.
pub enum JobInput<'a> {
    /// The perturbed observations themselves.
    Sample(Cow<'a, [f64]>),
    /// A [`SuffStats`] sketch (ingested locally or merged from shards).
    /// Solved with the bucketed update regardless of the job's
    /// `config.mode` — the sketch carries no per-observation information.
    Stats(Cow<'a, SuffStats>),
}

/// One independent reconstruction problem for
/// [`ReconstructionEngine::reconstruct_many`].
pub struct ReconstructionJob<'a> {
    /// The public noise channel the observations went through.
    pub noise: &'a dyn NoiseDensity,
    /// Partition of the original attribute domain.
    pub partition: Partition,
    /// The observations, raw or as sufficient statistics.
    pub input: JobInput<'a>,
    /// Iteration parameters.
    pub config: ReconstructionConfig,
}

impl<'a> ReconstructionJob<'a> {
    /// A job borrowing its observations.
    pub fn borrowed(
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        observed: &'a [f64],
        config: ReconstructionConfig,
    ) -> Self {
        ReconstructionJob {
            noise,
            partition,
            input: JobInput::Sample(Cow::Borrowed(observed)),
            config,
        }
    }

    /// A job owning its observations.
    pub fn owned(
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        observed: Vec<f64>,
        config: ReconstructionConfig,
    ) -> Self {
        ReconstructionJob {
            noise,
            partition,
            input: JobInput::Sample(Cow::Owned(observed)),
            config,
        }
    }

    /// A job owning a sufficient-statistics sketch; the solve partition is
    /// the one the sketch was built over.
    pub fn from_stats(
        noise: &'a dyn NoiseDensity,
        stats: SuffStats,
        config: ReconstructionConfig,
    ) -> Self {
        let partition = stats.partition();
        ReconstructionJob { noise, partition, input: JobInput::Stats(Cow::Owned(stats)), config }
    }

    /// A job borrowing a sufficient-statistics sketch.
    pub fn borrowed_stats(
        noise: &'a dyn NoiseDensity,
        stats: &'a SuffStats,
        config: ReconstructionConfig,
    ) -> Self {
        let partition = stats.partition();
        ReconstructionJob { noise, partition, input: JobInput::Stats(Cow::Borrowed(stats)), config }
    }

    /// The raw observations, when the job carries a sample (stats jobs
    /// have none).
    pub fn observed(&self) -> Option<&[f64]> {
        match &self.input {
            JobInput::Sample(obs) => Some(obs),
            JobInput::Stats(_) => None,
        }
    }
}

/// Kernel cache state: map plus a running total of likelihood entries,
/// so the memory bound is on actual footprint rather than kernel count.
struct KernelCache {
    map: HashMap<KernelKey, Arc<KernelMatrix>>,
    entries: usize,
}

/// Lifetime counters of a kernel cache, returned by
/// [`ReconstructionEngine::cache_stats`] and
/// [`super::DiscreteReconstructionEngine::cache_stats`].
///
/// `misses` equals the engine's build counter ([`ReconstructionEngine::
/// kernel_builds`] / `factored_builds`): every miss builds, including
/// unfingerprinted channels that can never hit. `evictions` counts
/// *kernels discarded* by wholesale budget flushes, not flush events.
/// The serving layer's tests assert on these to prove the background
/// re-solver reuses one kernel across epochs instead of rebuilding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache without building.
    pub hits: usize,
    /// Lookups that had to build (== lifetime builds).
    pub misses: usize,
    /// Cached kernels discarded by budget flushes.
    pub evictions: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`; `0.0`
    /// before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reusable, thread-safe reconstruction engine with a likelihood-kernel
/// cache. See the [module docs](self) for the factorization and caching
/// rules.
///
/// # Example
///
/// ```
/// use ppdm_core::domain::{Domain, Partition};
/// use ppdm_core::randomize::NoiseModel;
/// use ppdm_core::reconstruct::{ReconstructionConfig, ReconstructionEngine};
/// use rand::{rngs::StdRng, Rng, SeedableRng};
///
/// // A sample perturbed through a public Gaussian channel.
/// let noise = NoiseModel::gaussian(10.0)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let originals: Vec<f64> = (0..2_000).map(|_| rng.gen_range(0.0..100.0)).collect();
/// let observed = noise.perturb_all(&originals, &mut rng);
///
/// // The engine reconstructs the original distribution; the likelihood
/// // kernel for this (noise, partition, kernel) geometry is cached, so a
/// // second call with the same geometry skips the precomputation.
/// let engine = ReconstructionEngine::new();
/// let partition = Partition::new(Domain::new(0.0, 100.0)?, 20)?;
/// let result = engine.reconstruct(&noise, partition, &observed, &ReconstructionConfig::bayes())?;
/// assert!((result.histogram.total() - 2_000.0).abs() < 1e-6);
/// assert_eq!(engine.cached_kernels(), 1);
/// engine.reconstruct(&noise, partition, &observed, &ReconstructionConfig::bayes())?;
/// assert_eq!(engine.cached_kernels(), 1);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
pub struct ReconstructionEngine {
    cache: RwLock<KernelCache>,
    /// Soft bound on total cached likelihood entries (`f64`s).
    entry_budget: usize,
    /// Exact mode materializes its `n x m` per-observation rows once when
    /// they fit this many entries, and streams them otherwise.
    exact_materialize_entries: usize,
    /// Total kernels ever built (cache misses + unfingerprinted
    /// channels), for tests and the bench harness's
    /// one-build-per-fingerprint assertions. Mirrors
    /// [`super::DiscreteReconstructionEngine::factored_builds`].
    builds: AtomicUsize,
    /// Lookups served from the cache (read-lock hits plus double-checked
    /// write-lock hits).
    hits: AtomicUsize,
    /// Kernels discarded by wholesale budget flushes.
    evictions: AtomicUsize,
    /// Block geometry used when a solve engages the parallel E-step.
    parallel_plan: ParallelPlan,
    /// Solves that actually engaged the block-parallel E-step (for the
    /// oversubscription assertions: an Auto batch fanned out by
    /// [`Self::reconstruct_many`] must leave this untouched).
    parallel_solves: AtomicUsize,
}

impl Default for ReconstructionEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReconstructionEngine {
    /// Default kernel-cache budget in likelihood entries (`f64`s): 4M
    /// entries = 32 MB. Typical kernels are `(m + k) x m` with `m <= 100`,
    /// i.e. tens of kilobytes, so this holds hundreds of geometries.
    pub const DEFAULT_CACHE_ENTRY_BUDGET: usize = 4_000_000;

    /// Default Exact-mode materialization budget (entries): below it the
    /// `n x m` row matrix is built once per call (32 MB at the default),
    /// above it rows are streamed with `O(m)` memory.
    pub const DEFAULT_EXACT_MATERIALIZE_ENTRIES: usize = 4_000_000;

    /// An engine with the default cache budget.
    pub fn new() -> Self {
        Self::with_cache_entry_budget(Self::DEFAULT_CACHE_ENTRY_BUDGET)
    }

    /// An engine whose kernel cache holds at most ~`budget` likelihood
    /// entries; the cache is flushed wholesale when an insert would
    /// exceed it (kernels are cheap to rebuild relative to the iterate
    /// they serve). A single kernel larger than the budget is still
    /// cached — the bound is soft by at most one kernel.
    pub fn with_cache_entry_budget(budget: usize) -> Self {
        ReconstructionEngine {
            cache: RwLock::new(KernelCache { map: HashMap::new(), entries: 0 }),
            entry_budget: budget,
            exact_materialize_entries: Self::DEFAULT_EXACT_MATERIALIZE_ENTRIES,
            builds: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            parallel_plan: ParallelPlan::default(),
            parallel_solves: AtomicUsize::new(0),
        }
    }

    /// Overrides the Exact-mode materialization threshold (in entries).
    /// `0` forces streaming; mostly useful for tests and memory-tight
    /// embedders.
    pub fn with_exact_materialize_entries(mut self, entries: usize) -> Self {
        self.exact_materialize_entries = entries;
        self
    }

    /// Overrides the parallel E-step's block geometry (rows per
    /// denominator block, cells per gather block; both clamped to ≥ 1).
    /// The defaults suit production; the determinism property suites use
    /// this to sweep block counts, since results are bit-identical for
    /// *every* block geometry, not just the default.
    pub fn with_parallel_blocks(mut self, row_block: usize, col_block: usize) -> Self {
        self.parallel_plan = ParallelPlan::new(row_block, col_block);
        self
    }

    /// How many solves engaged the block-parallel E-step over the
    /// engine's lifetime. Observability for the oversubscription
    /// contract: a large [`Self::reconstruct_many`] batch under
    /// [`super::ParallelPolicy::Auto`] claims the pool at the job level
    /// and must not add to this counter.
    pub fn parallel_solves(&self) -> usize {
        self.parallel_solves.load(Ordering::Relaxed)
    }

    /// Number of kernels currently cached (for tests and introspection).
    pub fn cached_kernels(&self) -> usize {
        self.cache.read().expect("kernel cache lock poisoned").map.len()
    }

    /// Total likelihood entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.cache.read().expect("kernel cache lock poisoned").entries
    }

    /// Total kernel matrices built over the engine's lifetime (cache
    /// misses + unfingerprinted channels). A warm workload over `d`
    /// distinct geometries reports exactly `d`. Mirrors
    /// [`super::DiscreteReconstructionEngine::factored_builds`].
    pub fn kernel_builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Lifetime cache counters; see [`CacheStats`]. `misses` equals
    /// [`Self::kernel_builds`].
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Returns the (possibly cached) kernel for one problem geometry, in
    /// the transposed layout the iterate consumes.
    fn kernel_for(
        &self,
        noise: &dyn NoiseDensity,
        partition: Partition,
        kernel: LikelihoodKernel,
    ) -> Result<Arc<KernelMatrix>> {
        let build = || {
            self.builds.fetch_add(1, Ordering::Relaxed);
            KernelMatrix::build_with_layout(noise, partition, kernel, KernelLayout::Transposed)
        };
        let Some(fingerprint) = noise.fingerprint() else {
            return Ok(Arc::new(build()?));
        };
        let key = KernelKey::new(fingerprint, partition, kernel);
        if let Some(hit) =
            self.cache.read().expect("kernel cache lock poisoned").map.get(&key).cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Build under the write lock (double-checked): when a cold batch
        // fans out jobs sharing one geometry, exactly one thread builds
        // the kernel and the rest wait for it instead of duplicating the
        // work.
        let mut cache = self.cache.write().expect("kernel cache lock poisoned");
        if let Some(hit) = cache.map.get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let built = Arc::new(build()?);
        if cache.entries + built.entries() > self.entry_budget && !cache.map.is_empty() {
            self.evictions.fetch_add(cache.map.len(), Ordering::Relaxed);
            cache.map.clear();
            cache.entries = 0;
        }
        cache.entries += built.entries();
        cache.map.insert(key, built.clone());
        Ok(built)
    }

    /// Reconstructs one problem. Behaviorally identical to
    /// [`super::reconstruct_reference`]; see the module docs for what is
    /// precomputed, cached, or streamed.
    pub fn reconstruct(
        &self,
        noise: &dyn NoiseDensity,
        partition: Partition,
        observed: &[f64],
        config: &ReconstructionConfig,
    ) -> Result<Reconstruction> {
        if observed.is_empty() {
            return Err(Error::NoObservations);
        }

        // Without noise the perturbed values are the originals.
        // (`try_from_values` rejects non-finite observations in the same
        // pass that buckets the rest — no separate validation sweep.)
        if noise.is_identity() {
            return Ok(Reconstruction {
                histogram: Histogram::try_from_values(partition, observed)?,
                iterations: 0,
                converged: true,
            });
        }

        let m = partition.len();
        let n = observed.len() as f64;
        match config.mode {
            UpdateMode::Bucketed => {
                // Bucket (and thereby validate) the observations *before*
                // fetching the kernel, so invalid input fails fast without
                // paying — or caching — an O((m+k)·m) kernel build.
                let (extended, _) = partition.extend_by(noise.span())?;
                let obs_hist = Histogram::try_from_values(extended, observed)?;
                let matrix = self.kernel_for(noise, partition, config.kernel)?;
                debug_assert_eq!(matrix.extended(), extended, "same span, same extension");
                self.solve_bucketed(&matrix, obs_hist.masses(), n, partition, config, None)
            }
            UpdateMode::Exact => {
                if let Some(bad) = observed.iter().find(|w| !w.is_finite()) {
                    return Err(Error::InvalidMass(format!("observation {bad} is not finite")));
                }
                let pairs: Vec<(f64, f64)> = observed.iter().map(|&w| (1.0, w)).collect();
                // Per-observation rows are never cached (they depend on
                // the sample), but when they fit the materialization
                // budget it is far cheaper to evaluate them once than to
                // re-evaluate n x m densities every iteration. Either
                // path computes identical values in identical order.
                let rows = if observed.len().saturating_mul(m) <= self.exact_materialize_entries {
                    let mut values = Vec::with_capacity(observed.len() * m);
                    for &(_, w) in &pairs {
                        for p in 0..m {
                            values.push(likelihood(noise, &partition, config.kernel, w, p));
                        }
                    }
                    RowSource::Dense { values, m }
                } else {
                    RowSource::Streamed {
                        noise,
                        partition,
                        kernel: config.kernel,
                        buf: vec![0.0; m],
                    }
                };
                let plan = engaged_plan(config.parallel, observed.len(), m, self.parallel_plan);
                let mut estep = ExactEStep::new(&pairs, rows, plan);
                if estep.engaged() {
                    self.parallel_solves.fetch_add(1, Ordering::Relaxed);
                }
                let out = run_iterate_core(
                    &mut estep,
                    m,
                    n,
                    &config.stopping,
                    config.max_iterations,
                    None,
                );
                finish(out, n, partition)
            }
        }
    }

    /// The shared bucketed solve: per-extended-bucket masses against a
    /// transposed kernel, through the vectorized iterate core.
    fn solve_bucketed(
        &self,
        matrix: &KernelMatrix,
        masses: &[f64],
        n: f64,
        partition: Partition,
        config: &ReconstructionConfig,
        initial: Option<&[f64]>,
    ) -> Result<Reconstruction> {
        let (active, weights) = matrix.active_problem(masses);
        let plan = engaged_plan(config.parallel, active.rows(), active.cells(), self.parallel_plan);
        if plan.is_some() {
            self.parallel_solves.fetch_add(1, Ordering::Relaxed);
        }
        let mut estep = TransposedEStep::with_plan(active, weights, plan);
        let out = run_iterate_core(
            &mut estep,
            partition.len(),
            n,
            &config.stopping,
            config.max_iterations,
            initial,
        );
        finish(out, n, partition)
    }

    /// Reconstructs from streaming sufficient statistics, optionally
    /// warm-starting EM from a previous posterior.
    ///
    /// With `initial: None` this is bit-identical to [`Self::reconstruct`]
    /// in [`UpdateMode::Bucketed`] on any sample with these statistics
    /// (the sketch is lossless for the bucketed update; `config.mode` is
    /// ignored because per-observation rows no longer exist). A warm
    /// start is floored away from zero and renormalized before use — EM
    /// cannot revive an exactly-zero cell, and newly ingested data may
    /// support cells the previous posterior had emptied.
    ///
    /// # Errors
    ///
    /// [`Error::NoObservations`] on an empty sketch;
    /// [`Error::ShardMismatch`] when `noise` does not match the channel
    /// the sketch was built against; [`Error::InvalidMass`] for a
    /// malformed `initial` vector.
    pub fn reconstruct_stats(
        &self,
        noise: &dyn NoiseDensity,
        stats: &SuffStats,
        config: &ReconstructionConfig,
        initial: Option<&[f64]>,
    ) -> Result<Reconstruction> {
        if stats.is_empty() {
            return Err(Error::NoObservations);
        }
        if noise.fingerprint() != Some(stats.fingerprint()) {
            return Err(Error::ShardMismatch(format!(
                "channel fingerprint {:?} does not match the sketch's {:?}",
                noise.fingerprint(),
                stats.fingerprint()
            )));
        }
        let partition = stats.partition();
        let n = stats.count() as f64;
        // Without noise the buckets are the original histogram.
        if noise.is_identity() {
            return Ok(Reconstruction {
                histogram: Histogram::from_mass(partition, stats.counts().to_vec())?,
                iterations: 0,
                converged: true,
            });
        }
        let m = partition.len();
        let warm = initial.map(|probs| floored_prior(probs, m)).transpose()?;
        let matrix = self.kernel_for(noise, partition, config.kernel)?;
        debug_assert_eq!(
            matrix.extended(),
            stats.extended(),
            "kernel and sketch extend the same partition by the same span"
        );
        self.solve_bucketed(&matrix, stats.counts(), n, partition, config, warm.as_deref())
    }

    /// Runs a batch of independent problems across worker threads,
    /// returning results in job order. Each job computes exactly what
    /// [`Self::reconstruct`] (or, for stats-backed jobs,
    /// [`Self::reconstruct_stats`] with no warm start) would serially;
    /// jobs sharing a `(noise, partition, kernel)` geometry share one
    /// cached kernel.
    pub fn reconstruct_many(&self, jobs: &[ReconstructionJob<'_>]) -> Vec<Result<Reconstruction>> {
        jobs.par_iter()
            .map(|job| match &job.input {
                JobInput::Sample(observed) => {
                    self.reconstruct(job.noise, job.partition, observed, &job.config)
                }
                JobInput::Stats(stats) => {
                    // The sketch is bound to its own partition; a job
                    // hand-built with a different one (the constructors
                    // make this impossible, the public fields don't) is a
                    // geometry mismatch, not a silent override.
                    if job.partition != stats.partition() {
                        return Err(Error::ShardMismatch(format!(
                            "job partition {:?} does not match the sketch's {:?}",
                            job.partition,
                            stats.partition()
                        )));
                    }
                    self.reconstruct_stats(job.noise, stats, &job.config, None)
                }
            })
            .collect()
    }
}

/// Validates a warm-start prior: floors every cell at a tiny positive
/// probability and renormalizes, so EM can move mass back into cells the
/// previous posterior had emptied. (Shared with the discrete engine's
/// warm starts — the semantics are identical.)
pub(crate) fn floored_prior(probs: &[f64], m: usize) -> Result<Vec<f64>> {
    const FLOOR: f64 = 1e-12;
    if probs.len() != m {
        return Err(Error::InvalidMass(format!(
            "warm-start prior has {} cells, partition has {m}",
            probs.len()
        )));
    }
    if let Some(bad) = probs.iter().find(|p| !p.is_finite() || **p < 0.0) {
        return Err(Error::InvalidMass(format!(
            "warm-start prior entries must be finite and >= 0, got {bad}"
        )));
    }
    let mut floored: Vec<f64> = probs.iter().map(|p| p.max(FLOOR)).collect();
    let total: f64 = floored.iter().sum();
    floored.iter_mut().for_each(|p| *p /= total);
    Ok(floored)
}

/// Scales the iterate's probability vector back to observation mass and
/// wraps it as a [`Reconstruction`].
fn finish(out: IterateOutcome, n: f64, partition: Partition) -> Result<Reconstruction> {
    let mass: Vec<f64> = out.probs.iter().map(|p| p * n).collect();
    Ok(Reconstruction {
        histogram: Histogram::from_mass(partition, mass)?,
        iterations: out.iterations,
        converged: out.converged,
    })
}

/// The process-wide engine behind the free [`crate::reconstruct::reconstruct`]
/// function: serial callers share cached kernels too.
pub fn shared_engine() -> &'static ReconstructionEngine {
    static SHARED: OnceLock<ReconstructionEngine> = OnceLock::new();
    SHARED.get_or_init(ReconstructionEngine::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::randomize::NoiseModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn part(cells: usize) -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
    }

    fn sample(n: usize, noise: &NoiseModel, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        noise.perturb_all(&xs, &mut rng)
    }

    #[test]
    fn kernel_rows_match_streamed_likelihoods() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let p = part(20);
        for kernel in [LikelihoodKernel::Midpoint, LikelihoodKernel::CellAverage] {
            let matrix = KernelMatrix::build(&noise, p, kernel).unwrap();
            for s in 0..matrix.extended().len() {
                let w = matrix.extended().midpoint(s);
                for cell in 0..p.len() {
                    assert_eq!(
                        matrix.row(s)[cell],
                        likelihood(&noise, &p, kernel, w, cell),
                        "kernel {kernel:?} bucket {s} cell {cell}"
                    );
                }
            }
        }
    }

    #[test]
    fn transposed_layout_holds_exactly_the_row_major_entries() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let p = part(23);
        for kernel in [LikelihoodKernel::Midpoint, LikelihoodKernel::CellAverage] {
            let rowwise = KernelMatrix::build(&noise, p, kernel).unwrap();
            let colwise =
                KernelMatrix::build_with_layout(&noise, p, kernel, KernelLayout::Transposed)
                    .unwrap();
            assert_eq!(rowwise.extended(), colwise.extended());
            assert_eq!(rowwise.entries(), colwise.entries());
            for s in 0..rowwise.extended().len() {
                for cell in 0..p.len() {
                    // Bit-exact: same likelihood evaluations, only the
                    // storage order differs.
                    assert_eq!(
                        rowwise.value(s, cell).to_bits(),
                        colwise.value(s, cell).to_bits(),
                        "kernel {kernel:?} bucket {s} cell {cell}"
                    );
                    assert_eq!(rowwise.row(s)[cell].to_bits(), colwise.column(cell)[s].to_bits());
                }
            }
        }
    }

    #[test]
    fn kernel_builds_counts_one_build_per_geometry() {
        let engine = ReconstructionEngine::new();
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let obs = sample(300, &noise, 9);
        let cfg = ReconstructionConfig::default();
        assert_eq!(engine.kernel_builds(), 0);
        for _ in 0..3 {
            engine.reconstruct(&noise, part(20), &obs, &cfg).unwrap();
        }
        assert_eq!(engine.kernel_builds(), 1, "warm repeats must not rebuild");
        engine.reconstruct(&noise, part(25), &obs, &cfg).unwrap();
        assert_eq!(engine.kernel_builds(), 2, "a new geometry builds exactly once");
    }

    #[test]
    fn cache_stats_track_hits_misses_and_evictions() {
        let engine = ReconstructionEngine::new();
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let obs = sample(300, &noise, 9);
        let cfg = ReconstructionConfig::default();
        assert_eq!(engine.cache_stats(), CacheStats::default());
        for _ in 0..4 {
            engine.reconstruct(&noise, part(20), &obs, &cfg).unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.misses, engine.kernel_builds());
        assert_eq!(stats.hits, 3, "three warm repeats hit the cached kernel");
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);

        // A tiny budget forces a wholesale flush on the second geometry,
        // evicting the first kernel.
        let tight = ReconstructionEngine::with_cache_entry_budget(1);
        tight.reconstruct(&noise, part(10), &obs, &cfg).unwrap();
        tight.reconstruct(&noise, part(12), &obs, &cfg).unwrap();
        let stats = tight.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1, "the first kernel was flushed to admit the second");
    }

    #[test]
    fn kernels_are_cached_by_identity() {
        let engine = ReconstructionEngine::new();
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let obs = sample(500, &noise, 1);
        let cfg = ReconstructionConfig::default();
        engine.reconstruct(&noise, part(20), &obs, &cfg).unwrap();
        assert_eq!(engine.cached_kernels(), 1);
        // Same geometry: no new kernel.
        engine.reconstruct(&noise, part(20), &sample(300, &noise, 2), &cfg).unwrap();
        assert_eq!(engine.cached_kernels(), 1);
        // New cell count, new noise, new kernel choice: three more.
        engine.reconstruct(&noise, part(25), &obs, &cfg).unwrap();
        let other = NoiseModel::uniform(10.0).unwrap();
        engine.reconstruct(&other, part(20), &obs, &cfg).unwrap();
        let em = ReconstructionConfig::em();
        engine.reconstruct(&noise, part(20), &obs, &em).unwrap();
        assert_eq!(engine.cached_kernels(), 4);
    }

    #[test]
    fn cache_entry_budget_is_bounded() {
        // Budget of 2000 entries: the cells=10 kernel is 18 x 10 = 180
        // entries, cells=29 is 53 x 29 = 1537, so the cache must flush
        // along the way rather than accumulate all twenty geometries.
        let engine = ReconstructionEngine::with_cache_entry_budget(2_000);
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let obs = sample(200, &noise, 3);
        let cfg = ReconstructionConfig::default();
        let mut max_kernels = 0;
        for cells in 10..30 {
            engine.reconstruct(&noise, part(cells), &obs, &cfg).unwrap();
            assert!(
                engine.cached_entries() <= 2_000 || engine.cached_kernels() == 1,
                "entry budget exceeded: {} entries over {} kernels",
                engine.cached_entries(),
                engine.cached_kernels()
            );
            max_kernels = max_kernels.max(engine.cached_kernels());
        }
        assert!(max_kernels < 20, "cache never flushed: held {max_kernels} kernels");
    }

    #[test]
    fn exact_mode_never_populates_the_kernel_cache() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let obs = sample(400, &noise, 4);
        let cfg = ReconstructionConfig { mode: UpdateMode::Exact, ..Default::default() };
        // Both the materialized and the forced-streaming Exact paths.
        let engine = ReconstructionEngine::new();
        let dense = engine.reconstruct(&noise, part(15), &obs, &cfg).unwrap();
        assert_eq!(engine.cached_kernels(), 0, "Exact mode must not populate the kernel cache");
        let streaming = ReconstructionEngine::new().with_exact_materialize_entries(0);
        let streamed = streaming.reconstruct(&noise, part(15), &obs, &cfg).unwrap();
        assert_eq!(streaming.cached_kernels(), 0);
        // Materialized and streamed rows are the same values in the same
        // order, so the two paths agree bit-for-bit.
        assert_eq!(dense, streamed);
    }

    #[test]
    fn reconstruct_many_preserves_job_order_and_errors() {
        let engine = ReconstructionEngine::new();
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let good = sample(300, &noise, 5);
        let cfg = ReconstructionConfig::default();
        let jobs = vec![
            ReconstructionJob::borrowed(&noise, part(10), &good, cfg),
            ReconstructionJob::owned(&noise, part(10), Vec::new(), cfg),
            ReconstructionJob::borrowed(&noise, part(12), &good, cfg),
        ];
        let results = engine.reconstruct_many(&jobs);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err(), &Error::NoObservations);
        assert_eq!(results[2].as_ref().unwrap().histogram.len(), 12);
    }

    #[test]
    fn batched_equals_serial() {
        let engine = ReconstructionEngine::new();
        let noise = NoiseModel::gaussian(15.0).unwrap();
        let cfg = ReconstructionConfig::default();
        let samples: Vec<Vec<f64>> = (0..6).map(|i| sample(400, &noise, 100 + i)).collect();
        let jobs: Vec<ReconstructionJob<'_>> = samples
            .iter()
            .map(|obs| ReconstructionJob::borrowed(&noise, part(18), obs, cfg))
            .collect();
        let batched = engine.reconstruct_many(&jobs);
        for (obs, batched) in samples.iter().zip(batched) {
            let serial = engine.reconstruct(&noise, part(18), obs, &cfg).unwrap();
            assert_eq!(serial, batched.unwrap());
        }
    }
}
