//! The Laplace (double-exponential) noise channel.
//!
//! Laplace noise is the additive channel of the differential-privacy
//! literature (the Laplace mechanism); here it joins AS00's uniform and
//! Gaussian channels as a third point on the privacy/accuracy frontier.
//! Its density has heavier tails than a Gaussian of equal variance but a
//! sharper peak, so at equal confidence-interval privacy it concentrates
//! more noise mass near zero — an interesting trade for reconstruction.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

use super::density::{NoiseDensity, NoiseFingerprint};

/// Number of Laplace scale parameters treated as the effective noise
/// support for bucketing purposes: the mass beyond `10 b` is
/// `e^{-10} ≈ 4.5e-5`, comparable to the Gaussian channel's 4-sigma cut.
const LAPLACE_SPAN_SCALES: f64 = 10.0;

/// Zero-mean Laplace noise with scale parameter `b`.
///
/// Density and CDF are exact:
///
/// ```text
/// f(y) = exp(-|y| / b) / (2 b)
/// F(y) = 1/2 + sign(y) * (1 - exp(-|y| / b)) / 2
/// ```
///
/// The standard deviation is `sqrt(2) b`; the tightest interval holding
/// the noise with confidence `c` is centered with width `-2 b ln(1 - c)`.
///
/// `Laplace` implements [`NoiseDensity`], so it plugs directly into the
/// reconstruction engine, streaming sketches, and the generic privacy
/// metrics — and it reports a stable fingerprint, so its likelihood
/// kernels are cached across calls like the built-in channels'.
///
/// # Example
///
/// ```
/// use ppdm_core::domain::{Domain, Partition};
/// use ppdm_core::randomize::{Laplace, NoiseDensity};
/// use ppdm_core::reconstruct::{reconstruct, ReconstructionConfig};
///
/// let noise = Laplace::new(5.0)?;
/// // Exact density and interval mass at the origin:
/// assert!((noise.density(0.0) - 0.1).abs() < 1e-12);
/// assert!((NoiseDensity::mass_between(&noise, -5.0, 5.0) - 0.632_12).abs() < 1e-4);
///
/// // Perturb a sample and reconstruct the original distribution.
/// let mut column = vec![0.0; 1_000];
/// noise.fill_noise(7, &mut column);
/// let observed: Vec<f64> = column.iter().map(|y| 50.0 + y).collect();
/// let partition = Partition::new(Domain::new(0.0, 100.0)?, 10)?;
/// let result = reconstruct(&noise, partition, &observed, &ReconstructionConfig::em())?;
/// assert!((result.histogram.total() - 1_000.0).abs() < 1e-6);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Laplace noise with scale `b > 0`.
    pub fn new(scale: f64) -> Result<Self> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(Error::InvalidNoiseParameter { name: "scale", value: scale });
        }
        Ok(Laplace { scale })
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Exact density `exp(-|y|/b) / (2b)`.
    #[inline]
    pub fn density(&self, y: f64) -> f64 {
        (-y.abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Exact CDF `1/2 + sign(y) (1 - exp(-|y|/b)) / 2`.
    #[inline]
    pub fn cdf(&self, y: f64) -> f64 {
        if y < 0.0 {
            0.5 * (y / self.scale).exp()
        } else {
            1.0 - 0.5 * (-y / self.scale).exp()
        }
    }

    /// Exact probability that the noise falls in `[a, b]`.
    pub fn mass_between(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.cdf(b) - self.cdf(a)
    }

    /// Effective support half-width used for bucketing
    /// (ten scale parameters; the mass beyond is `e^{-10}`).
    #[inline]
    pub fn span(&self) -> f64 {
        LAPLACE_SPAN_SCALES * self.scale
    }

    /// Standard deviation of the noise: `sqrt(2) b`.
    #[inline]
    pub fn noise_std_dev(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.scale
    }

    /// Width of the tightest centered interval holding the noise with
    /// confidence `c`: `-2 b ln(1 - c)` (exact; the density is symmetric
    /// and unimodal, so the centered interval is the shortest).
    #[inline]
    pub fn interval_width(&self, confidence: f64) -> f64 {
        -2.0 * self.scale * (1.0 - confidence).ln()
    }

    /// Differential entropy in bits: `log2(2 b e)`.
    #[inline]
    pub fn entropy_bits(&self) -> f64 {
        (2.0 * self.scale * std::f64::consts::E).log2()
    }

    /// Draws one noise value by exact inversion: an exponential magnitude
    /// `-b ln(1 - u)` with a random sign.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `gen_range(0.0..1.0)` never yields 1.0, so the log is finite.
        let u: f64 = rng.gen_range(0.0..1.0);
        let magnitude = -self.scale * (1.0 - u).ln();
        if rng.gen_bool(0.5) {
            magnitude
        } else {
            -magnitude
        }
    }
}

impl NoiseDensity for Laplace {
    fn density(&self, y: f64) -> f64 {
        Laplace::density(self, y)
    }

    fn mass_between(&self, a: f64, b: f64) -> f64 {
        Laplace::mass_between(self, a, b)
    }

    fn span(&self) -> f64 {
        Laplace::span(self)
    }

    fn unimodal(&self) -> bool {
        // Single mode at the origin.
        true
    }

    fn fingerprint(&self) -> Option<NoiseFingerprint> {
        Some(NoiseFingerprint::new("laplace", self.scale, 0.0))
    }

    fn fill_noise(&self, seed: u64, out: &mut [f64]) {
        super::density::fill_with_sampler(seed, out, |rng| self.sample_noise(rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
        assert!(Laplace::new(2.5).is_ok());
    }

    #[test]
    fn density_and_cdf_are_exact() {
        let l = Laplace::new(2.0).unwrap();
        assert!((l.density(0.0) - 0.25).abs() < 1e-15);
        assert!((l.density(2.0) - 0.25 * (-1.0_f64).exp()).abs() < 1e-15);
        assert!((l.density(-2.0) - l.density(2.0)).abs() < 1e-15);
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((l.cdf(f64::INFINITY) - 1.0).abs() < 1e-15);
        // Mass within one scale: 1 - e^{-1}.
        assert!((l.mass_between(-2.0, 2.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
        assert_eq!(l.mass_between(1.0, 1.0), 0.0);
        assert_eq!(l.mass_between(3.0, 1.0), 0.0);
    }

    #[test]
    fn density_integrates_to_mass() {
        // Trapezoid check of density vs analytic mass on a few intervals.
        let l = Laplace::new(1.5).unwrap();
        for (a, b) in [(-3.0, -1.0), (-1.0, 2.0), (0.5, 4.0)] {
            let steps = 20_000;
            let h = (b - a) / steps as f64;
            let mut sum = 0.5 * (l.density(a) + l.density(b));
            for i in 1..steps {
                sum += l.density(a + i as f64 * h);
            }
            let numeric = sum * h;
            let exact = l.mass_between(a, b);
            assert!((numeric - exact).abs() < 1e-6, "[{a}, {b}]: {numeric} vs {exact}");
        }
    }

    #[test]
    fn sampling_matches_moments_and_is_deterministic() {
        let l = Laplace::new(3.0).unwrap();
        let mut a = vec![0.0; 50_000];
        let mut b = vec![0.0; 50_000];
        NoiseDensity::fill_noise(&l, 5, &mut a);
        NoiseDensity::fill_noise(&l, 5, &mut b);
        assert_eq!(a, b);
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        let var = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.06, "mean {mean}");
        assert!((var.sqrt() - l.noise_std_dev()).abs() < 0.06, "std {}", var.sqrt());
    }

    #[test]
    fn interval_width_matches_mass() {
        let l = Laplace::new(4.0).unwrap();
        for c in [0.5, 0.9, 0.95, 0.999] {
            let w = l.interval_width(c);
            assert!((l.mass_between(-w / 2.0, w / 2.0) - c).abs() < 1e-12, "confidence {c}");
        }
    }

    #[test]
    fn span_covers_nearly_all_mass() {
        let l = Laplace::new(7.0).unwrap();
        assert!(l.mass_between(-l.span(), l.span()) > 1.0 - 1e-4);
    }

    #[test]
    fn serde_roundtrip() {
        let l = Laplace::new(2.5).unwrap();
        let json = serde_json::to_string(&l).unwrap();
        let back: Laplace = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
