//! The noise-channel abstraction consumed by the reconstruction engine.
//!
//! [`NoiseDensity`] is everything the *server* needs to know about the
//! randomization channel: its density, its interval masses, its effective
//! support, and (for batch perturbation on the *client* side) a way to
//! draw noise deterministically. [`super::NoiseModel`] implements it; so
//! can any custom channel, which then plugs into
//! [`crate::reconstruct::ReconstructionEngine`] unchanged. Channels that
//! report a stable [`NoiseFingerprint`] additionally get their likelihood
//! kernels cached and reused across reconstruction calls.

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::NoiseModel;

/// Stable identity of a noise channel, used as (part of) the kernel-cache
/// key in the reconstruction engine.
///
/// Two channels with equal fingerprints must have identical `density`,
/// `mass_between`, and `span` functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NoiseFingerprint {
    /// Channel family tag (e.g. `"uniform"`, `"gaussian"`, `"laplace"`,
    /// `"gauss-mix"`).
    pub kind: &'static str,
    /// Family parameters, bit-cast so the fingerprint is hashable. Unused
    /// slots hold `0.0_f64.to_bits()`.
    pub params: [u64; 3],
}

impl NoiseFingerprint {
    /// Builds a fingerprint from a family tag and up to two parameters.
    pub fn new(kind: &'static str, a: f64, b: f64) -> Self {
        Self::with_params(kind, [a, b, 0.0])
    }

    /// Builds a fingerprint from a family tag and up to three parameters
    /// (families with more parameters should hash them down to three).
    pub fn with_params(kind: &'static str, params: [f64; 3]) -> Self {
        NoiseFingerprint { kind, params: params.map(f64::to_bits) }
    }
}

/// Fills `out` by looping a per-draw sampler over a seed-derived
/// [`StdRng`]. Shared by every built-in channel's `fill_noise` — and by
/// the [`NoiseModel`] wrappers — so a wrapped channel and the bare
/// struct produce bit-identical noise streams from identical seeds (the
/// invariant the shared fingerprint, and hence kernel-cache sharing,
/// relies on).
pub(crate) fn fill_with_sampler(
    seed: u64,
    out: &mut [f64],
    mut sample: impl FnMut(&mut StdRng) -> f64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for o in out.iter_mut() {
        *o = sample(&mut rng);
    }
}

/// Discrete counterpart of [`fill_with_sampler`]: maps each true state
/// through a per-value sampler over one seed-derived [`StdRng`] stream.
/// Used by [`super::DiscreteChannel::fill_states`] overrides so native
/// sampling stays deterministic by `(channel, seed)`.
pub(crate) fn fill_with_sampler_usize(
    seed: u64,
    truth: &[usize],
    out: &mut [usize],
    mut sample: impl FnMut(usize, &mut StdRng) -> usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for (&t, o) in truth.iter().zip(out.iter_mut()) {
        *o = sample(t, &mut rng);
    }
}

/// A (public) additive-noise channel as seen by the reconstruction
/// algorithms.
///
/// Object-safe so engines and jobs can hold `&dyn NoiseDensity`.
pub trait NoiseDensity: Send + Sync {
    /// Density of the noise distribution at `y`.
    fn density(&self, y: f64) -> f64;

    /// Probability that the noise falls in `[a, b]`.
    fn mass_between(&self, a: f64, b: f64) -> f64;

    /// Half-width of the effective noise support; reconstruction extends
    /// the attribute partition by this much so (nearly) every observed
    /// value lands in a bucket.
    fn span(&self) -> f64;

    /// Whether the channel is the identity (no noise at all), in which
    /// case reconstruction degenerates to an empirical histogram.
    fn is_identity(&self) -> bool {
        false
    }

    /// Whether the density has a single mode. Placement searches in
    /// [`crate::privacy::interval`] may use a fast coarse-grid + ternary
    /// refinement when this returns `true`; the conservative default
    /// (`false`) routes custom channels through the guaranteed piecewise
    /// scan, which is slower but correct for any density shape. Only
    /// claim unimodality when the interval-mass function
    /// `w -> mass_between(a, a + w)` is unimodal in the placement `a` for
    /// every width — true exactly when the density has one mode.
    fn unimodal(&self) -> bool {
        false
    }

    /// Stable identity for likelihood-kernel caching, or `None` to opt
    /// out (kernels are then rebuilt per reconstruction call).
    fn fingerprint(&self) -> Option<NoiseFingerprint> {
        None
    }

    /// Deterministically fills `out` with independent noise draws.
    ///
    /// The default implementation inverts `mass_between` by bisection over
    /// `[-span, span]` — correct for any channel whose support the span
    /// covers, at ~55 CDF evaluations per draw. Concrete models should
    /// override with native sampling.
    fn fill_noise(&self, seed: u64, out: &mut [f64]) {
        let span = self.span();
        if span <= 0.0 {
            out.iter_mut().for_each(|o| *o = 0.0);
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let total = self.mass_between(-span, span);
        for o in out.iter_mut() {
            let u = rand::Rng::gen_range(&mut rng, 0.0..1.0) * total;
            let (mut lo, mut hi) = (-span, span);
            for _ in 0..55 {
                let mid = 0.5 * (lo + hi);
                if self.mass_between(-span, mid) < u {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            *o = 0.5 * (lo + hi);
        }
    }
}

impl NoiseDensity for NoiseModel {
    fn density(&self, y: f64) -> f64 {
        NoiseModel::density(self, y)
    }

    fn mass_between(&self, a: f64, b: f64) -> f64 {
        NoiseModel::mass_between(self, a, b)
    }

    fn span(&self) -> f64 {
        NoiseModel::span(self)
    }

    fn is_identity(&self) -> bool {
        self.is_none()
    }

    fn unimodal(&self) -> bool {
        // Every built-in family is zero-mean with a single mode at the
        // origin (the mixture's components share that mode).
        true
    }

    fn fingerprint(&self) -> Option<NoiseFingerprint> {
        match *self {
            NoiseModel::None => Some(NoiseFingerprint::new("none", 0.0, 0.0)),
            NoiseModel::Uniform { half_width } => {
                Some(NoiseFingerprint::new("uniform", half_width, 0.0))
            }
            NoiseModel::Gaussian { std_dev } => {
                Some(NoiseFingerprint::new("gaussian", std_dev, 0.0))
            }
            // Delegate so a wrapped channel and the bare struct share one
            // fingerprint (and hence one cached kernel per geometry).
            NoiseModel::Laplace { ref channel } => channel.fingerprint(),
            NoiseModel::GaussianMixture { ref channel } => channel.fingerprint(),
        }
    }

    fn fill_noise(&self, seed: u64, out: &mut [f64]) {
        fill_with_sampler(seed, out, |rng| self.sample_noise(rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_distinguish_models() {
        let a = NoiseDensity::fingerprint(&NoiseModel::uniform(5.0).unwrap()).unwrap();
        let b = NoiseDensity::fingerprint(&NoiseModel::gaussian(5.0).unwrap()).unwrap();
        let c = NoiseDensity::fingerprint(&NoiseModel::uniform(6.0).unwrap()).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        let a2 = NoiseDensity::fingerprint(&NoiseModel::uniform(5.0).unwrap()).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn model_fill_noise_is_deterministic_and_matches_moments() {
        let noise = NoiseModel::gaussian(2.0).unwrap();
        let mut a = vec![0.0; 50_000];
        let mut b = vec![0.0; 50_000];
        NoiseDensity::fill_noise(&noise, 7, &mut a);
        NoiseDensity::fill_noise(&noise, 7, &mut b);
        assert_eq!(a, b);
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        let var = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    /// A density-only channel exercising the default bisection sampler.
    struct CdfOnly(NoiseModel);

    impl NoiseDensity for CdfOnly {
        fn density(&self, y: f64) -> f64 {
            NoiseModel::density(&self.0, y)
        }

        fn mass_between(&self, a: f64, b: f64) -> f64 {
            NoiseModel::mass_between(&self.0, a, b)
        }

        fn span(&self) -> f64 {
            NoiseModel::span(&self.0)
        }
    }

    #[test]
    fn default_fill_noise_inverts_the_cdf() {
        let channel = CdfOnly(NoiseModel::uniform(3.0).unwrap());
        let mut xs = vec![0.0; 20_000];
        channel.fill_noise(3, &mut xs);
        assert!(xs.iter().all(|x| (-3.0..=3.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.06, "mean {mean}");
        // Uniform(-3,3) variance = 3.
        assert!((var - 3.0).abs() < 0.1, "var {var}");
    }
}
