//! The discrete-channel abstraction — the categorical analogue of
//! [`super::NoiseDensity`].
//!
//! AS00 treats numeric value distortion and categorical randomization as
//! two faces of the same idea: the server observes data through a known
//! randomization channel and inverts that channel to recover the original
//! distribution. [`DiscreteChannel`] is everything the server needs to
//! know about a *categorical* channel over `k` states: its transition
//! probabilities, a stable [`ChannelFingerprint`] (so factored channel
//! matrices can be cached across reconstruction calls, exactly like
//! likelihood kernels for continuous channels), native sampling for the
//! client side, and exact posterior columns for privacy accounting.
//!
//! Built-in implementors:
//!
//! * [`super::RandomizedResponse`] — Warner's keep-or-uniformly-resample
//!   channel for categorical attributes;
//! * [`StochasticMatrix`] — the escape hatch: any explicit column-wise
//!   transition matrix becomes a channel (custom survey designs,
//!   empirically measured channels, compositions);
//! * `ppdm_assoc::PartialMatchChannel` — the per-itemset-size channel of
//!   randomized-transaction support estimation.
//!
//! All of them plug into
//! [`crate::reconstruct::DiscreteReconstructionEngine`] unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{Error, Result};

/// Stable identity of a discrete channel, used as the factored-channel
/// cache key in [`crate::reconstruct::DiscreteReconstructionEngine`].
///
/// Two channels with equal fingerprints must have identical state counts
/// and transition matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelFingerprint {
    /// Channel family tag (e.g. `"randomized-response"`,
    /// `"partial-match"`, `"matrix"`).
    pub kind: &'static str,
    /// Number of states the channel is defined over.
    pub states: usize,
    /// Family parameters, bit-cast so the fingerprint is hashable.
    /// Families with more than three parameters should hash them down
    /// (see [`hash_params`]). Unused slots hold `0.0_f64.to_bits()`.
    pub params: [u64; 3],
}

impl ChannelFingerprint {
    /// Builds a fingerprint from a family tag, a state count, and up to
    /// two parameters.
    pub fn new(kind: &'static str, states: usize, a: f64, b: f64) -> Self {
        Self::with_params(kind, states, [a, b, 0.0])
    }

    /// Builds a fingerprint from a family tag, a state count, and up to
    /// three parameters.
    pub fn with_params(kind: &'static str, states: usize, params: [f64; 3]) -> Self {
        ChannelFingerprint { kind, states, params: params.map(f64::to_bits) }
    }
}

/// Hashes an arbitrary slice of channel parameters down to one `u64`
/// (FNV-1a over the IEEE-754 bit patterns), for families whose parameter
/// count exceeds a fingerprint's three slots — e.g. a full
/// [`StochasticMatrix`]. Pair it with [`hash_params_mixed`] in a second
/// fingerprint slot for a 128-bit digest.
pub fn hash_params(values: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// A second, independent 64-bit digest of the same parameters
/// (SplitMix64 finalization folded over position-salted words). Distinct
/// from [`hash_params`] so the pair behaves as one 128-bit digest:
/// a collision requires both hashes to collide simultaneously.
pub fn hash_params_mixed(values: &[f64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for (i, v) in values.iter().enumerate() {
        let mut z =
            h ^ v.to_bits() ^ ((i as u64).wrapping_add(1).wrapping_mul(0xD134_2543_DE82_EF95));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// A (public) discrete randomization channel over `k` states, as seen by
/// the reconstruction algorithms.
///
/// The channel is described by its transition matrix: for a true state
/// `t`, the observed state is drawn from the distribution
/// `o -> transition(o, t)`. Each *truth column* must sum to one
/// (equivalently, the matrix is row-stochastic when laid out with rows
/// indexed by the true state).
///
/// Object-safe so engines and jobs can hold `&dyn DiscreteChannel`.
pub trait DiscreteChannel: Send + Sync {
    /// Number of states `k` (both true and observed states live in
    /// `0..k`).
    fn states(&self) -> usize;

    /// `P(observe state `observed` | true state `truth`)`.
    ///
    /// Callers guarantee `observed < states()` and `truth < states()`.
    fn transition(&self, observed: usize, truth: usize) -> f64;

    /// The full transition matrix, row-major with rows indexed by the
    /// *observed* state: entry `[observed * states + truth]` is
    /// [`Self::transition`]`(observed, truth)`. This is the layout the
    /// reconstruction engine factors and caches.
    fn matrix(&self) -> Vec<f64> {
        let k = self.states();
        let mut m = Vec::with_capacity(k * k);
        for observed in 0..k {
            for truth in 0..k {
                m.push(self.transition(observed, truth));
            }
        }
        m
    }

    /// Whether the channel is the identity (reporting is truthful), in
    /// which case reconstruction degenerates to the observed counts.
    fn is_identity(&self) -> bool {
        false
    }

    /// Stable identity for factored-channel caching, or `None` to opt
    /// out (the channel matrix is then re-factored per reconstruction
    /// call).
    fn fingerprint(&self) -> Option<ChannelFingerprint> {
        None
    }

    /// Deterministically perturbs a batch of true states into `out`
    /// (parallel slices) — the client-side half of the channel, the
    /// discrete analogue of [`super::NoiseDensity::fill_noise`].
    ///
    /// The default implementation walks each truth column's CDF with a
    /// seed-derived [`StdRng`]; concrete channels should override with
    /// native sampling when they have one.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] when the slices disagree;
    /// [`Error::StateOutOfRange`] when any true state is `>= states()`.
    fn fill_states(&self, seed: u64, truth: &[usize], out: &mut [usize]) -> Result<()> {
        if truth.len() != out.len() {
            return Err(Error::LengthMismatch { left: truth.len(), right: out.len() });
        }
        let k = self.states();
        if let Some(&bad) = truth.iter().find(|&&t| t >= k) {
            return Err(Error::StateOutOfRange { state: bad, states: k });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for (&t, o) in truth.iter().zip(out.iter_mut()) {
            let u: f64 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            let mut chosen = k - 1;
            for observed in 0..k {
                acc += self.transition(observed, t);
                if u < acc {
                    chosen = observed;
                    break;
                }
            }
            *o = chosen;
        }
        Ok(())
    }

    /// Exact posterior column of the channel: `P(truth = t | observed)`
    /// under the given prior over true states (Bayes' rule on the
    /// transition column). This is the quantity behind the
    /// privacy-breach metrics of the randomization literature (see
    /// [`crate::privacy::discrete`]).
    ///
    /// # Errors
    ///
    /// [`Error::StateOutOfRange`] for `observed >= states()`;
    /// [`Error::CategoryMismatch`] when the prior's length is not
    /// `states()`; [`Error::InvalidMass`] for a prior with negative,
    /// non-finite, or all-zero mass.
    fn posterior_column(&self, prior: &[f64], observed: usize) -> Result<Vec<f64>> {
        let k = self.states();
        if observed >= k {
            return Err(Error::StateOutOfRange { state: observed, states: k });
        }
        if prior.len() != k {
            return Err(Error::CategoryMismatch { expected: k, found: prior.len() });
        }
        if let Some(bad) = prior.iter().find(|p| !p.is_finite() || **p < 0.0) {
            return Err(Error::InvalidMass(format!(
                "prior entries must be finite and >= 0, got {bad}"
            )));
        }
        let joint: Vec<f64> =
            prior.iter().enumerate().map(|(t, p)| self.transition(observed, t) * p).collect();
        let total: f64 = joint.iter().sum();
        if total <= 0.0 {
            return Err(Error::InvalidMass(format!(
                "observed state {observed} has zero probability under the prior"
            )));
        }
        Ok(joint.into_iter().map(|j| j / total).collect())
    }
}

/// The escape hatch: an arbitrary explicit transition matrix as a
/// [`DiscreteChannel`].
///
/// Stored row-major with rows indexed by the observed state (the same
/// layout [`DiscreteChannel::matrix`] returns); the constructor validates
/// that every truth column is a probability distribution. The fingerprint
/// carries the state count plus a 128-bit digest of every entry (two
/// independent 64-bit hashes), so two matrices share a cached
/// factorization only when they are bit-identical — up to digest
/// collisions, whose probability is negligible (~2^-128 per pair; a
/// channel that must rule even that out can implement
/// [`DiscreteChannel`] directly with a parametric fingerprint).
///
/// # Example
///
/// ```
/// use ppdm_core::randomize::{DiscreteChannel, StochasticMatrix};
///
/// // A 2-state channel that reports truthfully 90% / 80% of the time.
/// let channel = StochasticMatrix::new(2, vec![0.9, 0.2, 0.1, 0.8])?;
/// assert_eq!(channel.states(), 2);
/// assert_eq!(channel.transition(1, 0), 0.1);
/// assert!(channel.fingerprint().is_some());
/// # Ok::<(), ppdm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMatrix {
    states: usize,
    /// Row-major `[observed][truth]` transition probabilities.
    values: Vec<f64>,
}

/// Tolerance on each truth column's total probability at construction.
const COLUMN_SUM_TOLERANCE: f64 = 1e-9;

impl StochasticMatrix {
    /// Creates a channel over `states >= 2` states from a row-major
    /// `[observed][truth]` matrix whose truth columns each sum to one.
    pub fn new(states: usize, values: Vec<f64>) -> Result<Self> {
        if states < 2 {
            return Err(Error::InvalidStateCount { found: states });
        }
        if values.len() != states * states {
            return Err(Error::LengthMismatch { left: values.len(), right: states * states });
        }
        if let Some(bad) = values.iter().find(|v| !v.is_finite() || **v < 0.0) {
            return Err(Error::InvalidMass(format!(
                "transition probabilities must be finite and >= 0, got {bad}"
            )));
        }
        for truth in 0..states {
            let col_sum: f64 = (0..states).map(|o| values[o * states + truth]).sum();
            if (col_sum - 1.0).abs() > COLUMN_SUM_TOLERANCE {
                return Err(Error::InvalidMass(format!(
                    "truth column {truth} sums to {col_sum}, expected 1"
                )));
            }
        }
        Ok(StochasticMatrix { states, values })
    }

    /// Builds the channel from a [`DiscreteChannel`]'s transition matrix
    /// (useful for snapshotting or composing channels).
    pub fn from_channel(channel: &dyn DiscreteChannel) -> Result<Self> {
        Self::new(channel.states(), channel.matrix())
    }
}

impl DiscreteChannel for StochasticMatrix {
    fn states(&self) -> usize {
        self.states
    }

    fn transition(&self, observed: usize, truth: usize) -> f64 {
        self.values[observed * self.states + truth]
    }

    fn matrix(&self) -> Vec<f64> {
        self.values.clone()
    }

    fn is_identity(&self) -> bool {
        (0..self.states).all(|t| self.transition(t, t) == 1.0)
    }

    fn fingerprint(&self) -> Option<ChannelFingerprint> {
        Some(ChannelFingerprint {
            kind: "matrix",
            states: self.states,
            params: [
                hash_params(&self.values),
                hash_params_mixed(&self.values),
                self.states as u64,
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomize::RandomizedResponse;

    fn flat(states: usize) -> StochasticMatrix {
        let p = 1.0 / states as f64;
        StochasticMatrix::new(states, vec![p; states * states]).unwrap()
    }

    #[test]
    fn matrix_constructor_validates() {
        assert!(matches!(
            StochasticMatrix::new(1, vec![1.0]),
            Err(Error::InvalidStateCount { found: 1 })
        ));
        assert!(matches!(
            StochasticMatrix::new(2, vec![1.0; 3]),
            Err(Error::LengthMismatch { .. })
        ));
        // Truth column 0 sums to 1.1.
        assert!(StochasticMatrix::new(2, vec![0.9, 0.2, 0.2, 0.8]).is_err());
        assert!(StochasticMatrix::new(2, vec![0.9, f64::NAN, 0.1, 1.0]).is_err());
        assert!(StochasticMatrix::new(2, vec![0.9, 0.2, 0.1, 0.8]).is_ok());
    }

    #[test]
    fn identity_matrix_is_identity_channel() {
        let id = StochasticMatrix::new(3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]).unwrap();
        assert!(id.is_identity());
        assert!(!flat(3).is_identity());
    }

    #[test]
    fn fingerprint_distinguishes_matrices() {
        let a = flat(3).fingerprint().unwrap();
        let b = flat(4).fingerprint().unwrap();
        let c = StochasticMatrix::new(3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1.])
            .unwrap()
            .fingerprint()
            .unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, flat(3).fingerprint().unwrap());
    }

    #[test]
    fn matrix_round_trips_through_from_channel() {
        let rr = RandomizedResponse::new(4, 0.7).unwrap();
        let snap = StochasticMatrix::from_channel(&rr).unwrap();
        assert_eq!(snap.matrix(), rr.matrix());
        assert_eq!(snap.states(), rr.states());
    }

    #[test]
    fn default_fill_states_matches_transition_frequencies() {
        let m =
            StochasticMatrix::new(3, vec![0.6, 0.1, 0.2, 0.3, 0.8, 0.3, 0.1, 0.1, 0.5]).unwrap();
        let truth = vec![1usize; 40_000];
        let mut out = vec![0usize; truth.len()];
        m.fill_states(9, &truth, &mut out).unwrap();
        let mut counts = [0usize; 3];
        for &o in &out {
            counts[o] += 1;
        }
        for (o, &c) in counts.iter().enumerate() {
            let rate = c as f64 / truth.len() as f64;
            let expect = m.transition(o, 1);
            assert!((rate - expect).abs() < 0.01, "observed {o}: {rate} vs {expect}");
        }
        // Deterministic by seed.
        let mut again = vec![0usize; truth.len()];
        m.fill_states(9, &truth, &mut again).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn fill_states_validates_inputs() {
        let m = flat(3);
        let mut out = vec![0usize; 2];
        assert!(matches!(m.fill_states(1, &[0], &mut out), Err(Error::LengthMismatch { .. })));
        assert!(matches!(
            m.fill_states(1, &[0, 3], &mut out),
            Err(Error::StateOutOfRange { state: 3, states: 3 })
        ));
    }

    #[test]
    fn posterior_column_applies_bayes_rule() {
        let rr = RandomizedResponse::new(2, 0.6).unwrap();
        // Prior [0.9, 0.1]: seeing state 1 should raise its posterior
        // above the prior but keep it below certainty.
        let post = rr.posterior_column(&[0.9, 0.1], 1).unwrap();
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(post[1] > 0.1 && post[1] < 1.0, "posterior {post:?}");
        // Hand-checked Bayes: P(o=1|t=1) = 0.8, P(o=1|t=0) = 0.2.
        let expect = 0.8 * 0.1 / (0.8 * 0.1 + 0.2 * 0.9);
        assert!((post[1] - expect).abs() < 1e-12);
    }

    #[test]
    fn posterior_column_validates() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        assert!(matches!(
            rr.posterior_column(&[1.0, 0.0, 0.0], 3),
            Err(Error::StateOutOfRange { .. })
        ));
        assert!(matches!(rr.posterior_column(&[1.0, 0.0], 0), Err(Error::CategoryMismatch { .. })));
        assert!(rr.posterior_column(&[0.0, 0.0, 0.0], 0).is_err());
        assert!(rr.posterior_column(&[-1.0, 1.0, 1.0], 0).is_err());
    }

    #[test]
    fn hash_params_is_order_sensitive() {
        assert_ne!(hash_params(&[1.0, 2.0]), hash_params(&[2.0, 1.0]));
        assert_eq!(hash_params(&[1.0, 2.0]), hash_params(&[1.0, 2.0]));
        // The second digest is independent of the first (different
        // construction), order-sensitive, and deterministic.
        assert_ne!(hash_params_mixed(&[1.0, 2.0]), hash_params(&[1.0, 2.0]));
        assert_ne!(hash_params_mixed(&[1.0, 2.0]), hash_params_mixed(&[2.0, 1.0]));
        assert_eq!(hash_params_mixed(&[1.0, 2.0]), hash_params_mixed(&[1.0, 2.0]));
    }
}
