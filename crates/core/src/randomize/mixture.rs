//! The two-component Gaussian scale-mixture noise channel.
//!
//! A mixture of a narrow and a wide zero-mean Gaussian models a
//! heterogeneous client population (most clients add light noise, a
//! fraction adds heavy noise) and produces a heavy-tailed but still
//! smooth channel — a shape neither the uniform, Gaussian, nor Laplace
//! families can express. Both components share mean zero, so the density
//! stays symmetric and unimodal and the confidence-interval privacy
//! metric remains well behaved.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::stats::special::{normal_cdf, normal_pdf};

use super::density::{NoiseDensity, NoiseFingerprint};

/// Number of wide-component standard deviations treated as the effective
/// support; matches the plain Gaussian channel's 4-sigma cut (the mass
/// beyond is below `7e-5` for any mixture weight).
const MIXTURE_SPAN_SIGMAS: f64 = 4.0;

/// Zero-mean two-component Gaussian mixture noise.
///
/// With narrow standard deviation `s_n`, wide standard deviation `s_w`
/// and wide-component weight `p`, the density and CDF are exact:
///
/// ```text
/// f(y) = (1 - p) * phi(y / s_n) / s_n  +  p * phi(y / s_w) / s_w
/// F(y) = (1 - p) * Phi(y / s_n)        +  p * Phi(y / s_w)
/// ```
///
/// where `phi`/`Phi` are the standard normal density/CDF. The variance is
/// `(1 - p) s_n^2 + p s_w^2`.
///
/// `GaussianMixture` implements [`NoiseDensity`], so it plugs directly
/// into the reconstruction engine, streaming sketches, and the generic
/// privacy metrics, with a stable fingerprint for kernel caching.
///
/// # Example
///
/// ```
/// use ppdm_core::randomize::{GaussianMixture, NoiseDensity};
///
/// // 80% of clients draw sigma = 5 noise, 20% draw sigma = 20.
/// let noise = GaussianMixture::new(5.0, 20.0, 0.2)?;
/// // The exact mixture CDF integrates to 1 over the effective support:
/// let span = noise.span();
/// assert!(NoiseDensity::mass_between(&noise, -span, span) > 0.9999);
/// // Heavier tails than a single Gaussian of the narrow sigma:
/// assert!(noise.density(30.0) > 1e-6);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    std_dev_narrow: f64,
    std_dev_wide: f64,
    weight_wide: f64,
}

impl GaussianMixture {
    /// A mixture of `Normal(0, std_dev_narrow)` (weight `1 - weight_wide`)
    /// and `Normal(0, std_dev_wide)` (weight `weight_wide`).
    ///
    /// Requires `0 < std_dev_narrow <= std_dev_wide` (both finite) and
    /// `weight_wide` in `(0, 1)` — a degenerate weight is just a plain
    /// Gaussian, which [`super::NoiseModel::Gaussian`] already covers.
    pub fn new(std_dev_narrow: f64, std_dev_wide: f64, weight_wide: f64) -> Result<Self> {
        if !std_dev_narrow.is_finite() || std_dev_narrow <= 0.0 {
            return Err(Error::InvalidNoiseParameter {
                name: "std_dev_narrow",
                value: std_dev_narrow,
            });
        }
        if !std_dev_wide.is_finite() || std_dev_wide < std_dev_narrow {
            return Err(Error::InvalidNoiseParameter { name: "std_dev_wide", value: std_dev_wide });
        }
        if !(weight_wide > 0.0 && weight_wide < 1.0) {
            return Err(Error::InvalidProbability { name: "weight_wide", value: weight_wide });
        }
        Ok(GaussianMixture { std_dev_narrow, std_dev_wide, weight_wide })
    }

    /// Standard deviation of the narrow component.
    #[inline]
    pub fn std_dev_narrow(&self) -> f64 {
        self.std_dev_narrow
    }

    /// Standard deviation of the wide component.
    #[inline]
    pub fn std_dev_wide(&self) -> f64 {
        self.std_dev_wide
    }

    /// Weight of the wide component, in `(0, 1)`.
    #[inline]
    pub fn weight_wide(&self) -> f64 {
        self.weight_wide
    }

    /// Exact mixture density.
    pub fn density(&self, y: f64) -> f64 {
        let narrow = normal_pdf(y / self.std_dev_narrow) / self.std_dev_narrow;
        let wide = normal_pdf(y / self.std_dev_wide) / self.std_dev_wide;
        (1.0 - self.weight_wide) * narrow + self.weight_wide * wide
    }

    /// Exact mixture CDF.
    pub fn cdf(&self, y: f64) -> f64 {
        (1.0 - self.weight_wide) * normal_cdf(y / self.std_dev_narrow)
            + self.weight_wide * normal_cdf(y / self.std_dev_wide)
    }

    /// Exact probability that the noise falls in `[a, b]`.
    pub fn mass_between(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.cdf(b) - self.cdf(a)
    }

    /// Effective support half-width used for bucketing
    /// (four wide-component standard deviations, matching the plain
    /// Gaussian channel's cut).
    #[inline]
    pub fn span(&self) -> f64 {
        MIXTURE_SPAN_SIGMAS * self.std_dev_wide
    }

    /// Standard deviation of the mixture:
    /// `sqrt((1 - p) s_n^2 + p s_w^2)`.
    pub fn noise_std_dev(&self) -> f64 {
        ((1.0 - self.weight_wide) * self.std_dev_narrow * self.std_dev_narrow
            + self.weight_wide * self.std_dev_wide * self.std_dev_wide)
            .sqrt()
    }

    /// The mixture scaled by `factor > 0` (both sigmas multiplied, weight
    /// kept). Scaling is exact for every interval quantity: densities
    /// compress by `1/factor` and interval widths stretch by `factor`.
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(Error::InvalidNoiseParameter { name: "factor", value: factor });
        }
        GaussianMixture::new(
            factor * self.std_dev_narrow,
            factor * self.std_dev_wide,
            self.weight_wide,
        )
    }

    /// Draws one noise value: pick a component by weight, then sample it.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let sigma =
            if rng.gen_bool(self.weight_wide) { self.std_dev_wide } else { self.std_dev_narrow };
        // Parameters validated at construction; Normal::new only fails on
        // non-finite sigma.
        Normal::new(0.0, sigma).expect("validated std_dev").sample(rng)
    }
}

impl NoiseDensity for GaussianMixture {
    fn density(&self, y: f64) -> f64 {
        GaussianMixture::density(self, y)
    }

    fn mass_between(&self, a: f64, b: f64) -> f64 {
        GaussianMixture::mass_between(self, a, b)
    }

    fn span(&self) -> f64 {
        GaussianMixture::span(self)
    }

    fn unimodal(&self) -> bool {
        // Both components are zero-mean, so the mixture keeps a single
        // mode at the origin regardless of weights and sigmas.
        true
    }

    fn fingerprint(&self) -> Option<NoiseFingerprint> {
        Some(NoiseFingerprint::with_params(
            "gauss-mix",
            [self.std_dev_narrow, self.std_dev_wide, self.weight_wide],
        ))
    }

    fn fill_noise(&self, seed: u64, out: &mut [f64]) {
        super::density::fill_with_sampler(seed, out, |rng| self.sample_noise(rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> GaussianMixture {
        GaussianMixture::new(5.0, 20.0, 0.25).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(GaussianMixture::new(0.0, 10.0, 0.3).is_err());
        assert!(GaussianMixture::new(-1.0, 10.0, 0.3).is_err());
        assert!(GaussianMixture::new(5.0, 4.0, 0.3).is_err(), "wide must be >= narrow");
        assert!(GaussianMixture::new(5.0, f64::INFINITY, 0.3).is_err());
        assert!(GaussianMixture::new(5.0, 10.0, 0.0).is_err());
        assert!(GaussianMixture::new(5.0, 10.0, 1.0).is_err());
        assert!(GaussianMixture::new(5.0, 10.0, 0.5).is_ok());
        assert!(GaussianMixture::new(5.0, 5.0, 0.5).is_ok(), "equal sigmas are allowed");
    }

    #[test]
    fn density_is_weighted_sum_of_components() {
        let m = mix();
        for y in [-30.0, -5.0, 0.0, 2.5, 18.0] {
            let narrow = normal_pdf(y / 5.0) / 5.0;
            let wide = normal_pdf(y / 20.0) / 20.0;
            let expect = 0.75 * narrow + 0.25 * wide;
            assert!((m.density(y) - expect).abs() < 1e-15, "y {y}");
        }
    }

    #[test]
    fn cdf_is_exact_and_mass_consistent() {
        let m = mix();
        assert!((m.cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((m.mass_between(-m.span(), m.span()) - 1.0).abs() < 1e-4);
        assert_eq!(m.mass_between(2.0, 2.0), 0.0);
        assert_eq!(m.mass_between(5.0, 1.0), 0.0);
        // Trapezoid check of density vs CDF mass.
        let (a, b) = (-10.0, 15.0);
        let steps = 40_000;
        let h = (b - a) / steps as f64;
        let mut sum = 0.5 * (m.density(a) + m.density(b));
        for i in 1..steps {
            sum += m.density(a + i as f64 * h);
        }
        assert!((sum * h - m.mass_between(a, b)).abs() < 1e-6);
    }

    #[test]
    fn moments_match_sampling() {
        let m = mix();
        let mut xs = vec![0.0; 100_000];
        NoiseDensity::fill_noise(&m, 11, &mut xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - m.noise_std_dev()).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn sampling_is_deterministic_by_seed() {
        let m = mix();
        let mut a = vec![0.0; 1_000];
        let mut b = vec![0.0; 1_000];
        NoiseDensity::fill_noise(&m, 3, &mut a);
        NoiseDensity::fill_noise(&m, 3, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn heavier_tails_than_narrow_component_alone() {
        let m = mix();
        // At 6 narrow sigmas the mixture's wide component dominates.
        let narrow_only = normal_pdf(30.0 / 5.0) / 5.0;
        assert!(m.density(30.0) > 10.0 * narrow_only);
    }

    #[test]
    fn scaled_stretches_interval_quantities() {
        let m = mix();
        let s = m.scaled(2.0).unwrap();
        assert_eq!(s.std_dev_narrow(), 10.0);
        assert_eq!(s.std_dev_wide(), 40.0);
        assert_eq!(s.weight_wide(), 0.25);
        // Mass on a stretched interval is preserved.
        assert!((s.mass_between(-10.0, 10.0) - m.mass_between(-5.0, 5.0)).abs() < 1e-12);
        assert!(m.scaled(0.0).is_err());
    }

    #[test]
    fn fingerprints_distinguish_parameters() {
        let a = NoiseDensity::fingerprint(&mix()).unwrap();
        let b = NoiseDensity::fingerprint(&GaussianMixture::new(5.0, 20.0, 0.26).unwrap()).unwrap();
        let c = NoiseDensity::fingerprint(&GaussianMixture::new(5.0, 21.0, 0.25).unwrap()).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, NoiseDensity::fingerprint(&mix()).unwrap());
    }

    #[test]
    fn serde_roundtrip() {
        let m = mix();
        let json = serde_json::to_string(&m).unwrap();
        let back: GaussianMixture = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
