//! Randomization operators — the client-side half of AS00.
//!
//! Data providers perturb each sensitive value `x` before submitting it:
//!
//! * **Value distortion** ([`NoiseModel`]): submit `x + y` where `y` is
//!   drawn from a public noise distribution. This is the method AS00
//!   evaluates (with uniform and Gaussian noise); this crate additionally
//!   ships [`Laplace`] and [`GaussianMixture`] channels.
//! * **Value-class membership** ([`Discretizer`]): submit only the interval
//!   containing `x` (AS00 section 2.1's alternative method).
//! * **Randomized response** ([`RandomizedResponse`]): for categorical
//!   values, keep the true category with probability `p`, otherwise submit
//!   a uniformly random category (Warner 1965; AS00's future-work direction
//!   for categorical attributes).
//!
//! # Open vs closed noise families
//!
//! The *open* extension point is the [`NoiseDensity`] trait: anything
//! implementing it (density, interval mass, span, optional fingerprint +
//! batch sampling) plugs into the reconstruction engine, the streaming
//! sketches, and the generic privacy metrics without touching this crate.
//! [`Laplace`] and [`GaussianMixture`] are standalone such channels.
//!
//! [`NoiseModel`] is the *closed*, serializable registry of the built-in
//! families — the form carried by perturbation plans, experiment configs,
//! and fixtures. Its `Laplace`/`GaussianMixture` variants wrap the
//! standalone structs and delegate all math to them, so a wrapped channel
//! and the bare struct are bit-identical (same densities, same noise
//! streams, same fingerprint, hence one shared kernel-cache entry).
//!
//! # Discrete channels
//!
//! [`DiscreteChannel`] is the categorical analogue of [`NoiseDensity`]:
//! a transition matrix over `k` states, a stable [`ChannelFingerprint`],
//! native batch sampling (`fill_states`), and exact posterior columns.
//! [`RandomizedResponse`] implements it, [`StochasticMatrix`] is the
//! arbitrary-matrix escape hatch, and `ppdm-assoc`'s partial-match
//! channel plugs in from outside the crate. Every implementor inverts
//! through the shared
//! [`crate::reconstruct::DiscreteReconstructionEngine`].

mod channel;
mod density;
mod discretize;
mod laplace;
mod mixture;
mod response;

pub use channel::{
    hash_params, hash_params_mixed, ChannelFingerprint, DiscreteChannel, StochasticMatrix,
};
pub use density::{NoiseDensity, NoiseFingerprint};
pub use discretize::Discretizer;
pub use laplace::Laplace;
pub use mixture::GaussianMixture;
pub use response::RandomizedResponse;

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Additive-noise model used for value distortion.
///
/// The noise distribution is public: both data providers (who sample from
/// it) and the server (whose reconstruction algorithm evaluates its
/// density) know the parameters. Only the realized noise values are secret.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// No perturbation; `perturb` is the identity. Used for baselines.
    None,
    /// Uniform noise on `[-half_width, +half_width]`.
    Uniform {
        /// Half-width `alpha` of the noise support.
        half_width: f64,
    },
    /// Gaussian noise with mean 0 and the given standard deviation.
    Gaussian {
        /// Standard deviation `sigma` of the noise.
        std_dev: f64,
    },
    /// Laplace (double-exponential) noise — the differential-privacy-
    /// adjacent channel. Delegates to the standalone [`Laplace`] struct.
    Laplace {
        /// The wrapped channel (scale parameter `b`).
        channel: Laplace,
    },
    /// Zero-mean two-component Gaussian mixture noise (narrow + wide
    /// component). Delegates to the standalone [`GaussianMixture`] struct.
    GaussianMixture {
        /// The wrapped channel (component sigmas + wide-component weight).
        channel: GaussianMixture,
    },
}

/// Number of Gaussian standard deviations treated as the effective noise
/// support for bucketing purposes (mass beyond 4 sigma is below 7e-5 and
/// immaterial at interval granularity).
const GAUSSIAN_SPAN_SIGMAS: f64 = 4.0;

impl NoiseModel {
    /// Uniform noise on `[-half_width, half_width]`.
    pub fn uniform(half_width: f64) -> Result<Self> {
        if !half_width.is_finite() || half_width <= 0.0 {
            return Err(Error::InvalidNoiseParameter { name: "half_width", value: half_width });
        }
        Ok(NoiseModel::Uniform { half_width })
    }

    /// Gaussian noise with standard deviation `std_dev`.
    pub fn gaussian(std_dev: f64) -> Result<Self> {
        if !std_dev.is_finite() || std_dev <= 0.0 {
            return Err(Error::InvalidNoiseParameter { name: "std_dev", value: std_dev });
        }
        Ok(NoiseModel::Gaussian { std_dev })
    }

    /// Laplace noise with scale parameter `scale` (see [`Laplace::new`]).
    pub fn laplace(scale: f64) -> Result<Self> {
        Ok(NoiseModel::Laplace { channel: Laplace::new(scale)? })
    }

    /// Two-component Gaussian mixture noise (see [`GaussianMixture::new`]
    /// for the parameter constraints).
    pub fn gaussian_mixture(
        std_dev_narrow: f64,
        std_dev_wide: f64,
        weight_wide: f64,
    ) -> Result<Self> {
        Ok(NoiseModel::GaussianMixture {
            channel: GaussianMixture::new(std_dev_narrow, std_dev_wide, weight_wide)?,
        })
    }

    /// Whether this is the identity (no-noise) model.
    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self, NoiseModel::None)
    }

    /// Draws one noise value.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Uniform { half_width } => rng.gen_range(-half_width..=half_width),
            NoiseModel::Gaussian { std_dev } => {
                // Parameters validated at construction; Normal::new only
                // fails on non-finite sigma.
                Normal::new(0.0, std_dev).expect("validated std_dev").sample(rng)
            }
            NoiseModel::Laplace { channel } => channel.sample_noise(rng),
            NoiseModel::GaussianMixture { channel } => channel.sample_noise(rng),
        }
    }

    /// Perturbs a single value: `x + y`.
    #[inline]
    pub fn perturb<R: Rng + ?Sized>(&self, x: f64, rng: &mut R) -> f64 {
        x + self.sample_noise(rng)
    }

    /// Perturbs a whole column of values.
    pub fn perturb_all<R: Rng + ?Sized>(&self, xs: &[f64], rng: &mut R) -> Vec<f64> {
        xs.iter().map(|&x| self.perturb(x, rng)).collect()
    }

    /// Density of the noise distribution at `y`.
    pub fn density(&self, y: f64) -> f64 {
        match *self {
            NoiseModel::None => {
                // Degenerate point mass; reconstruction special-cases this
                // model, so the density is only meaningful as a limit.
                if y == 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
            NoiseModel::Uniform { half_width } => {
                if y.abs() <= half_width {
                    1.0 / (2.0 * half_width)
                } else {
                    0.0
                }
            }
            NoiseModel::Gaussian { std_dev } => {
                crate::stats::special::normal_pdf(y / std_dev) / std_dev
            }
            NoiseModel::Laplace { channel } => channel.density(y),
            NoiseModel::GaussianMixture { channel } => channel.density(y),
        }
    }

    /// Probability that the noise falls in `[a, b]`.
    pub fn mass_between(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        match *self {
            NoiseModel::None => {
                if a <= 0.0 && 0.0 <= b {
                    1.0
                } else {
                    0.0
                }
            }
            NoiseModel::Uniform { half_width } => {
                let lo = a.max(-half_width);
                let hi = b.min(half_width);
                ((hi - lo).max(0.0)) / (2.0 * half_width)
            }
            NoiseModel::Gaussian { std_dev } => {
                crate::stats::special::normal_cdf(b / std_dev)
                    - crate::stats::special::normal_cdf(a / std_dev)
            }
            NoiseModel::Laplace { channel } => channel.mass_between(a, b),
            NoiseModel::GaussianMixture { channel } => channel.mass_between(a, b),
        }
    }

    /// Half-width of the effective noise support, used to extend partitions
    /// so that bucketed reconstruction covers (nearly) all observed values.
    pub fn span(&self) -> f64 {
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Uniform { half_width } => half_width,
            NoiseModel::Gaussian { std_dev } => GAUSSIAN_SPAN_SIGMAS * std_dev,
            NoiseModel::Laplace { channel } => channel.span(),
            NoiseModel::GaussianMixture { channel } => channel.span(),
        }
    }

    /// Standard deviation of the noise distribution.
    pub fn noise_std_dev(&self) -> f64 {
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Uniform { half_width } => half_width / 3.0_f64.sqrt(),
            NoiseModel::Gaussian { std_dev } => std_dev,
            NoiseModel::Laplace { channel } => channel.noise_std_dev(),
            NoiseModel::GaussianMixture { channel } => channel.noise_std_dev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate() {
        assert!(NoiseModel::uniform(0.0).is_err());
        assert!(NoiseModel::uniform(-1.0).is_err());
        assert!(NoiseModel::uniform(f64::NAN).is_err());
        assert!(NoiseModel::gaussian(0.0).is_err());
        assert!(NoiseModel::gaussian(f64::INFINITY).is_err());
        assert!(NoiseModel::uniform(2.5).is_ok());
        assert!(NoiseModel::gaussian(2.5).is_ok());
    }

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NoiseModel::None.perturb(13.5, &mut rng), 13.5);
        assert!(NoiseModel::None.is_none());
        assert_eq!(NoiseModel::None.span(), 0.0);
    }

    #[test]
    fn uniform_noise_respects_bounds() {
        let noise = NoiseModel::uniform(5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let y = noise.sample_noise(&mut rng);
            assert!((-5.0..=5.0).contains(&y), "sample {y} out of bounds");
        }
    }

    #[test]
    fn uniform_density_and_mass() {
        let noise = NoiseModel::uniform(5.0).unwrap();
        assert_eq!(noise.density(0.0), 0.1);
        assert_eq!(noise.density(4.99), 0.1);
        assert_eq!(noise.density(5.01), 0.0);
        assert!((noise.mass_between(-5.0, 5.0) - 1.0).abs() < 1e-12);
        assert!((noise.mass_between(0.0, 2.5) - 0.25).abs() < 1e-12);
        assert_eq!(noise.mass_between(6.0, 10.0), 0.0);
        assert_eq!(noise.mass_between(3.0, 3.0), 0.0);
    }

    #[test]
    fn gaussian_moments_match() {
        let noise = NoiseModel::gaussian(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..50_000).map(|_| noise.sample_noise(&mut rng)).collect();
        let m = crate::stats::mean(&samples);
        let s = crate::stats::std_dev(&samples);
        assert!(m.abs() < 0.05, "mean {m} should be near 0");
        assert!((s - 2.0).abs() < 0.05, "std dev {s} should be near 2");
    }

    #[test]
    fn gaussian_density_and_mass() {
        let noise = NoiseModel::gaussian(1.0).unwrap();
        assert!((noise.density(0.0) - 0.398_942_28).abs() < 1e-6);
        // ~68.27% of mass within one sigma.
        assert!((noise.mass_between(-1.0, 1.0) - 0.6827).abs() < 1e-3);
        assert!((noise.mass_between(-4.0, 4.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn noise_std_dev_formulas() {
        assert_eq!(NoiseModel::None.noise_std_dev(), 0.0);
        let u = NoiseModel::uniform(3.0).unwrap();
        assert!((u.noise_std_dev() - 3.0 / 3.0_f64.sqrt()).abs() < 1e-12);
        let g = NoiseModel::gaussian(1.7).unwrap();
        assert_eq!(g.noise_std_dev(), 1.7);
    }

    #[test]
    fn uniform_sample_std_matches_theory() {
        let noise = NoiseModel::uniform(6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..50_000).map(|_| noise.sample_noise(&mut rng)).collect();
        let theory = noise.noise_std_dev();
        assert!((crate::stats::std_dev(&samples) - theory).abs() < 0.05);
    }

    #[test]
    fn perturbation_is_deterministic_given_seed() {
        let noise = NoiseModel::gaussian(1.0).unwrap();
        let xs = [1.0, 2.0, 3.0];
        let a = noise.perturb_all(&xs, &mut StdRng::seed_from_u64(9));
        let b = noise.perturb_all(&xs, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let noise = NoiseModel::uniform(2.5).unwrap();
        let json = serde_json::to_string(&noise).unwrap();
        let back: NoiseModel = serde_json::from_str(&json).unwrap();
        assert_eq!(noise, back);
    }

    proptest! {
        #[test]
        fn prop_uniform_mass_monotone(a in -10.0..10.0f64, w1 in 0.0..5.0f64, w2 in 0.0..5.0f64) {
            let noise = NoiseModel::uniform(4.0).unwrap();
            let (small, large) = (w1.min(w2), w1.max(w2));
            prop_assert!(noise.mass_between(a, a + small) <= noise.mass_between(a, a + large) + 1e-12);
        }

        #[test]
        fn prop_density_nonnegative(y in -100.0..100.0f64) {
            for noise in [NoiseModel::uniform(3.0).unwrap(), NoiseModel::gaussian(3.0).unwrap()] {
                prop_assert!(noise.density(y) >= 0.0);
            }
        }
    }
}
