//! Randomized response for categorical attributes (Warner 1965).
//!
//! AS00's value distortion targets numeric attributes and names categorical
//! randomization as the natural companion. With `k` categories the provider
//! keeps its true category with probability `p` and otherwise reports a
//! uniformly random category. The observed category distribution `q`
//! relates to the true distribution `pi` by
//!
//! ```text
//! q_j = p * pi_j + (1 - p) / k
//! ```
//!
//! — a [`DiscreteChannel`] whose transition matrix the server inverts
//! through the shared
//! [`crate::reconstruct::DiscreteReconstructionEngine`], the categorical
//! analogue of distribution reconstruction.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

use super::channel::{ChannelFingerprint, DiscreteChannel};
use super::density::fill_with_sampler_usize;

/// A `k`-ary randomized-response operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    categories: usize,
    keep_prob: f64,
}

impl RandomizedResponse {
    /// Creates an operator over `categories >= 2` categories that keeps the
    /// true value with probability `keep_prob` in `(0, 1]`.
    pub fn new(categories: usize, keep_prob: f64) -> Result<Self> {
        if categories < 2 {
            return Err(Error::InvalidStateCount { found: categories });
        }
        if !(keep_prob > 0.0 && keep_prob <= 1.0) {
            return Err(Error::InvalidProbability { name: "keep_prob", value: keep_prob });
        }
        Ok(RandomizedResponse { categories, keep_prob })
    }

    /// Number of categories `k`.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Probability of keeping the true category.
    pub fn keep_prob(&self) -> f64 {
        self.keep_prob
    }

    /// Overall probability that the *reported* category differs from the
    /// true one: `(1 - p) * (k - 1) / k`.
    pub fn flip_prob(&self) -> f64 {
        (1.0 - self.keep_prob) * (self.categories as f64 - 1.0) / self.categories as f64
    }

    /// Perturbs one categorical value (0-based index) — the hot
    /// single-value path, kept panicking for speed.
    ///
    /// For untrusted or bulk input use the checked [`Self::perturb_all`].
    ///
    /// # Panics
    ///
    /// Panics if `value >= categories` — category indices are a type-level
    /// contract of the caller on this path.
    pub fn perturb<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> usize {
        assert!(
            value < self.categories,
            "category index {value} out of range (k = {})",
            self.categories
        );
        if rng.gen_bool(self.keep_prob) {
            value
        } else {
            rng.gen_range(0..self.categories)
        }
    }

    /// Perturbs a column of categorical values, validating every index
    /// up front (so a bad batch fails fast instead of panicking midway
    /// and never draws from the RNG).
    ///
    /// # Errors
    ///
    /// [`Error::StateOutOfRange`] when any value is `>= categories`.
    pub fn perturb_all<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        if let Some(&bad) = values.iter().find(|&&v| v >= self.categories) {
            return Err(Error::StateOutOfRange { state: bad, states: self.categories });
        }
        Ok(values.iter().map(|&v| self.perturb(v, rng)).collect())
    }

    /// Reconstructs the true category *counts* from observed counts by
    /// inverting the response channel through the shared
    /// [`crate::reconstruct::DiscreteReconstructionEngine`] (closed-form
    /// LU solve against the cached factored channel), clamping negatives
    /// to zero and rescaling to preserve the observed total.
    pub fn reconstruct(&self, observed_counts: &[f64]) -> Result<Vec<f64>> {
        if observed_counts.len() != self.categories {
            return Err(Error::CategoryMismatch {
                expected: self.categories,
                found: observed_counts.len(),
            });
        }
        if let Some(bad) = observed_counts.iter().find(|c| !c.is_finite() || **c < 0.0) {
            return Err(Error::InvalidMass(format!(
                "observed counts must be finite and >= 0, got {bad}"
            )));
        }
        let total: f64 = observed_counts.iter().sum();
        if total <= 0.0 {
            return Ok(vec![0.0; self.categories]);
        }
        let raw = crate::reconstruct::shared_discrete_engine()
            .solve_closed_form(self, observed_counts)?;
        // Clamp and renormalize: inversion is unbiased but not
        // range-respecting at small samples.
        let mut estimate: Vec<f64> = raw.into_iter().map(|e| e.max(0.0)).collect();
        let est_total: f64 = estimate.iter().sum();
        if est_total <= 0.0 {
            // All observed mass consistent with pure noise: fall back to
            // the uniform estimate.
            return Ok(vec![total / self.categories as f64; self.categories]);
        }
        for e in &mut estimate {
            *e *= total / est_total;
        }
        Ok(estimate)
    }
}

impl DiscreteChannel for RandomizedResponse {
    fn states(&self) -> usize {
        self.categories
    }

    fn transition(&self, observed: usize, truth: usize) -> f64 {
        let background = (1.0 - self.keep_prob) / self.categories as f64;
        if observed == truth {
            self.keep_prob + background
        } else {
            background
        }
    }

    fn is_identity(&self) -> bool {
        self.keep_prob == 1.0
    }

    fn fingerprint(&self) -> Option<ChannelFingerprint> {
        Some(ChannelFingerprint::new("randomized-response", self.categories, self.keep_prob, 0.0))
    }

    fn fill_states(&self, seed: u64, truth: &[usize], out: &mut [usize]) -> Result<()> {
        if truth.len() != out.len() {
            return Err(Error::LengthMismatch { left: truth.len(), right: out.len() });
        }
        if let Some(&bad) = truth.iter().find(|&&t| t >= self.categories) {
            return Err(Error::StateOutOfRange { state: bad, states: self.categories });
        }
        // Native keep-or-resample sampling (no CDF walk).
        fill_with_sampler_usize(seed, truth, out, |t, rng| self.perturb(t, rng));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validates() {
        assert!(matches!(
            RandomizedResponse::new(1, 0.5),
            Err(Error::InvalidStateCount { found: 1 })
        ));
        assert!(RandomizedResponse::new(3, 0.0).is_err());
        assert!(RandomizedResponse::new(3, 1.1).is_err());
        assert!(RandomizedResponse::new(3, f64::NAN).is_err());
        assert!(RandomizedResponse::new(2, 1.0).is_ok());
    }

    #[test]
    fn keep_prob_one_is_identity() {
        let rr = RandomizedResponse::new(4, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for v in 0..4 {
            assert_eq!(rr.perturb(v, &mut rng), v);
        }
        assert_eq!(rr.flip_prob(), 0.0);
        assert!(DiscreteChannel::is_identity(&rr));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn perturb_rejects_out_of_range() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        rr.perturb(3, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn perturb_all_is_checked_not_panicking() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(
            rr.perturb_all(&[0, 1, 3], &mut rng),
            Err(Error::StateOutOfRange { state: 3, states: 3 })
        ));
        let out = rr.perturb_all(&[0, 1, 2], &mut rng).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|&v| v < 3));
    }

    #[test]
    fn flip_prob_formula() {
        let rr = RandomizedResponse::new(4, 0.6).unwrap();
        assert!((rr.flip_prob() - 0.4 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn transition_columns_are_distributions() {
        let rr = RandomizedResponse::new(5, 0.7).unwrap();
        for truth in 0..5 {
            let col: f64 = (0..5).map(|o| rr.transition(o, truth)).sum();
            assert!((col - 1.0).abs() < 1e-12, "truth {truth}: {col}");
        }
        // Diagonal dominates off-diagonal for keep_prob > 0.
        assert!(rr.transition(2, 2) > rr.transition(1, 2));
    }

    #[test]
    fn empirical_flip_rate_matches() {
        let rr = RandomizedResponse::new(5, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let flips = (0..n).filter(|_| rr.perturb(2, &mut rng) != 2).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - rr.flip_prob()).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_states_uses_native_sampling_deterministically() {
        let rr = RandomizedResponse::new(4, 0.6).unwrap();
        let truth: Vec<usize> = (0..10_000).map(|i| i % 4).collect();
        let mut a = vec![0usize; truth.len()];
        let mut b = vec![0usize; truth.len()];
        rr.fill_states(7, &truth, &mut a).unwrap();
        rr.fill_states(7, &truth, &mut b).unwrap();
        assert_eq!(a, b);
        let kept = truth.iter().zip(&a).filter(|(t, o)| t == o).count();
        let keep_rate = kept as f64 / truth.len() as f64;
        assert!((keep_rate - (1.0 - rr.flip_prob())).abs() < 0.02, "keep rate {keep_rate}");
        assert!(matches!(rr.fill_states(7, &[9], &mut [0]), Err(Error::StateOutOfRange { .. })));
    }

    #[test]
    fn reconstruct_inverts_channel() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        // True distribution [0.6, 0.3, 0.1] with n = 30000.
        let truth = [18_000.0, 9_000.0, 3_000.0];
        let mut rng = StdRng::seed_from_u64(23);
        let mut observed = [0.0f64; 3];
        for (cat, &count) in truth.iter().enumerate() {
            for _ in 0..count as usize {
                observed[rr.perturb(cat, &mut rng)] += 1.0;
            }
        }
        let est = rr.reconstruct(&observed).unwrap();
        for (e, t) in est.iter().zip(&truth) {
            assert!((e - t).abs() < 600.0, "estimate {e} vs truth {t}");
        }
        // Raw observed counts are much further from the truth than the
        // reconstruction (the whole point of inverting the channel).
        let raw_err: f64 = observed.iter().zip(&truth).map(|(o, t)| (o - t).abs()).sum();
        let est_err: f64 = est.iter().zip(&truth).map(|(e, t)| (e - t).abs()).sum();
        assert!(est_err < raw_err / 2.0, "est_err {est_err} raw_err {raw_err}");
    }

    #[test]
    fn engine_routed_reconstruct_matches_closed_form() {
        // The legacy closed form pi_j = (q_j/total - (1-p)/k) / p (clamped,
        // rescaled) and the engine's LU solve are algebraically identical;
        // the rewired path must agree to floating-point noise.
        let rr = RandomizedResponse::new(4, 0.35).unwrap();
        let observed = [500.0, 1250.0, 3250.0, 125.0];
        let total: f64 = observed.iter().sum();
        let background = (1.0 - rr.keep_prob()) / 4.0;
        let mut legacy: Vec<f64> = observed
            .iter()
            .map(|&c| (((c / total) - background) / rr.keep_prob()).max(0.0))
            .collect();
        let legacy_total: f64 = legacy.iter().sum();
        for e in &mut legacy {
            *e *= total / legacy_total;
        }
        let engine = rr.reconstruct(&observed).unwrap();
        for (e, l) in engine.iter().zip(&legacy) {
            assert!((e - l).abs() < 1e-10 * total, "engine {e} vs legacy {l}");
        }
    }

    #[test]
    fn reconstruct_validates_input() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        assert!(rr.reconstruct(&[1.0, 2.0]).is_err());
        assert!(rr.reconstruct(&[1.0, -2.0, 0.0]).is_err());
        assert_eq!(rr.reconstruct(&[0.0, 0.0, 0.0]).unwrap(), vec![0.0; 3]);
    }

    proptest! {
        #[test]
        fn prop_reconstruct_preserves_total(
            counts in prop::collection::vec(0.0..1e4f64, 4),
            keep in 0.1..1.0f64,
        ) {
            let rr = RandomizedResponse::new(4, keep).unwrap();
            let est = rr.reconstruct(&counts).unwrap();
            let total: f64 = counts.iter().sum();
            let est_total: f64 = est.iter().sum();
            prop_assert!((total - est_total).abs() < 1e-6 * total.max(1.0));
            prop_assert!(est.iter().all(|e| *e >= 0.0));
        }

        #[test]
        fn prop_perturb_in_range(v in 0usize..6, seed in 0u64..1000) {
            let rr = RandomizedResponse::new(6, 0.5).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let out = rr.perturb(v, &mut rng);
            prop_assert!(out < 6);
        }
    }
}
