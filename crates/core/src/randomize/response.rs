//! Randomized response for categorical attributes (Warner 1965).
//!
//! AS00's value distortion targets numeric attributes and names categorical
//! randomization as the natural companion. With `k` categories the provider
//! keeps its true category with probability `p` and otherwise reports a
//! uniformly random category. The observed category distribution `q`
//! relates to the true distribution `pi` by
//!
//! ```text
//! q_j = p * pi_j + (1 - p) / k
//! ```
//!
//! which the server inverts in closed form — the categorical analogue of
//! distribution reconstruction.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// A `k`-ary randomized-response operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    categories: usize,
    keep_prob: f64,
}

impl RandomizedResponse {
    /// Creates an operator over `categories >= 2` categories that keeps the
    /// true value with probability `keep_prob` in `(0, 1]`.
    pub fn new(categories: usize, keep_prob: f64) -> Result<Self> {
        if categories < 2 {
            return Err(Error::CategoryMismatch { expected: 2, found: categories });
        }
        if !(keep_prob > 0.0 && keep_prob <= 1.0) {
            return Err(Error::InvalidProbability { name: "keep_prob", value: keep_prob });
        }
        Ok(RandomizedResponse { categories, keep_prob })
    }

    /// Number of categories `k`.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Probability of keeping the true category.
    pub fn keep_prob(&self) -> f64 {
        self.keep_prob
    }

    /// Overall probability that the *reported* category differs from the
    /// true one: `(1 - p) * (k - 1) / k`.
    pub fn flip_prob(&self) -> f64 {
        (1.0 - self.keep_prob) * (self.categories as f64 - 1.0) / self.categories as f64
    }

    /// Perturbs one categorical value (0-based index).
    ///
    /// # Panics
    ///
    /// Panics if `value >= categories` — category indices are a type-level
    /// contract of the caller.
    pub fn perturb<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> usize {
        assert!(
            value < self.categories,
            "category index {value} out of range (k = {})",
            self.categories
        );
        if rng.gen_bool(self.keep_prob) {
            value
        } else {
            rng.gen_range(0..self.categories)
        }
    }

    /// Perturbs a column of categorical values.
    pub fn perturb_all<R: Rng + ?Sized>(&self, values: &[usize], rng: &mut R) -> Vec<usize> {
        values.iter().map(|&v| self.perturb(v, rng)).collect()
    }

    /// Reconstructs the true category *counts* from observed counts by
    /// inverting the response channel, clamping negatives to zero and
    /// rescaling to preserve the observed total.
    pub fn reconstruct(&self, observed_counts: &[f64]) -> Result<Vec<f64>> {
        if observed_counts.len() != self.categories {
            return Err(Error::CategoryMismatch {
                expected: self.categories,
                found: observed_counts.len(),
            });
        }
        if let Some(bad) = observed_counts.iter().find(|c| !c.is_finite() || **c < 0.0) {
            return Err(Error::InvalidMass(format!(
                "observed counts must be finite and >= 0, got {bad}"
            )));
        }
        let total: f64 = observed_counts.iter().sum();
        if total <= 0.0 {
            return Ok(vec![0.0; self.categories]);
        }
        let k = self.categories as f64;
        let background = (1.0 - self.keep_prob) / k;
        // pi_j = (q_j - (1 - p)/k) / p, then clamp and renormalize.
        let mut estimate: Vec<f64> = observed_counts
            .iter()
            .map(|&c| (((c / total) - background) / self.keep_prob).max(0.0))
            .collect();
        let est_total: f64 = estimate.iter().sum();
        if est_total <= 0.0 {
            // All observed mass consistent with pure noise: fall back to
            // the uniform estimate.
            return Ok(vec![total / k; self.categories]);
        }
        for e in &mut estimate {
            *e *= total / est_total;
        }
        Ok(estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validates() {
        assert!(RandomizedResponse::new(1, 0.5).is_err());
        assert!(RandomizedResponse::new(3, 0.0).is_err());
        assert!(RandomizedResponse::new(3, 1.1).is_err());
        assert!(RandomizedResponse::new(3, f64::NAN).is_err());
        assert!(RandomizedResponse::new(2, 1.0).is_ok());
    }

    #[test]
    fn keep_prob_one_is_identity() {
        let rr = RandomizedResponse::new(4, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for v in 0..4 {
            assert_eq!(rr.perturb(v, &mut rng), v);
        }
        assert_eq!(rr.flip_prob(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn perturb_rejects_out_of_range() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        rr.perturb(3, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn flip_prob_formula() {
        let rr = RandomizedResponse::new(4, 0.6).unwrap();
        assert!((rr.flip_prob() - 0.4 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn empirical_flip_rate_matches() {
        let rr = RandomizedResponse::new(5, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let flips = (0..n).filter(|_| rr.perturb(2, &mut rng) != 2).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - rr.flip_prob()).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn reconstruct_inverts_channel() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        // True distribution [0.6, 0.3, 0.1] with n = 30000.
        let truth = [18_000.0, 9_000.0, 3_000.0];
        let mut rng = StdRng::seed_from_u64(23);
        let mut observed = [0.0f64; 3];
        for (cat, &count) in truth.iter().enumerate() {
            for _ in 0..count as usize {
                observed[rr.perturb(cat, &mut rng)] += 1.0;
            }
        }
        let est = rr.reconstruct(&observed).unwrap();
        for (e, t) in est.iter().zip(&truth) {
            assert!((e - t).abs() < 600.0, "estimate {e} vs truth {t}");
        }
        // Raw observed counts are much further from the truth than the
        // reconstruction (the whole point of inverting the channel).
        let raw_err: f64 = observed.iter().zip(&truth).map(|(o, t)| (o - t).abs()).sum();
        let est_err: f64 = est.iter().zip(&truth).map(|(e, t)| (e - t).abs()).sum();
        assert!(est_err < raw_err / 2.0, "est_err {est_err} raw_err {raw_err}");
    }

    #[test]
    fn reconstruct_validates_input() {
        let rr = RandomizedResponse::new(3, 0.5).unwrap();
        assert!(rr.reconstruct(&[1.0, 2.0]).is_err());
        assert!(rr.reconstruct(&[1.0, -2.0, 0.0]).is_err());
        assert_eq!(rr.reconstruct(&[0.0, 0.0, 0.0]).unwrap(), vec![0.0; 3]);
    }

    proptest! {
        #[test]
        fn prop_reconstruct_preserves_total(
            counts in prop::collection::vec(0.0..1e4f64, 4),
            keep in 0.1..1.0f64,
        ) {
            let rr = RandomizedResponse::new(4, keep).unwrap();
            let est = rr.reconstruct(&counts).unwrap();
            let total: f64 = counts.iter().sum();
            let est_total: f64 = est.iter().sum();
            prop_assert!((total - est_total).abs() < 1e-6 * total.max(1.0));
            prop_assert!(est.iter().all(|e| *e >= 0.0));
        }

        #[test]
        fn prop_perturb_in_range(v in 0usize..6, seed in 0u64..1000) {
            let rr = RandomizedResponse::new(6, 0.5).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let out = rr.perturb(v, &mut rng);
            prop_assert!(out < 6);
        }
    }
}
