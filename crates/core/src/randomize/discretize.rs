//! Value-class membership (AS00 section 2.1).
//!
//! Instead of adding noise, a data provider may disclose only which interval
//! of a public partition its value falls in. The server then works with
//! interval midpoints. This trades the reconstruction machinery for a
//! coarser but exactly-known disclosure: the privacy interval width at any
//! confidence level equals the cell width.

use serde::{Deserialize, Serialize};

use crate::domain::Partition;

/// Maps values to their interval (or interval midpoint) in a fixed public
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Discretizer {
    partition: Partition,
}

impl Discretizer {
    /// Creates a discretizer over `partition`.
    pub fn new(partition: Partition) -> Self {
        Discretizer { partition }
    }

    /// The underlying partition.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Index of the interval containing `x` (clamped into the domain).
    #[inline]
    pub fn interval_of(&self, x: f64) -> usize {
        self.partition.locate(x)
    }

    /// The disclosed value: the midpoint of the containing interval.
    #[inline]
    pub fn discretize(&self, x: f64) -> f64 {
        self.partition.midpoint(self.partition.locate(x))
    }

    /// Discretizes a whole column.
    pub fn discretize_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.discretize(x)).collect()
    }

    /// Privacy interval width at *any* confidence level below 100%: the
    /// true value is only known to lie within its cell.
    pub fn interval_width(&self) -> f64 {
        self.partition.cell_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use proptest::prelude::*;

    fn disc() -> Discretizer {
        let p = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        Discretizer::new(p)
    }

    #[test]
    fn discretize_maps_to_midpoints() {
        let d = disc();
        assert_eq!(d.discretize(0.0), 5.0);
        assert_eq!(d.discretize(9.99), 5.0);
        assert_eq!(d.discretize(10.0), 15.0);
        assert_eq!(d.discretize(99.9), 95.0);
        assert_eq!(d.discretize(100.0), 95.0);
    }

    #[test]
    fn out_of_domain_clamps() {
        let d = disc();
        assert_eq!(d.discretize(-50.0), 5.0);
        assert_eq!(d.discretize(1e9), 95.0);
    }

    #[test]
    fn interval_width_is_cell_width() {
        assert_eq!(disc().interval_width(), 10.0);
    }

    #[test]
    fn discretize_all_matches_pointwise() {
        let d = disc();
        let xs = [1.0, 55.0, 99.0];
        assert_eq!(d.discretize_all(&xs), vec![5.0, 55.0, 95.0]);
    }

    proptest! {
        #[test]
        fn prop_discretize_idempotent(x in -50.0..150.0f64) {
            let d = disc();
            let once = d.discretize(x);
            prop_assert_eq!(d.discretize(once), once);
        }

        #[test]
        fn prop_disclosed_value_within_cell(x in 0.0..100.0f64) {
            let d = disc();
            let i = d.interval_of(x);
            let (lo, hi) = d.partition().interval(i);
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
            let mid = d.discretize(x);
            prop_assert!((x - mid).abs() <= d.interval_width() / 2.0 + 1e-9);
        }
    }
}
