//! # ppdm-core
//!
//! Core algorithms of *Privacy-Preserving Data Mining* (Agrawal & Srikant,
//! SIGMOD 2000, "AS00"): client-side randomization operators, privacy
//! quantification, and server-side reconstruction of original value
//! distributions from perturbed samples.
//!
//! The crate is organized around the paper's pipeline:
//!
//! 1. [`randomize`] — data providers perturb sensitive values with a public
//!    noise distribution ([`randomize::NoiseModel`]: uniform, Gaussian,
//!    Laplace, or a two-component Gaussian mixture — an open set behind
//!    the [`randomize::NoiseDensity`] trait), disclose only interval
//!    membership ([`randomize::Discretizer`]), or randomize categorical
//!    values ([`randomize::RandomizedResponse`]).
//! 2. [`privacy`] — the confidence-interval privacy metric of AS00 section
//!    2.2 (closed forms plus the generic [`privacy::interval`] solver),
//!    its inverse (how much noise achieves a target privacy level),
//!    and the entropy-based metrics of the AA01 follow-up.
//! 3. [`mod@reconstruct`] — the iterative Bayesian procedure of AS00 section 3
//!    (plus the EM refinement) that recovers per-interval mass of the
//!    original distribution.
//! 4. [`stats`] / [`domain`] — the numeric substrate: partitions,
//!    histograms, distances, special functions.
//! 5. [`serve`] — the production-shaped serving layer: sharded ingest of
//!    perturbed record streams behind bounded mailboxes with explicit
//!    backpressure, a background re-solver that periodically merges the
//!    shard sketches and publishes warm-started posteriors, and
//!    wait-free epoch-pinned snapshot readers.
//! 6. [`audit`] — empirical privacy auditing: attacker models (posterior
//!    record linkage, correlated-attribute inference, repeated-observation
//!    averaging against the snapshot stream) that measure breach rates
//!    against the published outputs, next to the nominal metrics of
//!    [`privacy`].
//! 7. [`federate`] — multi-party sketch exchange: a versioned,
//!    authenticated wire encoding of the streaming sketches, parties
//!    that emit only sketches (optionally as secure-aggregation shares
//!    whose pairwise masks cancel exactly on the cohort sum), and a
//!    coordinator whose merged solve is bit-identical to the monolithic
//!    one — no party ever reveals raw perturbed records.
//! 8. [`fault`] — seeded failpoint injection (named sites that can
//!    panic, delay, error, or trip on deterministic schedules; zero
//!    cost disarmed) plus the shared capped-exponential backoff policy;
//!    the substrate under the serve plane's crash isolation, the
//!    federate transport's fault plans, and the chaos test suite.
//!
//! ## Example
//!
//! ```
//! use ppdm_core::domain::{Domain, Partition};
//! use ppdm_core::privacy::{noise_for_privacy, NoiseKind, DEFAULT_CONFIDENCE};
//! use ppdm_core::reconstruct::{reconstruct, ReconstructionConfig};
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! // Ages of survey respondents: the true values stay on the client.
//! let domain = Domain::new(20.0, 80.0)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let ages: Vec<f64> = (0..10_000).map(|_| rng.gen_range(20.0..80.0)).collect();
//!
//! // Clients add Gaussian noise sized for 100% privacy at 95% confidence.
//! let noise = noise_for_privacy(NoiseKind::Gaussian, 100.0, DEFAULT_CONFIDENCE, &domain)?;
//! let observed = noise.perturb_all(&ages, &mut rng);
//!
//! // The server reconstructs the age distribution without seeing any age.
//! let partition = Partition::new(domain, 20)?;
//! let result = reconstruct(&noise, partition, &observed, &ReconstructionConfig::bayes())?;
//! assert!((result.histogram.total() - 10_000.0).abs() < 1e-6);
//! # Ok::<(), ppdm_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod domain;
pub mod error;
pub mod fault;
pub mod federate;
pub mod privacy;
pub mod randomize;
pub mod reconstruct;
pub mod serve;
pub mod simd;
pub mod stats;

pub use audit::{BreachReport, CorrelatedLinkage, DiscreteLinkage, JointPrior, PosteriorLinkage};
pub use domain::{Domain, Partition};
pub use error::{Error, Result};
pub use fault::{Backoff, BackoffPolicy, FaultKind, FaultRegistry, FaultSpec, Injector, Trigger};
pub use federate::{Coordinator, DiscreteCoordinator, DiscreteParty, FaultPlan, Party, WireSketch};
pub use randomize::{
    ChannelFingerprint, DiscreteChannel, GaussianMixture, Laplace, NoiseDensity, NoiseModel,
    RandomizedResponse, StochasticMatrix,
};
pub use reconstruct::{
    reconstruct, DiscreteReconstruction, DiscreteReconstructionConfig,
    DiscreteReconstructionEngine, DiscreteSuffStats, IncrementalReconstructor, Reconstruction,
    ReconstructionConfig, ReconstructionEngine, ReconstructionJob, ShardedAccumulator, SuffStats,
};
pub use stats::Histogram;
