//! Seeded fault injection: named failpoint sites, deterministic
//! triggers, and the shared backoff schedule for every retry loop.
//!
//! Crash-testing a concurrent system from the outside is guesswork —
//! kill signals land wherever the scheduler happens to be. This module
//! moves the chaos *inside*: production code declares named **sites**
//! (string constants at panic-safe points) and hits them through an
//! [`Injector`]; tests arm a [`FaultRegistry`] with seeded
//! [`FaultSpec`]s that inject panics, delays, typed errors, or silent
//! trips at exactly those sites, on exactly reproducible schedules.
//!
//! ```text
//!   test:  FaultRegistry::new(seed) ── arm(site, spec) ──┐
//!                                                        ▼
//!   prod:  injector.hit("serve.worker.loop") ──▶ Trigger fires?
//!            │ disarmed: one None check, zero cost        │
//!            ▼                                            ▼
//!          Ok(())                    Panic / Delay(d) / Error / Trip
//! ```
//!
//! Consumers across the workspace:
//!
//! * `serve` — supervised shard workers and the re-solver hit sites at
//!   their loop heads and around solves; the chaos suite kills and
//!   slows them mid-flood and asserts nothing is lost.
//! * `federate::driver` — the transport's drop / duplicate / corrupt /
//!   delay / timeout decisions are [`FaultKind::Trip`] sites armed from
//!   a [`FaultPlan`](crate::federate::FaultPlan), so the protocol and
//!   serve layers share one fault vocabulary.
//! * every retry loop — supervisor restarts, ingest backpressure
//!   retries, and driver resend cycles all pace themselves with the
//!   same capped-exponential [`BackoffPolicy`].
//!
//! The disarmed contract is absolute: a `None` injector (the default)
//! and a registry with nothing armed change **no behavior whatsoever**
//! — asserted bit-for-bit in `tests/serve_chaos.rs`.

pub mod backoff;
pub mod registry;

pub use backoff::{Backoff, BackoffPolicy};
pub use registry::{FaultKind, FaultRegistry, FaultSpec, Injector, SiteStats, Trigger};
