//! The seeded failpoint registry: named sites, armed fault specs, and
//! the [`Injector`] handle threaded through production code.
//!
//! A *site* is a string constant placed at a panic-safe point in
//! production code (e.g. `serve.worker.loop`). Code calls
//! [`Injector::hit`] at the site; when the registry has a matching
//! armed [`FaultSpec`] whose [`Trigger`] fires, the spec's
//! [`FaultKind`] is applied — a panic, an injected delay, a typed
//! [`Error::FaultInjected`], or a silent trip the caller branches on.
//!
//! Two properties are load-bearing:
//!
//! * **Zero cost disarmed.** An [`Injector::disabled`] handle is an
//!   `Option::None` check; a registry with no armed sites is a single
//!   relaxed atomic load. Neither takes a lock or hashes the site name,
//!   so failpoints can sit on hot paths. The chaos suite asserts the
//!   stronger behavioral form: a service run with a disarmed registry is
//!   bit-identical to one with no registry at all.
//! * **Deterministic.** Probabilistic triggers draw from a per-site
//!   splitmix64 stream seeded by `registry seed ⊕ fnv(site)`, so a
//!   seeded chaos schedule replays identically run after run regardless
//!   of how other sites interleave.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::error::{Error, Result};

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site — exercises `catch_unwind` supervision.
    Panic,
    /// Sleep for the given duration at the site — exercises deadlines,
    /// staleness bounds, and backpressure.
    Delay(Duration),
    /// Return [`Error::FaultInjected`] from the site — exercises typed
    /// error paths (failed solves, refused appends).
    Error,
    /// No built-in effect: the site reports "fired" and the caller
    /// decides what that means (the federate transport's drop/duplicate
    /// decisions are trips).
    Trip,
}

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on exactly the `n`-th hit of the site (1-based).
    OnHit(u64),
    /// Fire on every `n`-th hit (the `n`-th, `2n`-th, ...). `Every(0)`
    /// behaves as `Every(1)`.
    Every(u64),
    /// Fire each hit independently with this probability, drawn from the
    /// site's seeded deterministic stream. Values are clamped to
    /// `[0, 1]`.
    Prob(f64),
}

/// A fault armed at one site: what to inject, when, and how often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The effect applied when the trigger fires.
    pub kind: FaultKind,
    /// The firing rule.
    pub trigger: Trigger,
    /// Maximum number of fires; `None` is unlimited. A site past its
    /// limit stays armed but inert (its hit counter keeps advancing).
    pub limit: Option<u64>,
}

impl FaultSpec {
    /// A spec with no fire limit.
    pub fn new(kind: FaultKind, trigger: Trigger) -> FaultSpec {
        FaultSpec { kind, trigger, limit: None }
    }

    /// Caps the number of times this spec may fire.
    pub fn with_limit(mut self, limit: u64) -> FaultSpec {
        self.limit = Some(limit);
        self
    }
}

/// Hit/fire counters of one site, for assertions and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteStats {
    /// Times the site was evaluated (armed hits only; a disarmed site
    /// records nothing).
    pub hits: u64,
    /// Times the trigger fired and the fault was applied.
    pub fired: u64,
}

struct Site {
    spec: FaultSpec,
    hits: u64,
    fired: u64,
    /// splitmix64 state for `Trigger::Prob`, derived from the registry
    /// seed and the site name so each site has an independent,
    /// order-insensitive stream.
    rng: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001B3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The seeded failpoint registry. Shared via `Arc`; thread-safe.
///
/// Production code never holds a registry directly — it holds an
/// [`Injector`], which is either disabled (the default, near-zero cost)
/// or backed by one of these. Tests arm sites, run the system, and
/// assert on [`FaultRegistry::site_stats`] / [`FaultRegistry::total_fired`].
pub struct FaultRegistry {
    seed: u64,
    /// Number of currently armed sites; the lock-free fast path for the
    /// common disarmed case.
    armed: AtomicUsize,
    sites: Mutex<HashMap<String, Site>>,
}

impl std::fmt::Debug for FaultRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultRegistry")
            .field("seed", &self.seed)
            .field("armed_sites", &self.armed.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultRegistry {
    /// An empty registry; `seed` drives every `Trigger::Prob` stream.
    pub fn new(seed: u64) -> FaultRegistry {
        FaultRegistry { seed, armed: AtomicUsize::new(0), sites: Mutex::new(HashMap::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Site>> {
        // A panic injected *by* this registry happens outside the lock
        // (the decision is computed under the lock, the effect applied
        // after it is released), but an unrelated panic elsewhere must
        // not cascade: the map is always internally consistent.
        self.sites.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms (or re-arms, resetting counters) `site` with `spec`.
    pub fn arm(&self, site: &str, spec: FaultSpec) {
        let mut sites = self.lock();
        let rng = self.seed ^ fnv1a(site.as_bytes());
        if sites.insert(site.to_string(), Site { spec, hits: 0, fired: 0, rng }).is_none() {
            self.armed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Disarms `site`; returns whether it was armed. Its counters are
    /// discarded with it.
    pub fn disarm(&self, site: &str) -> bool {
        let removed = self.lock().remove(site).is_some();
        if removed {
            self.armed.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Evaluates a hit at `site` and returns the fault kind to apply if
    /// the trigger fired. Does **not** apply the effect — use
    /// [`Injector::hit`] (or [`Injector::fires`] for trips) in
    /// production code.
    pub fn trigger(&self, site: &str) -> Option<FaultKind> {
        if self.armed.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut sites = self.lock();
        let entry = sites.get_mut(site)?;
        entry.hits += 1;
        if let Some(limit) = entry.spec.limit {
            if entry.fired >= limit {
                return None;
            }
        }
        let fires = match entry.spec.trigger {
            Trigger::Always => true,
            Trigger::OnHit(n) => entry.hits == n.max(1),
            Trigger::Every(n) => entry.hits % n.max(1) == 0,
            Trigger::Prob(p) => {
                let draw = (splitmix64(&mut entry.rng) >> 11) as f64 / (1u64 << 53) as f64;
                draw < p.clamp(0.0, 1.0)
            }
        };
        if fires {
            entry.fired += 1;
            Some(entry.spec.kind)
        } else {
            None
        }
    }

    /// Hit/fire counters of `site` (zeros if never armed).
    pub fn site_stats(&self, site: &str) -> SiteStats {
        self.lock()
            .get(site)
            .map(|s| SiteStats { hits: s.hits, fired: s.fired })
            .unwrap_or_default()
    }

    /// Total fires across every armed site — the chaos suite's
    /// "disarmed means untouched" witness.
    pub fn total_fired(&self) -> u64 {
        self.lock().values().map(|s| s.fired).sum()
    }
}

/// The handle production code hits failpoints through.
///
/// `Injector::default()` is disabled: every [`Injector::hit`] is a
/// branch on `None` — no lock, no hash, no site-name formatting — so
/// instrumented hot paths cost nothing in normal operation.
#[derive(Debug, Clone, Default)]
pub struct Injector {
    registry: Option<Arc<FaultRegistry>>,
}

impl Injector {
    /// The no-op injector (same as `Default`).
    pub fn disabled() -> Injector {
        Injector { registry: None }
    }

    /// An injector backed by `registry`.
    pub fn new(registry: Arc<FaultRegistry>) -> Injector {
        Injector { registry: Some(registry) }
    }

    /// Whether a registry is attached (it may still have nothing armed).
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Hits `site` and applies the armed fault, if any:
    /// [`FaultKind::Panic`] panics, [`FaultKind::Delay`] sleeps,
    /// [`FaultKind::Error`] returns [`Error::FaultInjected`], and
    /// [`FaultKind::Trip`] is a no-op here (use [`Injector::fires`]).
    pub fn hit(&self, site: &str) -> Result<()> {
        let Some(registry) = &self.registry else { return Ok(()) };
        match registry.trigger(site) {
            None | Some(FaultKind::Trip) => Ok(()),
            Some(FaultKind::Panic) => panic!("failpoint `{site}` injected a panic"),
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultKind::Error) => Err(Error::FaultInjected { site: site.to_string() }),
        }
    }

    /// Hits `site` and reports whether the trigger fired, applying no
    /// effect — the entry point for [`FaultKind::Trip`]-style decisions
    /// (a transport asking "do I drop this frame?").
    pub fn fires(&self, site: &str) -> bool {
        match &self.registry {
            None => false,
            Some(registry) => registry.trigger(site).is_some(),
        }
    }
}

impl From<Option<Arc<FaultRegistry>>> for Injector {
    fn from(registry: Option<Arc<FaultRegistry>>) -> Injector {
        Injector { registry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_never_fire() {
        let registry = FaultRegistry::new(7);
        assert_eq!(registry.trigger("nowhere"), None);
        assert_eq!(registry.site_stats("nowhere"), SiteStats::default());
        let injector = Injector::new(Arc::new(registry));
        assert!(injector.hit("nowhere").is_ok());
        assert!(!injector.fires("nowhere"));
    }

    #[test]
    fn disabled_injector_is_a_noop() {
        let injector = Injector::disabled();
        assert!(!injector.is_enabled());
        assert!(injector.hit("anything").is_ok());
        assert!(!injector.fires("anything"));
    }

    #[test]
    fn on_hit_fires_exactly_once() {
        let registry = FaultRegistry::new(0);
        registry.arm("x", FaultSpec::new(FaultKind::Trip, Trigger::OnHit(3)));
        let fires: Vec<bool> = (0..6).map(|_| registry.trigger("x").is_some()).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(registry.site_stats("x"), SiteStats { hits: 6, fired: 1 });
    }

    #[test]
    fn every_fires_periodically_until_limit() {
        let registry = FaultRegistry::new(0);
        registry.arm("x", FaultSpec::new(FaultKind::Trip, Trigger::Every(2)).with_limit(2));
        let fires: Vec<bool> = (0..8).map(|_| registry.trigger("x").is_some()).collect();
        assert_eq!(fires, [false, true, false, true, false, false, false, false]);
        let stats = registry.site_stats("x");
        assert_eq!(stats.fired, 2, "the limit caps fires");
        assert_eq!(stats.hits, 8, "hits keep counting past the limit");
    }

    #[test]
    fn prob_stream_is_deterministic_per_seed_and_site() {
        let run = |seed: u64, site: &str| -> Vec<bool> {
            let registry = FaultRegistry::new(seed);
            registry.arm(site, FaultSpec::new(FaultKind::Trip, Trigger::Prob(0.5)));
            (0..64).map(|_| registry.trigger(site).is_some()).collect()
        };
        assert_eq!(run(42, "a"), run(42, "a"), "same seed+site replays identically");
        assert_ne!(run(42, "a"), run(43, "a"), "the seed matters");
        assert_ne!(run(42, "a"), run(42, "b"), "sites have independent streams");
        let fired = run(42, "a").iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fired), "p=0.5 over 64 draws fired {fired} times");
    }

    #[test]
    fn error_kind_returns_typed_error() {
        let registry = Arc::new(FaultRegistry::new(0));
        registry.arm("site.err", FaultSpec::new(FaultKind::Error, Trigger::Always));
        let injector = Injector::new(registry);
        match injector.hit("site.err") {
            Err(Error::FaultInjected { site }) => assert_eq!(site, "site.err"),
            other => panic!("expected FaultInjected, got {other:?}"),
        }
    }

    #[test]
    fn panic_kind_panics_and_is_catchable() {
        let registry = Arc::new(FaultRegistry::new(0));
        registry.arm("site.boom", FaultSpec::new(FaultKind::Panic, Trigger::OnHit(1)));
        let injector = Injector::new(registry.clone());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = injector.hit("site.boom");
        }));
        assert!(caught.is_err(), "the failpoint must panic");
        assert!(injector.hit("site.boom").is_ok(), "OnHit(1) fires only once");
        assert_eq!(registry.site_stats("site.boom").fired, 1);
    }

    #[test]
    fn delay_kind_sleeps() {
        let registry = Arc::new(FaultRegistry::new(0));
        registry.arm(
            "site.slow",
            FaultSpec::new(FaultKind::Delay(Duration::from_millis(20)), Trigger::Always),
        );
        let injector = Injector::new(registry);
        let started = std::time::Instant::now();
        injector.hit("site.slow").unwrap();
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn disarm_removes_the_site() {
        let registry = FaultRegistry::new(0);
        registry.arm("x", FaultSpec::new(FaultKind::Trip, Trigger::Always));
        assert!(registry.trigger("x").is_some());
        assert!(registry.disarm("x"));
        assert!(!registry.disarm("x"));
        assert_eq!(registry.trigger("x"), None);
        assert_eq!(registry.total_fired(), 0, "counters die with the site");
    }
}
