//! Capped exponential backoff, shared by every retry loop in the
//! workspace: supervised worker/resolver restarts, the
//! backpressure-retrying ingest helper, and the federate round driver.
//!
//! One policy type keeps the retry story uniform and testable: delay
//! for attempt `k` is `base × 2^k`, saturating at `cap`. A zero base
//! yields zero delays everywhere — the "spin, don't sleep" policy the
//! fast tests use.

use std::time::Duration;

/// A capped exponential backoff schedule: `base × 2^attempt`, never
/// exceeding `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay. Zero disables sleeping entirely.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl BackoffPolicy {
    /// A policy doubling from `base` up to `cap` (raised to `base` if
    /// smaller, so the schedule is monotone).
    pub fn new(base: Duration, cap: Duration) -> BackoffPolicy {
        BackoffPolicy { base, cap: cap.max(base) }
    }

    /// The no-sleep policy: every delay is zero.
    pub fn none() -> BackoffPolicy {
        BackoffPolicy { base: Duration::ZERO, cap: Duration::ZERO }
    }

    /// The delay for the `attempt`-th retry (0-based).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        // 2^attempt saturates well before the shift would overflow; past
        // 32 doublings any realistic base has hit the cap.
        let factor = 1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// A fresh counter over this schedule.
    pub fn iter(&self) -> Backoff {
        Backoff { policy: *self, attempt: 0 }
    }
}

impl Default for BackoffPolicy {
    /// 1 ms doubling to a 250 ms cap — the supervisor restart default.
    fn default() -> Self {
        BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(250))
    }
}

/// A stateful walk along a [`BackoffPolicy`] schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
}

impl Backoff {
    /// The next delay in the schedule; each call advances the attempt
    /// counter.
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.policy.delay_for(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        delay
    }

    /// Restarts the schedule from the base delay (a supervisor calls
    /// this after its charge makes real progress, so an old crash burst
    /// does not penalize a recovered worker forever).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Retries taken so far on this schedule.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_capped() {
        let policy = BackoffPolicy::new(Duration::from_millis(2), Duration::from_millis(12));
        let mut backoff = policy.iter();
        let delays: Vec<u64> = (0..5).map(|_| backoff.next_delay().as_millis() as u64).collect();
        assert_eq!(delays, [2, 4, 8, 12, 12]);
        assert_eq!(backoff.attempt(), 5);
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let policy = BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(100));
        let mut backoff = policy.iter();
        backoff.next_delay();
        backoff.next_delay();
        backoff.reset();
        assert_eq!(backoff.next_delay(), Duration::from_millis(1));
    }

    #[test]
    fn zero_base_never_sleeps() {
        let mut backoff = BackoffPolicy::none().iter();
        for _ in 0..10 {
            assert_eq!(backoff.next_delay(), Duration::ZERO);
        }
    }

    #[test]
    fn cap_is_raised_to_base() {
        let policy = BackoffPolicy::new(Duration::from_millis(10), Duration::from_millis(1));
        assert_eq!(policy.delay_for(0), Duration::from_millis(10));
        assert_eq!(policy.delay_for(5), Duration::from_millis(10));
    }

    #[test]
    fn huge_attempts_saturate_instead_of_overflowing() {
        let policy = BackoffPolicy::new(Duration::from_secs(1), Duration::from_secs(30));
        assert_eq!(policy.delay_for(u32::MAX), Duration::from_secs(30));
    }
}
