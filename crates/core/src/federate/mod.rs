//! Federated sketch exchange: multi-party reconstruction without any
//! party revealing raw perturbed records.
//!
//! AS00 reconstructs a distribution inside one process that holds the
//! whole perturbed sample. The distributed-environment extension of the
//! paper's line of work asks for more: independent parties — separate
//! organizations, devices, shards of a fleet — each hold a private slice
//! of the perturbed records, and only aggregate statistics may travel.
//! The streaming layer already did the hard part by accident of design:
//! [`SuffStats`](crate::reconstruct::SuffStats) merges are exactly
//! associative and commutative *integer* sketches, which makes them a
//! perfect wire payload — order-free, retry-safe, and maskable with
//! modular arithmetic that cancels exactly.
//!
//! The protocol, in one diagram:
//!
//! ```text
//!  party 0 ──ingest──▶ SuffStats ──▶ WireSketch ──(+masks?)──▶ bytes ─┐
//!  party 1 ──ingest──▶ SuffStats ──▶ WireSketch ──(+masks?)──▶ bytes ─┤─▶ lossy
//!    ...                                                              │  transport
//!  party k ──ingest──▶ SuffStats ──▶ WireSketch ──(+masks?)──▶ bytes ─┘     │
//!                                                                          ▼
//!                     Coordinator: decode → authenticate → dedupe → merge
//!                                  (masked: wrapping cohort sum first)
//!                                             │
//!                                             ▼
//!                        ReconstructionEngine::reconstruct_stats
//!                 ≡ bit-for-bit the monolithic solve on all records
//! ```
//!
//! The pieces:
//!
//! * [`wire`] — [`WireSketch`], the versioned, checksummed, strictly
//!   decoded encoding of a sketch (fingerprint + partition echoes
//!   authenticate what the counts mean).
//! * [`mask`] — simulated secure aggregation: pairwise additive masks
//!   over wrapping `u64` arithmetic; individual shares are uniform
//!   garbage, the complete cohort sum is the exact unmasked total.
//! * [`Party`] / [`DiscreteParty`] — ingest locally, emit only sketches.
//! * [`Coordinator`] / [`DiscreteCoordinator`] — collect one sketch per
//!   party, merge exactly, reconstruct through the existing engines.
//! * [`driver`] — a round-based delivery loop with injectable transport
//!   faults (drop / duplicate / reorder / corrupt) and a retry/resend
//!   path; `load_federate` in `ppdm-bench` runs it at scale.
//!
//! Exactness is the contract everywhere: k-party federated
//! reconstruction — masked or plain, any record split, any delivery
//! order, any fault weather the retries survive — is **bit-identical**
//! to the monolithic solve over the concatenated records
//! (property-tested in `tests/federate_props.rs`, byte-pinned by the
//! `federate_*` golden fixtures, corruption-swept in
//! `tests/federate_wire.rs`).

pub mod coordinator;
pub mod driver;
pub mod mask;
pub mod party;
pub mod wire;

pub use coordinator::{Coordinator, Delivery, DiscreteCoordinator};
pub use driver::{drive_round, drive_round_with, FaultPlan, RoundReport};
pub use mask::apply_pairwise_masks;
pub use party::{DiscreteParty, Party};
pub use wire::{
    wire_checksum, GeometryEcho, WireSketch, MAX_EXACT_COUNT, WIRE_MAGIC, WIRE_VERSION,
};
