//! Simulated secure aggregation: pairwise additive masks over wrapping
//! `u64` arithmetic.
//!
//! # The algebra
//!
//! Every unordered party pair `{a, b}` (with `a < b`) shares a seed
//! derived from `(session_seed, round, a, b)`. From it both parties
//! expand the same pseudo-random word stream `m_ab`. Party `a` *adds*
//! the stream to its count words, party `b` *subtracts* it (both mod
//! 2^64, i.e. wrapping):
//!
//! ```text
//! share_i  =  counts_i  +  Σ_{j > i} m_ij  −  Σ_{j < i} m_ji      (mod 2^64)
//! ```
//!
//! Summing all `k` shares makes every `m_ab` appear exactly once with
//! `+` and once with `−`, so the masks cancel *identically* — not
//! approximately — and the sum equals `Σ counts_i mod 2^64`. Because
//! sketch counts are genuine integers (this is why the sketches were
//! designed integer-valued), and their true totals are far below 2^64,
//! the modular sum *is* the true sum: cancellation is exact, bit for
//! bit, with no floating-point caveats. An individual share, by
//! contrast, is offset by pseudo-random words the observer does not
//! hold, making it computationally indistinguishable from uniform
//! noise (for cohorts of one there is no pair to hide behind and the
//! share equals the plain counts — a cohort of one has no one to hide
//! *from*).
//!
//! This is the classic pairwise-masking construction from the secure
//! aggregation literature, *simulated*: the pairwise seeds here derive
//! from a shared session seed instead of a Diffie–Hellman exchange, so
//! the privacy holds against the coordinator and other observers, not
//! against a party's pair-mates. That is exactly the threat model the
//! federated layer targets — no party reveals raw perturbed records or
//! raw sketches to the coordinator — while keeping the arithmetic (the
//! part the tests pin) identical to the real protocol.
//!
//! The stream generator is a self-contained splitmix64 so the masking
//! layer is deterministic, dependency-free, and independent of the
//! record-sampling RNG streams (whose draws the golden fixtures pin).

/// One splitmix64 step: advances `state` and returns the next word.
/// Full-period, equidistributed over `u64` — standard constants.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shared seed of the unordered pair `{low, high}` for one round.
/// Both parties derive the same value, so their streams cancel.
fn pair_seed(session_seed: u64, round: u32, low: u32, high: u32) -> u64 {
    // Absorb each input through a full splitmix64 mix before folding in
    // the next, so distinct (session, round, pair) triples can't reach
    // the same stream seed by cancellation in a flat XOR.
    let mut state = session_seed ^ 0xA076_1D64_78BD_642F;
    let mut state = splitmix64(&mut state) ^ (round as u64);
    let mut state = splitmix64(&mut state) ^ (((low as u64) << 32) | high as u64);
    splitmix64(&mut state)
}

/// Applies party `party`'s pairwise masks for `round` over `words` in
/// place (wrapping). Summing the masked word vectors of all `cohort`
/// parties — and nothing less — cancels every mask exactly (see the
/// module docs). Deterministic in `(session_seed, round, party,
/// cohort, words.len())`, so a resend regenerates identical bytes.
pub fn apply_pairwise_masks(
    words: &mut [u64],
    party: u32,
    cohort: u32,
    session_seed: u64,
    round: u32,
) {
    for other in 0..cohort {
        if other == party {
            continue;
        }
        let (low, high) = (party.min(other), party.max(other));
        let mut stream = pair_seed(session_seed, round, low, high);
        if party == low {
            for w in words.iter_mut() {
                *w = w.wrapping_add(splitmix64(&mut stream));
            }
        } else {
            for w in words.iter_mut() {
                *w = w.wrapping_sub(splitmix64(&mut stream));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_cancel_exactly_for_every_cohort_size() {
        for cohort in 1u32..9 {
            let len = 17;
            let truth: Vec<Vec<u64>> = (0..cohort)
                .map(|p| (0..len).map(|i| (p as u64 * 1000 + i as u64) % 97).collect())
                .collect();
            let mut shares = truth.clone();
            for (p, share) in shares.iter_mut().enumerate() {
                apply_pairwise_masks(share, p as u32, cohort, 0xDEAD_BEEF, 3);
            }
            // Individual shares differ from the truth whenever there is
            // at least one pair to mask with.
            if cohort > 1 {
                for (p, share) in shares.iter().enumerate() {
                    assert_ne!(share, &truth[p], "party {p} share leaked its plain counts");
                }
            }
            // The wrapping sum of all shares is the exact plain sum.
            let mut summed = vec![0u64; len];
            for share in &shares {
                for (s, &w) in summed.iter_mut().zip(share) {
                    *s = s.wrapping_add(w);
                }
            }
            let mut expected = vec![0u64; len];
            for t in &truth {
                for (s, &w) in expected.iter_mut().zip(t) {
                    *s += w;
                }
            }
            assert_eq!(summed, expected, "cohort {cohort} masks failed to cancel");
        }
    }

    #[test]
    fn masks_differ_across_rounds_and_seeds_but_not_resends() {
        let base = vec![1u64, 2, 3, 4];
        let mask = |seed: u64, round: u32| {
            let mut w = base.clone();
            apply_pairwise_masks(&mut w, 0, 3, seed, round);
            w
        };
        assert_eq!(mask(7, 1), mask(7, 1), "resends must regenerate identical masks");
        assert_ne!(mask(7, 1), mask(7, 2), "rounds must not reuse masks");
        assert_ne!(mask(7, 1), mask(8, 1), "sessions must not reuse masks");
    }

    #[test]
    fn partial_sums_do_not_cancel() {
        // Dropping any share leaves mask residue: the coordinator can
        // only unmask the *complete* cohort, which is the property that
        // forces the retry/resend path for masked rounds.
        let cohort = 4u32;
        let len = 9;
        let mut shares: Vec<Vec<u64>> = (0..cohort).map(|_| vec![1u64; len]).collect();
        for (p, share) in shares.iter_mut().enumerate() {
            apply_pairwise_masks(share, p as u32, cohort, 42, 0);
        }
        let mut partial = vec![0u64; len];
        for share in shares.iter().take(cohort as usize - 1) {
            for (s, &w) in partial.iter_mut().zip(share) {
                *s = s.wrapping_add(w);
            }
        }
        assert_ne!(partial, vec![cohort as u64 - 1; len], "partial cohort must stay masked");
    }
}
