//! Round-based delivery driver with injectable transport faults.
//!
//! [`drive_round`] moves one round's messages from parties to a
//! coordinator over a simulated lossy transport: frames can be dropped,
//! duplicated, delivered out of order, or corrupted (a seeded
//! single-byte flip — precisely the class of damage the wire checksum
//! is proven to catch). After each delivery cycle the driver re-emits
//! from every party the coordinator has not credited yet, up to
//! [`FaultPlan::max_retries`] resend cycles — the protocol's entire
//! fault story reduces to "resend until credited", because emission is
//! deterministic per round (resends are byte-identical, so duplicates
//! are idempotent) and the coordinator refuses anything damaged.
//!
//! The driver is deliberately transport-shaped rather than
//! coordinator-shaped: it works through two closures (emit for a party,
//! submit a frame), so the same loop drives continuous and discrete
//! rounds, masked or plain, and tests can interpose arbitrary mischief
//! between the two.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Result;

use super::Delivery;

/// Transport fault injection for one driven round.
///
/// Probabilities are per-message and independent; the transport RNG is
/// seeded, so a plan replays the identical fault schedule every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame has one random byte flipped in flight.
    pub corrupt: f64,
    /// Whether each cycle's frames are delivered in shuffled order.
    pub reorder: bool,
    /// Seed of the transport's fault schedule.
    pub seed: u64,
    /// Resend cycles after the first attempt before giving up.
    pub max_retries: usize,
}

impl Default for FaultPlan {
    /// A perfect transport: no faults, in-order, four retry cycles.
    fn default() -> Self {
        FaultPlan {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: false,
            seed: 0,
            max_retries: 4,
        }
    }
}

/// What happened while driving one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// Delivery cycles run (1 = no retries needed).
    pub cycles: usize,
    /// Frames emitted by parties (excluding transport duplicates).
    pub sent: usize,
    /// Total bytes handed to the transport (including duplicates).
    pub bytes_sent: u64,
    /// Parties newly credited by the coordinator.
    pub delivered: usize,
    /// Frames the coordinator acknowledged as idempotent duplicates.
    pub duplicates: usize,
    /// Frames the transport dropped.
    pub dropped: usize,
    /// Frames the transport corrupted.
    pub corrupted: usize,
    /// Frames the coordinator refused (corruption, mismatch, ...).
    pub rejected: usize,
    /// Whether every party was credited within the retry budget.
    pub complete: bool,
}

/// Drives one round: emits a frame from every party in `party_ids`,
/// subjects it to `plan`'s faults, submits survivors, and re-emits from
/// uncredited parties until the round completes or the retry budget is
/// exhausted (`report.complete` says which).
///
/// `emit(party)` must return the party's frame for the round —
/// deterministically, so resends are byte-identical. `submit(frame)`
/// is the coordinator's gate; an `Err` marks the frame refused (the
/// party stays uncredited and will be resent). Emission errors abort
/// the drive — they are programming errors, not transport weather.
pub fn drive_round<E, S>(
    party_ids: &[u32],
    plan: &FaultPlan,
    mut emit: E,
    mut submit: S,
) -> Result<RoundReport>
where
    E: FnMut(u32) -> Result<Vec<u8>>,
    S: FnMut(&[u8]) -> Result<Delivery>,
{
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut report = RoundReport::default();
    let mut pending: Vec<u32> = party_ids.to_vec();
    for _cycle in 0..=plan.max_retries {
        if pending.is_empty() {
            break;
        }
        report.cycles += 1;
        // Emit one frame per pending party, then let the transport have
        // its way with the batch.
        let mut frames: Vec<(u32, Vec<u8>)> = Vec::with_capacity(pending.len() * 2);
        for &party in &pending {
            let mut bytes = emit(party)?;
            report.sent += 1;
            if plan.drop > 0.0 && rng.gen_bool(plan.drop) {
                report.dropped += 1;
                continue;
            }
            if plan.corrupt > 0.0 && rng.gen_bool(plan.corrupt) {
                let idx = rng.gen_range(0..bytes.len());
                let bit = 1u8 << rng.gen_range(0..8u32);
                bytes[idx] ^= bit;
                report.corrupted += 1;
            }
            let duplicate = plan.duplicate > 0.0 && rng.gen_bool(plan.duplicate);
            report.bytes_sent += bytes.len() as u64 * if duplicate { 2 } else { 1 };
            if duplicate {
                frames.push((party, bytes.clone()));
            }
            frames.push((party, bytes));
        }
        if plan.reorder && frames.len() > 1 {
            // Fisher–Yates over the cycle's frames.
            for i in (1..frames.len()).rev() {
                let j = rng.gen_range(0..=i);
                frames.swap(i, j);
            }
        }
        for (party, bytes) in &frames {
            match submit(bytes) {
                Ok(Delivery::Accepted { .. }) => {
                    report.delivered += 1;
                    pending.retain(|p| p != party);
                }
                Ok(Delivery::Duplicate { .. }) => report.duplicates += 1,
                Err(_) => report.rejected += 1,
            }
        }
    }
    report.complete = pending.is_empty();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, Partition};
    use crate::error::Error;
    use crate::federate::{Coordinator, Party};
    use crate::randomize::NoiseModel;

    fn setup<'a>(
        noise: &'a NoiseModel,
        partition: Partition,
        masked: bool,
        round: u32,
    ) -> (Vec<Party<'a>>, Coordinator<'a>) {
        let cohort = 3u32;
        let mut parties: Vec<Party<'a>> = (0..cohort)
            .map(|id| Party::new(noise, partition, id, cohort, 0xC0FFEE).unwrap())
            .collect();
        for (i, party) in parties.iter_mut().enumerate() {
            let values: Vec<f64> = (0..20 + i * 5).map(|v| (v * 7 % 100) as f64).collect();
            party.ingest(&values).unwrap();
        }
        let coordinator = Coordinator::new(noise, partition, cohort, round, masked).unwrap();
        (parties, coordinator)
    }

    #[test]
    fn clean_transport_completes_in_one_cycle() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let (parties, mut coordinator) = setup(&noise, partition, false, 1);
        let ids: Vec<u32> = parties.iter().map(Party::id).collect();
        let report = drive_round(
            &ids,
            &FaultPlan::default(),
            |p| parties[p as usize].emit(1),
            |bytes| coordinator.submit(bytes),
        )
        .unwrap();
        assert!(report.complete);
        assert_eq!(report.cycles, 1);
        assert_eq!(report.delivered, 3);
        assert_eq!(report.rejected, 0);
        assert!(coordinator.is_complete());
    }

    #[test]
    fn faulty_transport_retries_to_completion_masked_and_plain() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let plan = FaultPlan {
            drop: 0.3,
            duplicate: 0.3,
            corrupt: 0.3,
            reorder: true,
            seed: 99,
            max_retries: 64,
        };
        for masked in [false, true] {
            let (parties, mut coordinator) = setup(&noise, partition, masked, 2);
            let ids: Vec<u32> = parties.iter().map(Party::id).collect();
            let expected = {
                let mut merged = parties[0].stats().clone();
                merged.merge_from(parties[1].stats()).unwrap();
                merged.merge_from(parties[2].stats()).unwrap();
                merged
            };
            let report = drive_round(
                &ids,
                &plan,
                |p| {
                    let party = &parties[p as usize];
                    if masked {
                        party.emit_masked(2)
                    } else {
                        party.emit(2)
                    }
                },
                |bytes| coordinator.submit(bytes),
            )
            .unwrap();
            assert!(report.complete, "masked={masked} report {report:?}");
            // Every corrupted frame was refused, never absorbed (a
            // corrupted frame that was also duplicated is refused twice).
            assert!(report.rejected >= report.corrupted);
            // Transport weather cannot change the merged statistics.
            assert_eq!(coordinator.merged().unwrap(), expected, "masked={masked}");
        }
    }

    #[test]
    fn exhausted_retries_report_incomplete() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let (parties, mut coordinator) = setup(&noise, partition, false, 3);
        let ids: Vec<u32> = parties.iter().map(Party::id).collect();
        let plan = FaultPlan { drop: 1.0, max_retries: 2, ..FaultPlan::default() };
        let report = drive_round(
            &ids,
            &plan,
            |p| parties[p as usize].emit(3),
            |bytes| coordinator.submit(bytes),
        )
        .unwrap();
        assert!(!report.complete);
        assert_eq!(report.cycles, 3);
        assert_eq!(report.dropped, 9);
        assert!(matches!(coordinator.merged(), Err(Error::ShardMismatch(_))));
    }
}
