//! Round-based delivery driver with injectable transport faults.
//!
//! [`drive_round`] moves one round's messages from parties to a
//! coordinator over a simulated lossy transport: frames can be dropped,
//! duplicated, delivered out of order, corrupted (a seeded single-byte
//! flip — precisely the class of damage the wire checksum is proven to
//! catch), *delayed* a cycle in flight, or delivered with the
//! acknowledgment timing out on the way back. After each delivery cycle
//! the driver re-emits from every party the coordinator has not
//! credited yet, pacing retries with [`FaultPlan::backoff`], up to
//! [`FaultPlan::max_retries`] resend cycles — the protocol's entire
//! fault story reduces to "resend until credited", because emission is
//! deterministic per round (resends are byte-identical, so duplicates
//! are idempotent) and the coordinator refuses anything damaged. A
//! [`Delivery::Duplicate`] reply credits the party too: it is the
//! coordinator's own statement that it already holds the frame, which
//! is exactly the receipt a lost acknowledgment destroyed.
//!
//! The fault decisions are drawn through the shared
//! [failpoint layer](crate::fault): each probability in the plan arms a
//! [`Trigger::Prob`] trip at a named [`sites`] entry of a registry
//! seeded from [`FaultPlan::seed`], so the transport's fault schedule
//! replays identically run after run and the federate and serve planes
//! speak one fault vocabulary. [`drive_round_with`] accepts an external
//! [`Injector`] for tests that want to orchestrate both planes from a
//! single registry.
//!
//! The driver is deliberately transport-shaped rather than
//! coordinator-shaped: it works through two closures (emit for a party,
//! submit a frame), so the same loop drives continuous and discrete
//! rounds, masked or plain, and tests can interpose arbitrary mischief
//! between the two.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{Error, Result};
use crate::fault::{BackoffPolicy, FaultKind, FaultRegistry, FaultSpec, Injector, Trigger};

use super::Delivery;

/// Failpoint site names of the simulated transport (see
/// [`crate::fault`]). [`drive_round`] arms them from the plan's
/// probabilities; [`drive_round_with`] lets a test arm them directly —
/// with any trigger, not just probabilities.
pub mod sites {
    /// Frame silently dropped in flight.
    pub const DROP: &str = "federate.transport.drop";
    /// Frame delivered twice.
    pub const DUPLICATE: &str = "federate.transport.duplicate";
    /// One random byte of the frame flipped in flight.
    pub const CORRUPT: &str = "federate.transport.corrupt";
    /// Frame held back one delivery cycle before arriving intact.
    pub const DELAY: &str = "federate.transport.delay";
    /// Frame delivered and accepted, but the acknowledgment lost — the
    /// sender must resend and be told "duplicate".
    pub const TIMEOUT: &str = "federate.transport.timeout";
}

/// Transport fault injection for one driven round.
///
/// Probabilities are per-message and independent; each arms a seeded
/// per-site stream (see [`sites`]), so a plan replays the identical
/// fault schedule every run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame has one random byte flipped in flight.
    pub corrupt: f64,
    /// Probability a frame is delayed one delivery cycle (it arrives
    /// intact next cycle; the party is not re-emitted while its frame is
    /// in flight).
    pub delay: f64,
    /// Probability a delivered-and-accepted frame's acknowledgment is
    /// lost: the coordinator has the data, the party stays uncredited
    /// until a resend comes back [`Delivery::Duplicate`].
    pub timeout: f64,
    /// Whether each cycle's frames are delivered in shuffled order.
    pub reorder: bool,
    /// Seed of the transport's fault schedule.
    pub seed: u64,
    /// Resend cycles after the first attempt before giving up with
    /// [`Error::RetriesExhausted`].
    pub max_retries: usize,
    /// Pacing between resend cycles; the default never sleeps, so
    /// simulation-speed tests stay fast.
    pub backoff: BackoffPolicy,
}

impl Default for FaultPlan {
    /// A perfect transport: no faults, in-order, four retry cycles, no
    /// retry pacing.
    fn default() -> Self {
        FaultPlan {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            timeout: 0.0,
            reorder: false,
            seed: 0,
            max_retries: 4,
            backoff: BackoffPolicy::none(),
        }
    }
}

/// What happened while driving one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// Delivery cycles run (1 = no retries needed).
    pub cycles: usize,
    /// Frames emitted by parties (excluding transport duplicates).
    pub sent: usize,
    /// Total bytes handed to the transport (including duplicates).
    pub bytes_sent: u64,
    /// Parties newly credited by the coordinator.
    pub delivered: usize,
    /// Frames the coordinator acknowledged as idempotent duplicates.
    pub duplicates: usize,
    /// Frames the transport dropped.
    pub dropped: usize,
    /// Frames the transport corrupted.
    pub corrupted: usize,
    /// Frames held back a cycle in flight.
    pub delayed: usize,
    /// Accepted frames whose acknowledgment was lost.
    pub timeouts: usize,
    /// Frames the coordinator refused (corruption, mismatch, ...).
    pub rejected: usize,
    /// Whether every party was credited within the retry budget (always
    /// true on `Ok` — exhaustion is [`Error::RetriesExhausted`]).
    pub complete: bool,
}

/// Drives one round: emits a frame from every party in `party_ids`,
/// subjects it to `plan`'s faults, submits survivors, and re-emits from
/// uncredited parties until the round completes or the retry budget is
/// exhausted.
///
/// `emit(party)` must return the party's frame for the round —
/// deterministically, so resends are byte-identical. `submit(frame)`
/// is the coordinator's gate; an `Err` marks the frame refused (the
/// party stays uncredited and will be resent). Emission errors abort
/// the drive — they are programming errors, not transport weather.
///
/// # Errors
///
/// [`Error::RetriesExhausted`] when uncredited parties remain after
/// `1 + max_retries` cycles (`attempts` = cycles run, `pending` =
/// uncredited parties) — a typed outcome instead of a report the caller
/// must remember to inspect; any error from `emit` itself.
pub fn drive_round<E, S>(
    party_ids: &[u32],
    plan: &FaultPlan,
    emit: E,
    submit: S,
) -> Result<RoundReport>
where
    E: FnMut(u32) -> Result<Vec<u8>>,
    S: FnMut(&[u8]) -> Result<Delivery>,
{
    let registry = FaultRegistry::new(plan.seed);
    let arm = |site: &str, p: f64| {
        if p > 0.0 {
            registry.arm(site, FaultSpec::new(FaultKind::Trip, Trigger::Prob(p)));
        }
    };
    arm(sites::DROP, plan.drop);
    arm(sites::DUPLICATE, plan.duplicate);
    arm(sites::CORRUPT, plan.corrupt);
    arm(sites::DELAY, plan.delay);
    arm(sites::TIMEOUT, plan.timeout);
    drive_round_with(party_ids, plan, &Injector::new(Arc::new(registry)), emit, submit)
}

/// [`drive_round`] against a caller-supplied [`Injector`]: the [`sites`]
/// are consulted as armed (any trigger/limit, shared with other planes'
/// sites on the same registry); only the plan's `reorder`, `seed`
/// (corruption positions and shuffle order), `max_retries`, and
/// `backoff` fields are read.
pub fn drive_round_with<E, S>(
    party_ids: &[u32],
    plan: &FaultPlan,
    injector: &Injector,
    mut emit: E,
    mut submit: S,
) -> Result<RoundReport>
where
    E: FnMut(u32) -> Result<Vec<u8>>,
    S: FnMut(&[u8]) -> Result<Delivery>,
{
    // The failpoint streams decide *whether* a fault happens; this RNG
    // only picks positions (which byte corrupts, how frames shuffle).
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut report = RoundReport::default();
    let mut backoff = plan.backoff.iter();
    let mut pending: Vec<u32> = party_ids.to_vec();
    // Frames the transport held back last cycle; they arrive (intact)
    // ahead of this cycle's emissions.
    let mut in_flight: Vec<(u32, Vec<u8>)> = Vec::new();
    for cycle in 0..=plan.max_retries {
        if pending.is_empty() {
            break;
        }
        if cycle > 0 {
            let pause = backoff.next_delay();
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        report.cycles += 1;
        // Emit one frame per pending party without one already in
        // flight, then let the transport have its way with the batch.
        let mut frames: Vec<(u32, Vec<u8>)> = std::mem::take(&mut in_flight);
        for &party in &pending {
            if frames.iter().any(|(p, _)| *p == party) {
                continue;
            }
            let mut bytes = emit(party)?;
            report.sent += 1;
            if injector.fires(sites::DROP) {
                report.dropped += 1;
                continue;
            }
            if injector.fires(sites::CORRUPT) {
                let idx = rng.gen_range(0..bytes.len());
                let bit = 1u8 << rng.gen_range(0..8u32);
                bytes[idx] ^= bit;
                report.corrupted += 1;
            }
            let duplicate = injector.fires(sites::DUPLICATE);
            report.bytes_sent += bytes.len() as u64 * if duplicate { 2 } else { 1 };
            if duplicate {
                frames.push((party, bytes.clone()));
            }
            frames.push((party, bytes));
        }
        if plan.reorder && frames.len() > 1 {
            // Fisher–Yates over the cycle's frames.
            for i in (1..frames.len()).rev() {
                let j = rng.gen_range(0..=i);
                frames.swap(i, j);
            }
        }
        for (party, bytes) in frames {
            if injector.fires(sites::DELAY) {
                report.delayed += 1;
                in_flight.push((party, bytes));
                continue;
            }
            match submit(&bytes) {
                Ok(Delivery::Accepted { .. }) => {
                    if injector.fires(sites::TIMEOUT) {
                        // The coordinator owns the frame, the sender
                        // never learns: resend next cycle, get told
                        // Duplicate, credit then.
                        report.timeouts += 1;
                    } else {
                        report.delivered += 1;
                        pending.retain(|p| *p != party);
                    }
                }
                Ok(Delivery::Duplicate { .. }) => {
                    // An idempotent-resend receipt is proof of
                    // possession — exactly what a timed-out ack needs.
                    report.duplicates += 1;
                    pending.retain(|p| *p != party);
                }
                Err(_) => report.rejected += 1,
            }
        }
    }
    if pending.is_empty() {
        report.complete = true;
        Ok(report)
    } else {
        Err(Error::RetriesExhausted { attempts: report.cycles, pending: pending.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    use crate::domain::{Domain, Partition};
    use crate::error::Error;
    use crate::federate::{Coordinator, Party};
    use crate::randomize::NoiseModel;

    fn setup<'a>(
        noise: &'a NoiseModel,
        partition: Partition,
        masked: bool,
        round: u32,
    ) -> (Vec<Party<'a>>, Coordinator<'a>) {
        let cohort = 3u32;
        let mut parties: Vec<Party<'a>> = (0..cohort)
            .map(|id| Party::new(noise, partition, id, cohort, 0xC0FFEE).unwrap())
            .collect();
        for (i, party) in parties.iter_mut().enumerate() {
            let values: Vec<f64> = (0..20 + i * 5).map(|v| (v * 7 % 100) as f64).collect();
            party.ingest(&values).unwrap();
        }
        let coordinator = Coordinator::new(noise, partition, cohort, round, masked).unwrap();
        (parties, coordinator)
    }

    #[test]
    fn clean_transport_completes_in_one_cycle() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let (parties, mut coordinator) = setup(&noise, partition, false, 1);
        let ids: Vec<u32> = parties.iter().map(Party::id).collect();
        let report = drive_round(
            &ids,
            &FaultPlan::default(),
            |p| parties[p as usize].emit(1),
            |bytes| coordinator.submit(bytes),
        )
        .unwrap();
        assert!(report.complete);
        assert_eq!(report.cycles, 1);
        assert_eq!(report.delivered, 3);
        assert_eq!(report.rejected, 0);
        assert!(coordinator.is_complete());
    }

    #[test]
    fn faulty_transport_retries_to_completion_masked_and_plain() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let plan = FaultPlan {
            drop: 0.3,
            duplicate: 0.3,
            corrupt: 0.3,
            reorder: true,
            seed: 99,
            max_retries: 64,
            ..FaultPlan::default()
        };
        for masked in [false, true] {
            let (parties, mut coordinator) = setup(&noise, partition, masked, 2);
            let ids: Vec<u32> = parties.iter().map(Party::id).collect();
            let expected = {
                let mut merged = parties[0].stats().clone();
                merged.merge_from(parties[1].stats()).unwrap();
                merged.merge_from(parties[2].stats()).unwrap();
                merged
            };
            let report = drive_round(
                &ids,
                &plan,
                |p| {
                    let party = &parties[p as usize];
                    if masked {
                        party.emit_masked(2)
                    } else {
                        party.emit(2)
                    }
                },
                |bytes| coordinator.submit(bytes),
            )
            .unwrap();
            assert!(report.complete, "masked={masked} report {report:?}");
            // Every corrupted frame was refused, never absorbed (a
            // corrupted frame that was also duplicated is refused twice).
            assert!(report.rejected >= report.corrupted);
            // Transport weather cannot change the merged statistics.
            assert_eq!(coordinator.merged().unwrap(), expected, "masked={masked}");
        }
    }

    #[test]
    fn fault_schedule_replays_identically() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let plan = FaultPlan {
            drop: 0.25,
            corrupt: 0.25,
            delay: 0.25,
            reorder: true,
            seed: 4242,
            max_retries: 64,
            ..FaultPlan::default()
        };
        let run = || {
            let (parties, mut coordinator) = setup(&noise, partition, false, 2);
            let ids: Vec<u32> = parties.iter().map(Party::id).collect();
            drive_round(
                &ids,
                &plan,
                |p| parties[p as usize].emit(2),
                |bytes| coordinator.submit(bytes),
            )
            .unwrap()
        };
        assert_eq!(run(), run(), "a seeded plan replays the exact same weather");
    }

    #[test]
    fn exhausted_retries_are_a_typed_error() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let (parties, mut coordinator) = setup(&noise, partition, false, 3);
        let ids: Vec<u32> = parties.iter().map(Party::id).collect();
        let plan = FaultPlan { drop: 1.0, max_retries: 2, ..FaultPlan::default() };
        let err = drive_round(
            &ids,
            &plan,
            |p| parties[p as usize].emit(3),
            |bytes| coordinator.submit(bytes),
        )
        .unwrap_err();
        match err {
            Error::RetriesExhausted { attempts, pending } => {
                assert_eq!(attempts, 3, "initial cycle plus two retries");
                assert_eq!(pending, 3, "no party ever got through");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert!(matches!(coordinator.merged(), Err(Error::ShardMismatch(_))));
    }

    #[test]
    fn delayed_frames_arrive_next_cycle_without_re_emission() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let (parties, mut coordinator) = setup(&noise, partition, false, 4);
        let ids: Vec<u32> = parties.iter().map(Party::id).collect();
        // Every frame is delayed exactly once: cycle 1 emits and holds
        // all three, cycle 2 delivers them (the Prob stream is seeded,
        // so use Always via drive_round_with for a deterministic shape).
        let registry = Arc::new(FaultRegistry::new(0));
        registry.arm(sites::DELAY, FaultSpec::new(FaultKind::Trip, Trigger::Always).with_limit(3));
        let plan = FaultPlan { max_retries: 4, ..FaultPlan::default() };
        let report = drive_round_with(
            &ids,
            &plan,
            &Injector::new(registry),
            |p| parties[p as usize].emit(4),
            |bytes| coordinator.submit(bytes),
        )
        .unwrap();
        assert!(report.complete);
        assert_eq!(report.delayed, 3);
        assert_eq!(report.sent, 3, "in-flight parties are not re-emitted");
        assert_eq!(report.cycles, 2);
        assert!(coordinator.is_complete());
    }

    #[test]
    fn lost_acks_converge_via_duplicate_receipts() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let (parties, mut coordinator) = setup(&noise, partition, false, 5);
        let ids: Vec<u32> = parties.iter().map(Party::id).collect();
        let expected = {
            let mut merged = parties[0].stats().clone();
            merged.merge_from(parties[1].stats()).unwrap();
            merged.merge_from(parties[2].stats()).unwrap();
            merged
        };
        // Every first delivery is accepted but its ack lost; the resend
        // comes back Duplicate and credits the party. timeout=1.0 still
        // converges in exactly two cycles — and double-submission cannot
        // change the merge.
        let plan = FaultPlan { timeout: 1.0, max_retries: 2, ..FaultPlan::default() };
        let report = drive_round(
            &ids,
            &plan,
            |p| parties[p as usize].emit(5),
            |bytes| coordinator.submit(bytes),
        )
        .unwrap();
        assert!(report.complete);
        assert_eq!(report.cycles, 2);
        assert_eq!(report.timeouts, 3);
        assert_eq!(report.duplicates, 3, "credit arrived as duplicate receipts");
        assert_eq!(report.delivered, 0, "no ack ever survived");
        assert_eq!(coordinator.merged().unwrap(), expected, "resends are idempotent");
    }

    #[test]
    fn retry_backoff_paces_resend_cycles() {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = Partition::new(Domain::new(0.0, 100.0).unwrap(), 10).unwrap();
        let (parties, mut coordinator) = setup(&noise, partition, false, 6);
        let ids: Vec<u32> = parties.iter().map(Party::id).collect();
        let plan = FaultPlan {
            timeout: 1.0,
            max_retries: 2,
            backoff: BackoffPolicy::new(Duration::from_millis(15), Duration::from_millis(15)),
            ..FaultPlan::default()
        };
        let started = Instant::now();
        let report = drive_round(
            &ids,
            &plan,
            |p| parties[p as usize].emit(6),
            |bytes| coordinator.submit(bytes),
        )
        .unwrap();
        assert!(report.complete);
        assert_eq!(report.cycles, 2, "one retry cycle, so exactly one pause");
        assert!(
            started.elapsed() >= Duration::from_millis(10),
            "the retry cycle must wait out the backoff delay"
        );
    }
}
