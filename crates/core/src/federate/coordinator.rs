//! The aggregation side of the protocol: collect one sketch per party,
//! merge, reconstruct.
//!
//! A [`Coordinator`] is bound to one `(channel, partition, round,
//! cohort, masked?)` aggregation. Every submitted message runs the full
//! wire gauntlet — checksum, version, header sanity, fingerprint and
//! geometry echoes — before it can count toward the round, and the round
//! only unlocks [`Coordinator::merged`] once *every* cohort member has
//! delivered. Merging is the same exact integer-sketch merge the
//! in-process layer uses, so the coordinator's solve is bit-identical to
//! a monolithic solve over the concatenated records no party ever sent.
//!
//! Delivery is idempotent and order-free: an exact duplicate (a resend,
//! or a transport-duplicated frame) is acknowledged and ignored, and
//! because sketch merging is commutative the arrival order of parties
//! cannot influence the result — both properties are pinned by
//! `tests/federate_wire.rs`. A *conflicting* resend (same party, same
//! round, different payload) is refused outright: accepting either copy
//! silently would make the result delivery-order-dependent.

use std::collections::BTreeMap;

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::{DiscreteChannel, NoiseDensity};
use crate::reconstruct::{
    shared_discrete_engine, shared_engine, DiscreteReconstruction, DiscreteReconstructionConfig,
    DiscreteReconstructionEngine, DiscreteSuffStats, Reconstruction, ReconstructionConfig,
    ReconstructionEngine, SuffStats,
};

use super::wire::WireSketch;

/// Outcome of one accepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// First delivery from this party this round.
    Accepted {
        /// The submitting party.
        party: u32,
    },
    /// Byte-equivalent resend of an already-delivered sketch; ignored
    /// without side effects (idempotent).
    Duplicate {
        /// The submitting party.
        party: u32,
    },
}

impl Delivery {
    /// The party credited by this delivery.
    pub fn party(&self) -> u32 {
        match *self {
            Delivery::Accepted { party } | Delivery::Duplicate { party } => party,
        }
    }
}

/// Shared round bookkeeping: which parties have delivered which payloads.
struct RoundState {
    round: u32,
    cohort: u32,
    masked: bool,
    received: BTreeMap<u32, WireSketch>,
}

impl RoundState {
    fn new(cohort: u32, round: u32, masked: bool) -> Result<Self> {
        if cohort == 0 {
            return Err(Error::ShardMismatch("cohort must contain at least one party".to_string()));
        }
        Ok(RoundState { round, cohort, masked, received: BTreeMap::new() })
    }

    /// Protocol-level checks shared by both coordinators, run after the
    /// structural decode and before the channel-specific echo checks.
    fn check_header(&self, sketch: &WireSketch) -> Result<()> {
        if sketch.round() != self.round {
            return Err(Error::ShardMismatch(format!(
                "sketch is for round {}, coordinator aggregates round {}",
                sketch.round(),
                self.round
            )));
        }
        if sketch.cohort() != self.cohort {
            return Err(Error::ShardMismatch(format!(
                "sketch declares a cohort of {}, coordinator expects {}",
                sketch.cohort(),
                self.cohort
            )));
        }
        if sketch.masked() != self.masked {
            return Err(Error::ShardMismatch(format!(
                "sketch is {}, coordinator runs {} aggregation",
                if sketch.masked() { "masked" } else { "unmasked" },
                if self.masked { "masked" } else { "unmasked" }
            )));
        }
        Ok(())
    }

    fn record(&mut self, sketch: WireSketch) -> Result<Delivery> {
        let party = sketch.party();
        match self.received.get(&party) {
            None => {
                self.received.insert(party, sketch);
                Ok(Delivery::Accepted { party })
            }
            Some(existing) if *existing == sketch => Ok(Delivery::Duplicate { party }),
            Some(_) => Err(Error::ShardMismatch(format!(
                "party {party} resent a conflicting payload for round {}",
                self.round
            ))),
        }
    }

    fn missing(&self) -> Vec<u32> {
        (0..self.cohort).filter(|p| !self.received.contains_key(p)).collect()
    }

    fn complete(&self) -> bool {
        self.received.len() == self.cohort as usize
    }

    fn require_complete(&self) -> Result<()> {
        if !self.complete() {
            return Err(Error::ShardMismatch(format!(
                "round {} incomplete: missing parties {:?}",
                self.round,
                self.missing()
            )));
        }
        Ok(())
    }

    /// Wrapping-sums every share into one unmasked aggregate sketch —
    /// the secure-aggregation unmask. Callable only on a complete
    /// masked round; the caller re-validates the aggregate's counts
    /// (mask residue from a mis-seeded cohort fails that check).
    fn masked_aggregate(&self) -> WireSketch {
        debug_assert!(self.masked && self.complete());
        let mut shares = self.received.values();
        let mut agg = shares.next().expect("cohort >= 1").clone_as_unmasked();
        for share in shares {
            agg.accumulate_wrapping(share);
        }
        agg
    }
}

fn cancellation_context(err: Error) -> Error {
    match err {
        Error::WireCorrupt(msg) => Error::WireCorrupt(format!(
            "masked aggregate did not cancel ({msg}); did every party mask over the same \
             session seed, round, and cohort?"
        )),
        other => other,
    }
}

/// Collects k continuous-sketch shares and reconstructs from their merge.
///
/// # Example
///
/// ```
/// use ppdm_core::domain::{Domain, Partition};
/// use ppdm_core::federate::{Coordinator, Party};
/// use ppdm_core::randomize::NoiseModel;
/// use ppdm_core::reconstruct::ReconstructionConfig;
///
/// let noise = NoiseModel::gaussian(10.0)?;
/// let partition = Partition::new(Domain::new(0.0, 100.0)?, 10)?;
///
/// // Two parties ingest privately and emit masked shares for round 1...
/// let mut parties = [
///     Party::new(&noise, partition, 0, 2, 99)?,
///     Party::new(&noise, partition, 1, 2, 99)?,
/// ];
/// parties[0].ingest(&[12.5, 47.0])?;
/// parties[1].ingest(&[81.3])?;
///
/// // ...and the coordinator reconstructs from the cohort sum alone.
/// let mut coordinator = Coordinator::new(&noise, partition, 2, 1, true)?;
/// for party in &parties {
///     coordinator.submit(&party.emit_masked(1)?)?;
/// }
/// assert!(coordinator.is_complete());
/// let result = coordinator.reconstruct(&ReconstructionConfig::default())?;
/// assert_eq!(result.histogram.total().round(), 3.0);
/// # Ok::<(), ppdm_core::Error>(())
/// ```
pub struct Coordinator<'a> {
    noise: &'a dyn NoiseDensity,
    partition: Partition,
    state: RoundState,
}

impl<'a> Coordinator<'a> {
    /// A coordinator for one round over `cohort` parties. `masked`
    /// selects secure aggregation: every submission must then be a
    /// masked share, and only the complete cohort sum is ever
    /// interpreted.
    pub fn new(
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        cohort: u32,
        round: u32,
        masked: bool,
    ) -> Result<Self> {
        // Fail fast on a channel the sketch layer can't bind to.
        SuffStats::new(noise, partition)?;
        Ok(Coordinator { noise, partition, state: RoundState::new(cohort, round, masked)? })
    }

    /// Decodes, authenticates, and records one party's message.
    ///
    /// Corrupt frames ([`Error::WireCorrupt`]), wrong versions
    /// ([`Error::WireVersionMismatch`]), and sketches for the wrong
    /// round/cohort/channel/partition ([`Error::ShardMismatch`]) are all
    /// refused without touching round state — the transport may retry.
    pub fn submit(&mut self, bytes: &[u8]) -> Result<Delivery> {
        let sketch = WireSketch::decode(bytes)?;
        self.state.check_header(&sketch)?;
        sketch.validate_continuous(self.noise, self.partition)?;
        self.state.record(sketch)
    }

    /// Parties that have not delivered yet (the resend set).
    pub fn missing_parties(&self) -> Vec<u32> {
        self.state.missing()
    }

    /// Whether every cohort member has delivered.
    pub fn is_complete(&self) -> bool {
        self.state.complete()
    }

    /// The round this coordinator aggregates.
    pub fn round(&self) -> u32 {
        self.state.round
    }

    /// The exact merged statistics of the complete round.
    ///
    /// Unmasked rounds merge each party's sketch through
    /// [`SuffStats::merge_from`]; masked rounds wrapping-sum the shares
    /// (cancelling the masks) and validate the aggregate before it
    /// becomes a sketch. Either way the result equals the sketch of the
    /// concatenated records, bit for bit.
    pub fn merged(&self) -> Result<SuffStats> {
        self.state.require_complete()?;
        if self.state.masked {
            let agg = self.state.masked_aggregate();
            agg.to_stats(self.noise, self.partition).map_err(cancellation_context)
        } else {
            let mut merged = SuffStats::new(self.noise, self.partition)?;
            for sketch in self.state.received.values() {
                merged.merge_from(&sketch.to_stats(self.noise, self.partition)?)?;
            }
            Ok(merged)
        }
    }

    /// Reconstructs the original distribution from the merged round,
    /// through the process-wide shared engine.
    ///
    /// A cohort solve is a single job, so `config.parallel` routes
    /// straight through: under the default
    /// [`crate::reconstruct::ParallelPolicy::Auto`] a big enough merged
    /// round engages the block-parallel E-step whenever the rayon pool
    /// is free, with bit-identical results either way.
    pub fn reconstruct(&self, config: &ReconstructionConfig) -> Result<Reconstruction> {
        self.reconstruct_with(shared_engine(), config)
    }

    /// As [`Self::reconstruct`] with an explicit engine (for embedders
    /// managing their own kernel-cache budgets).
    pub fn reconstruct_with(
        &self,
        engine: &ReconstructionEngine,
        config: &ReconstructionConfig,
    ) -> Result<Reconstruction> {
        engine.reconstruct_stats(self.noise, &self.merged()?, config, None)
    }
}

/// Collects k discrete-sketch shares and reconstructs from their merge.
pub struct DiscreteCoordinator<'a> {
    channel: &'a dyn DiscreteChannel,
    state: RoundState,
}

impl<'a> DiscreteCoordinator<'a> {
    /// A coordinator for one round over `cohort` parties (see
    /// [`Coordinator::new`]).
    pub fn new(
        channel: &'a dyn DiscreteChannel,
        cohort: u32,
        round: u32,
        masked: bool,
    ) -> Result<Self> {
        DiscreteSuffStats::new(channel)?;
        Ok(DiscreteCoordinator { channel, state: RoundState::new(cohort, round, masked)? })
    }

    /// Decodes, authenticates, and records one party's message (see
    /// [`Coordinator::submit`]).
    pub fn submit(&mut self, bytes: &[u8]) -> Result<Delivery> {
        let sketch = WireSketch::decode(bytes)?;
        self.state.check_header(&sketch)?;
        sketch.validate_discrete(self.channel)?;
        self.state.record(sketch)
    }

    /// Parties that have not delivered yet (the resend set).
    pub fn missing_parties(&self) -> Vec<u32> {
        self.state.missing()
    }

    /// Whether every cohort member has delivered.
    pub fn is_complete(&self) -> bool {
        self.state.complete()
    }

    /// The round this coordinator aggregates.
    pub fn round(&self) -> u32 {
        self.state.round
    }

    /// The exact merged statistics of the complete round (see
    /// [`Coordinator::merged`]).
    pub fn merged(&self) -> Result<DiscreteSuffStats> {
        self.state.require_complete()?;
        if self.state.masked {
            let agg = self.state.masked_aggregate();
            agg.to_discrete_stats(self.channel).map_err(cancellation_context)
        } else {
            let mut merged = DiscreteSuffStats::new(self.channel)?;
            for sketch in self.state.received.values() {
                merged.merge_from(&sketch.to_discrete_stats(self.channel)?)?;
            }
            Ok(merged)
        }
    }

    /// Reconstructs the original state distribution from the merged
    /// round, through the process-wide shared discrete engine.
    /// `config.parallel` routes through exactly as in the continuous
    /// [`Coordinator::reconstruct`].
    pub fn reconstruct(
        &self,
        config: &DiscreteReconstructionConfig,
    ) -> Result<DiscreteReconstruction> {
        self.reconstruct_with(shared_discrete_engine(), config)
    }

    /// As [`Self::reconstruct`] with an explicit engine.
    pub fn reconstruct_with(
        &self,
        engine: &DiscreteReconstructionEngine,
        config: &DiscreteReconstructionConfig,
    ) -> Result<DiscreteReconstruction> {
        engine.reconstruct_stats(self.channel, &self.merged()?, config, None)
    }
}
