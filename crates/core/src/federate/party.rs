//! The data-holder side of the protocol: ingest locally, emit sketches.
//!
//! A [`Party`] owns one local [`SuffStats`] sketch (a [`DiscreteParty`]
//! a [`DiscreteSuffStats`]) and never exposes anything else: raw
//! perturbed records stay on the party, and what crosses the wire is an
//! encoded [`WireSketch`] — plain, or masked into a secure-aggregation
//! share ([`Party::emit_masked`]).
//!
//! Emission is a pure function of `(local sketch, round)`: re-emitting
//! for the same round — e.g. on a coordinator-requested resend after a
//! transport fault — produces byte-identical messages, masked or not
//! (masks derive from `(session_seed, round, pair)`), which is what
//! makes duplicate delivery idempotent at the coordinator.

use crate::domain::Partition;
use crate::error::Result;
use crate::randomize::{DiscreteChannel, NoiseDensity};
use crate::reconstruct::{DiscreteSuffStats, SuffStats};

use super::wire::WireSketch;

/// One federated data holder over a continuous channel.
///
/// # Example
///
/// ```
/// use ppdm_core::domain::{Domain, Partition};
/// use ppdm_core::federate::Party;
/// use ppdm_core::randomize::NoiseModel;
///
/// let noise = NoiseModel::gaussian(10.0)?;
/// let partition = Partition::new(Domain::new(0.0, 100.0)?, 10)?;
/// // Party 0 of a 3-party cohort sharing session seed 42.
/// let mut party = Party::new(&noise, partition, 0, 3, 42)?;
/// party.ingest(&[12.5, 47.0, 81.3])?;
/// let message = party.emit_masked(1)?; // round 1, secure-aggregation share
/// assert!(!message.is_empty());
/// # Ok::<(), ppdm_core::Error>(())
/// ```
pub struct Party<'a> {
    noise: &'a dyn NoiseDensity,
    stats: SuffStats,
    id: u32,
    cohort: u32,
    session_seed: u64,
}

impl<'a> Party<'a> {
    /// A party with an empty local sketch.
    ///
    /// `id` must lie in `0..cohort`; `session_seed` is the shared secret
    /// the cohort derives pairwise masks from (irrelevant for plain
    /// emission).
    pub fn new(
        noise: &'a dyn NoiseDensity,
        partition: Partition,
        id: u32,
        cohort: u32,
        session_seed: u64,
    ) -> Result<Self> {
        let stats = SuffStats::new(noise, partition)?;
        // Reuse the wire layer's membership validation by constructing a
        // throwaway sketch header.
        WireSketch::from_stats(&stats, id, 0, cohort)?;
        Ok(Party { noise, stats, id, cohort, session_seed })
    }

    /// Buckets a batch of locally-held perturbed observations into the
    /// party's sketch. The observations themselves never leave.
    pub fn ingest(&mut self, observed: &[f64]) -> Result<()> {
        self.stats.ingest(observed)
    }

    /// This party's id within the cohort.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The cohort size this party emits for.
    pub fn cohort(&self) -> u32 {
        self.cohort
    }

    /// The local sketch (visible to the party itself only; tests use it
    /// to cross-check protocol exactness).
    pub fn stats(&self) -> &SuffStats {
        &self.stats
    }

    /// The public noise channel this party's records went through.
    pub fn noise(&self) -> &'a dyn NoiseDensity {
        self.noise
    }

    /// The party's current sketch wrapped for the wire, unmasked.
    pub fn sketch(&self, round: u32) -> Result<WireSketch> {
        WireSketch::from_stats(&self.stats, self.id, round, self.cohort)
    }

    /// Encodes the party's sketch for `round`, plain.
    pub fn emit(&self, round: u32) -> Result<Vec<u8>> {
        Ok(self.sketch(round)?.encode())
    }

    /// Encodes the party's sketch for `round` as a secure-aggregation
    /// share: counts offset by this party's pairwise masks, meaningful
    /// only in the full cohort sum.
    pub fn emit_masked(&self, round: u32) -> Result<Vec<u8>> {
        let mut sketch = self.sketch(round)?;
        sketch.mask(self.session_seed)?;
        Ok(sketch.encode())
    }
}

/// One federated data holder over a discrete (categorical) channel.
pub struct DiscreteParty<'a> {
    channel: &'a dyn DiscreteChannel,
    stats: DiscreteSuffStats,
    id: u32,
    cohort: u32,
    session_seed: u64,
}

impl<'a> DiscreteParty<'a> {
    /// A party with an empty local sketch over `channel`'s states.
    pub fn new(
        channel: &'a dyn DiscreteChannel,
        id: u32,
        cohort: u32,
        session_seed: u64,
    ) -> Result<Self> {
        let stats = DiscreteSuffStats::new(channel)?;
        WireSketch::from_discrete_stats(&stats, id, 0, cohort)?;
        Ok(DiscreteParty { channel, stats, id, cohort, session_seed })
    }

    /// Tallies a batch of locally-held observed states into the party's
    /// sketch.
    pub fn ingest(&mut self, observed: &[usize]) -> Result<()> {
        self.stats.ingest(observed)
    }

    /// This party's id within the cohort.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The cohort size this party emits for.
    pub fn cohort(&self) -> u32 {
        self.cohort
    }

    /// The local sketch.
    pub fn stats(&self) -> &DiscreteSuffStats {
        &self.stats
    }

    /// The channel this party randomizes through.
    pub fn channel(&self) -> &'a dyn DiscreteChannel {
        self.channel
    }

    /// The party's current sketch wrapped for the wire, unmasked.
    pub fn sketch(&self, round: u32) -> Result<WireSketch> {
        WireSketch::from_discrete_stats(&self.stats, self.id, round, self.cohort)
    }

    /// Encodes the party's sketch for `round`, plain.
    pub fn emit(&self, round: u32) -> Result<Vec<u8>> {
        Ok(self.sketch(round)?.encode())
    }

    /// Encodes the party's sketch for `round` as a secure-aggregation
    /// share.
    pub fn emit_masked(&self, round: u32) -> Result<Vec<u8>> {
        let mut sketch = self.sketch(round)?;
        sketch.mask(self.session_seed)?;
        Ok(sketch.encode())
    }
}
