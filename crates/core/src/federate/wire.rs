//! The versioned, authenticated wire encoding of sufficient-statistics
//! sketches.
//!
//! A [`WireSketch`] is the *only* thing a federated party ever sends: the
//! integer bucket counts of its local [`SuffStats`] (or per-state counts
//! of a [`DiscreteSuffStats`]), wrapped in a header that pins everything
//! a coordinator must verify before the counts may influence a solve.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "PPDM"
//! 4       2     version (= 1)
//! 6       1     payload kind: 0 continuous, 1 discrete
//! 7       1     flags: bit 0 = masked (secure-aggregation share)
//! 8       4     party id (within the cohort)
//! 12      4     round number
//! 16      4     cohort size (number of parties aggregating this round)
//! 20      2     fingerprint family-tag length L
//! 22      L     fingerprint family tag (UTF-8, e.g. "gaussian")
//! 22+L    24    fingerprint params (3 x u64, IEEE-754 bit patterns)
//!         24|8  geometry echo:
//!                 continuous: domain lo bits, domain hi bits, cells
//!                 discrete:   state count
//!         8     ingested observation count
//!         8     bucket vector length K
//!         8K    bucket counts (u64 each)
//!         8     checksum: FNV-1a 64 over every preceding byte
//! ```
//!
//! # Why every single-byte corruption is caught
//!
//! The checksum is verified *first*, over the whole message minus its
//! own 8 bytes, before any field is interpreted. FNV-1a's state update
//! `h -> (h XOR byte) * prime` is injective in `h` for a fixed byte
//! (the prime is odd, hence invertible mod 2^64), and two states that
//! differ stay different under every subsequent update. So two bodies
//! that first differ at any byte *always* hash differently — a flip in
//! the body fails the comparison, and a flip in the checksum field
//! itself differs from the recomputed hash. Single-byte (indeed any
//! prefix-differing) corruption is therefore rejected deterministically,
//! not just with high probability; `tests/federate_wire.rs` sweeps every
//! byte of valid messages to pin this. Multi-byte collisions remain
//! probabilistic, which is fine: the checksum defends against transport
//! bit-rot, not adversarial forgery.
//!
//! # Strictness
//!
//! [`WireSketch::decode`] either returns a fully-validated sketch or an
//! error — there is no partial-decode or best-effort path, so a corrupt
//! or mismatched payload can never silently contribute wrong counts:
//!
//! * truncation, bad magic, checksum failure, unknown payload kind or
//!   flag bits, malformed lengths, trailing bytes, or (for unmasked
//!   payloads) counts that do not sum to the declared observation count
//!   → [`Error::WireCorrupt`];
//! * a version other than [`WIRE_VERSION`] → [`Error::WireVersionMismatch`]
//!   (reported before any version-dependent field is touched);
//! * a fingerprint or geometry echo that does not match the channel and
//!   partition the receiver aggregates over → [`Error::ShardMismatch`],
//!   through the same compatibility gate (the crate-private
//!   `SuffStats::compatible`) that guards in-process
//!   [`SuffStats::merge_from`].

use crate::domain::{Domain, Partition};
use crate::error::{Error, Result};
use crate::randomize::{ChannelFingerprint, DiscreteChannel, NoiseDensity};
use crate::reconstruct::{DiscreteSuffStats, SuffStats};

use super::mask::apply_pairwise_masks;

/// Leading magic bytes of every wire sketch.
pub const WIRE_MAGIC: [u8; 4] = *b"PPDM";

/// The (single) protocol version this build encodes and decodes.
pub const WIRE_VERSION: u16 = 1;

/// Largest count that round-trips exactly through `f64` (2^53). Bucket
/// counts are observation tallies, so real sketches sit far below this;
/// the decoder enforces it so a u64 count can never silently lose
/// precision on its way into the solver's `f64` working type.
pub const MAX_EXACT_COUNT: u64 = 1 << 53;

const KIND_CONTINUOUS: u8 = 0;
const KIND_DISCRETE: u8 = 1;
const FLAG_MASKED: u8 = 0b0000_0001;

/// Minimum possible encoding: empty family tag, discrete geometry, zero
/// buckets. Anything shorter cannot even hold a checksum-verified header.
const MIN_WIRE_LEN: usize = 4 + 2 + 1 + 1 + 4 + 4 + 4 + 2 + 24 + 8 + 8 + 8 + 8;

/// FNV-1a 64-bit checksum over `bytes` — the trailing-integrity function
/// of the wire format, exposed so tests and external implementations can
/// frame messages identically.
pub fn wire_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The geometry a sketch's counts are defined over, as echoed on the
/// wire for receiver-side verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryEcho {
    /// A continuous sketch: the original-domain partition the sender
    /// bucketed against (the noise-extended observation partition is
    /// derived from it and the channel, so it is not sent).
    Continuous {
        /// `Domain::lo` as IEEE-754 bits.
        lo_bits: u64,
        /// `Domain::hi` as IEEE-754 bits.
        hi_bits: u64,
        /// Cell count of the original-domain partition.
        cells: u64,
    },
    /// A discrete sketch: the channel's state count.
    Discrete {
        /// Number of categorical states.
        states: u64,
    },
}

/// One party's sketch as it travels: header metadata plus u64 bucket
/// counts, convertible back into a [`SuffStats`] / [`DiscreteSuffStats`]
/// only after every authentication check passes.
///
/// A *masked* sketch (see [`WireSketch::mask`] and [`super::mask`])
/// carries uniformly-distributed garbage counts that only become
/// meaningful once the whole cohort's shares are summed; it can never be
/// converted to statistics alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSketch {
    party: u32,
    round: u32,
    cohort: u32,
    masked: bool,
    /// Fingerprint family tag bytes (UTF-8 of e.g. `"gaussian"`).
    tag: Vec<u8>,
    /// Fingerprint parameters (IEEE-754 bit patterns).
    params: [u64; 3],
    geometry: GeometryEcho,
    /// Ingested observation count (a masked share's is masked too).
    count: u64,
    /// Per-bucket counts (a masked share's are masked too).
    counts: Vec<u64>,
}

fn check_membership(party: u32, cohort: u32) -> Result<()> {
    if cohort == 0 {
        return Err(Error::ShardMismatch("cohort must contain at least one party".to_string()));
    }
    if party >= cohort {
        return Err(Error::ShardMismatch(format!(
            "party id {party} outside cohort of {cohort} parties"
        )));
    }
    Ok(())
}

impl WireSketch {
    /// Wraps a continuous sketch for the wire, unmasked.
    ///
    /// `party` must lie in `0..cohort`. Counts are converted from the
    /// sketch's exact-integer `f64` storage to `u64` (checked — a
    /// non-integer or out-of-range count is a programming error upstream
    /// and is refused, never rounded).
    pub fn from_stats(stats: &SuffStats, party: u32, round: u32, cohort: u32) -> Result<Self> {
        check_membership(party, cohort)?;
        let counts = stats
            .counts()
            .iter()
            .map(|&c| {
                if c < 0.0 || c.fract() != 0.0 || c > MAX_EXACT_COUNT as f64 {
                    return Err(Error::WireCorrupt(format!(
                        "bucket count {c} is not an exact non-negative integer"
                    )));
                }
                Ok(c as u64)
            })
            .collect::<Result<Vec<u64>>>()?;
        let fp = stats.fingerprint();
        let domain = stats.partition().domain();
        Ok(WireSketch {
            party,
            round,
            cohort,
            masked: false,
            tag: fp.kind.as_bytes().to_vec(),
            params: fp.params,
            geometry: GeometryEcho::Continuous {
                lo_bits: domain.lo().to_bits(),
                hi_bits: domain.hi().to_bits(),
                cells: stats.partition().len() as u64,
            },
            count: stats.count(),
            counts,
        })
    }

    /// Wraps a discrete sketch for the wire, unmasked.
    pub fn from_discrete_stats(
        stats: &DiscreteSuffStats,
        party: u32,
        round: u32,
        cohort: u32,
    ) -> Result<Self> {
        check_membership(party, cohort)?;
        let fp = stats.fingerprint();
        Ok(WireSketch {
            party,
            round,
            cohort,
            masked: false,
            tag: fp.kind.as_bytes().to_vec(),
            params: fp.params,
            geometry: GeometryEcho::Discrete { states: stats.states() as u64 },
            count: stats.count(),
            counts: stats.counts().to_vec(),
        })
    }

    /// Sending party's id within the cohort.
    pub fn party(&self) -> u32 {
        self.party
    }

    /// Round number the sketch belongs to.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Cohort size the sender believes is aggregating this round.
    pub fn cohort(&self) -> u32 {
        self.cohort
    }

    /// Whether the counts are a secure-aggregation share rather than
    /// plain statistics.
    pub fn masked(&self) -> bool {
        self.masked
    }

    /// The geometry echo carried in the header.
    pub fn geometry(&self) -> GeometryEcho {
        self.geometry
    }

    /// Raw (possibly masked) bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Raw (possibly masked) observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Applies this party's pairwise secure-aggregation masks in place
    /// (see [`super::mask`] for the algebra). After masking, the counts
    /// are indistinguishable from uniform random words to anyone who
    /// does not hold the pairwise seeds; summing all `cohort` parties'
    /// masked sketches (as [`super::Coordinator`] does) cancels every
    /// mask exactly and recovers the unmasked sum.
    ///
    /// Masking is deliberately one-way at this layer: re-emitting for a
    /// resend derives the identical masks from `(session_seed, round)`,
    /// so retries stay byte-identical and duplicate-safe.
    pub fn mask(&mut self, session_seed: u64) -> Result<()> {
        if self.masked {
            return Err(Error::ShardMismatch("sketch is already masked".to_string()));
        }
        let mut words = Vec::with_capacity(self.counts.len() + 1);
        words.push(self.count);
        words.extend_from_slice(&self.counts);
        apply_pairwise_masks(&mut words, self.party, self.cohort, session_seed, self.round);
        self.count = words[0];
        self.counts.copy_from_slice(&words[1..]);
        self.masked = true;
        Ok(())
    }

    /// Serializes the sketch into its canonical byte encoding (see the
    /// module docs for the layout). Deterministic: equal sketches encode
    /// to equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let geometry_len = match self.geometry {
            GeometryEcho::Continuous { .. } => 24,
            GeometryEcho::Discrete { .. } => 8,
        };
        let body_len = MIN_WIRE_LEN - 8 - 8 + geometry_len + self.tag.len() + self.counts.len() * 8;
        let mut out = Vec::with_capacity(body_len + 8);
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(match self.geometry {
            GeometryEcho::Continuous { .. } => KIND_CONTINUOUS,
            GeometryEcho::Discrete { .. } => KIND_DISCRETE,
        });
        out.push(if self.masked { FLAG_MASKED } else { 0 });
        out.extend_from_slice(&self.party.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.cohort.to_le_bytes());
        let tag_len = u16::try_from(self.tag.len()).expect("family tags are short");
        out.extend_from_slice(&tag_len.to_le_bytes());
        out.extend_from_slice(&self.tag);
        for p in self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        match self.geometry {
            GeometryEcho::Continuous { lo_bits, hi_bits, cells } => {
                out.extend_from_slice(&lo_bits.to_le_bytes());
                out.extend_from_slice(&hi_bits.to_le_bytes());
                out.extend_from_slice(&cells.to_le_bytes());
            }
            GeometryEcho::Discrete { states } => {
                out.extend_from_slice(&states.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&(self.counts.len() as u64).to_le_bytes());
        for &c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        let checksum = wire_checksum(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Strict structural decode: checksum first, then version, then
    /// every field with exact length accounting. Returns the sketch or
    /// the first error — never a partially-filled value. See the module
    /// docs for the full refusal matrix.
    pub fn decode(bytes: &[u8]) -> Result<WireSketch> {
        if bytes.len() < MIN_WIRE_LEN {
            return Err(Error::WireCorrupt(format!(
                "truncated: {} bytes, a minimal sketch needs {MIN_WIRE_LEN}",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
        let computed = wire_checksum(body);
        if stored != computed {
            return Err(Error::WireCorrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        if cur.take(4)? != WIRE_MAGIC {
            return Err(Error::WireCorrupt("bad magic (not a PPDM sketch)".to_string()));
        }
        let version = cur.u16()?;
        if version != WIRE_VERSION {
            return Err(Error::WireVersionMismatch { found: version, supported: WIRE_VERSION });
        }
        let kind = cur.u8()?;
        let flags = cur.u8()?;
        if flags & !FLAG_MASKED != 0 {
            return Err(Error::WireCorrupt(format!("unknown flag bits {flags:#04x}")));
        }
        let masked = flags & FLAG_MASKED != 0;
        let party = cur.u32()?;
        let round = cur.u32()?;
        let cohort = cur.u32()?;
        if cohort == 0 || party >= cohort {
            return Err(Error::WireCorrupt(format!(
                "party id {party} outside cohort of {cohort} parties"
            )));
        }
        let tag_len = cur.u16()? as usize;
        let tag = cur.take(tag_len)?.to_vec();
        let params = [cur.u64()?, cur.u64()?, cur.u64()?];
        let geometry = match kind {
            KIND_CONTINUOUS => GeometryEcho::Continuous {
                lo_bits: cur.u64()?,
                hi_bits: cur.u64()?,
                cells: cur.u64()?,
            },
            KIND_DISCRETE => GeometryEcho::Discrete { states: cur.u64()? },
            other => {
                return Err(Error::WireCorrupt(format!("unknown payload kind {other}")));
            }
        };
        let count = cur.u64()?;
        let declared = cur.u64()?;
        let remaining = cur.buf.len() - cur.pos;
        if !remaining.is_multiple_of(8) || declared != (remaining / 8) as u64 {
            return Err(Error::WireCorrupt(format!(
                "bucket vector declares {declared} entries but {remaining} bytes follow"
            )));
        }
        let counts: Vec<u64> = (0..declared).map(|_| cur.u64()).collect::<Result<Vec<u64>>>()?;
        debug_assert_eq!(cur.pos, cur.buf.len(), "length accounting above is exact");
        let sketch =
            WireSketch { party, round, cohort, masked, tag, params, geometry, count, counts };
        if !masked {
            // An unmasked sketch's header count must be the exact sum of
            // its buckets; a masked share's fields are garbage until the
            // cohort sum cancels the masks, so the same check runs on
            // the aggregate instead (`check_exact_counts` at merge).
            sketch.check_exact_counts()?;
        }
        Ok(sketch)
    }

    /// Verifies that every count is an exactly-`f64`-representable
    /// integer and that the bucket sum equals the declared observation
    /// count. For a masked *aggregate* this doubles as the cancellation
    /// check: surviving mask residue leaves uniformly-random words that
    /// fail it with overwhelming probability.
    pub(crate) fn check_exact_counts(&self) -> Result<()> {
        let mut sum = 0u64;
        for &c in &self.counts {
            if c > MAX_EXACT_COUNT {
                return Err(Error::WireCorrupt(format!(
                    "bucket count {c} exceeds the exact f64 range (2^53)"
                )));
            }
            sum = sum.checked_add(c).ok_or_else(|| {
                Error::WireCorrupt("bucket counts overflow the total".to_string())
            })?;
        }
        if sum != self.count {
            return Err(Error::WireCorrupt(format!(
                "bucket counts sum to {sum}, header declares {}",
                self.count
            )));
        }
        Ok(())
    }

    /// Validates the fingerprint and geometry echoes against the
    /// continuous channel and partition the receiver aggregates over,
    /// returning an empty sketch of that geometry for the conversion
    /// paths. Mismatches surface as [`Error::ShardMismatch`] through the
    /// same `SuffStats` compatibility gate that guards in-process merges.
    fn expected_continuous(
        &self,
        noise: &dyn NoiseDensity,
        partition: Partition,
    ) -> Result<SuffStats> {
        let GeometryEcho::Continuous { lo_bits, hi_bits, cells } = self.geometry else {
            return Err(Error::ShardMismatch(
                "payload carries a discrete sketch, receiver expects continuous".to_string(),
            ));
        };
        let expected = SuffStats::new(noise, partition)?;
        let fp = expected.fingerprint();
        self.check_fingerprint_echo(fp.kind, fp.params)?;
        // Rebuild the sender's declared partition and run it through the
        // sketch-level compatibility gate (the same check a local
        // `merge` performs), so wire and in-process mismatches are one
        // code path with one error shape.
        let cells = usize::try_from(cells)
            .map_err(|_| Error::ShardMismatch(format!("geometry echo declares {cells} cells")))?;
        let domain = Domain::new(f64::from_bits(lo_bits), f64::from_bits(hi_bits))
            .map_err(|_| geometry_mismatch(partition, "an invalid domain"))?;
        let declared = Partition::new(domain, cells)
            .map_err(|_| geometry_mismatch(partition, "an invalid partition"))?;
        let candidate = SuffStats::new(noise, declared)?;
        expected.compatible(&candidate)?;
        if self.counts.len() != expected.counts().len() {
            return Err(Error::ShardMismatch(format!(
                "bucket vector has {} entries, geometry expects {}",
                self.counts.len(),
                expected.counts().len()
            )));
        }
        Ok(expected)
    }

    /// Discrete counterpart of [`Self::expected_continuous`]: validates
    /// the echoes against `channel` through the `DiscreteSuffStats`
    /// compatibility gate.
    fn expected_discrete(&self, channel: &dyn DiscreteChannel) -> Result<DiscreteSuffStats> {
        let GeometryEcho::Discrete { states } = self.geometry else {
            return Err(Error::ShardMismatch(
                "payload carries a continuous sketch, receiver expects discrete".to_string(),
            ));
        };
        let expected = DiscreteSuffStats::new(channel)?;
        let fp: ChannelFingerprint = expected.fingerprint();
        self.check_fingerprint_echo(fp.kind, fp.params)?;
        if states != expected.states() as u64 || self.counts.len() != expected.states() {
            return Err(Error::ShardMismatch(format!(
                "sketch is over {states} states with {} buckets, channel has {}",
                self.counts.len(),
                expected.states()
            )));
        }
        let candidate = DiscreteSuffStats::new(channel)?;
        expected.compatible(&candidate)?;
        Ok(expected)
    }

    fn check_fingerprint_echo(&self, kind: &'static str, params: [u64; 3]) -> Result<()> {
        if self.tag != kind.as_bytes() || self.params != params {
            return Err(Error::ShardMismatch(format!(
                "noise fingerprints differ: wire carries {:?} params {:?}, receiver expects \
                 {kind:?} params {params:?}",
                String::from_utf8_lossy(&self.tag),
                self.params,
            )));
        }
        Ok(())
    }

    /// Converts an *unmasked* continuous sketch back into a
    /// [`SuffStats`] bound to the receiver's channel and partition,
    /// after full echo validation. A masked share is refused — only the
    /// cohort-summed aggregate is meaningful.
    pub fn to_stats(&self, noise: &dyn NoiseDensity, partition: Partition) -> Result<SuffStats> {
        if self.masked {
            return Err(Error::ShardMismatch(
                "a masked sketch cannot be converted alone; aggregate the full cohort".to_string(),
            ));
        }
        let mut stats = self.expected_continuous(noise, partition)?;
        self.check_exact_counts()?;
        let counts: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        stats.install_counts(&counts, self.count)?;
        Ok(stats)
    }

    /// Converts an *unmasked* discrete sketch back into a
    /// [`DiscreteSuffStats`] bound to `channel`, after full echo
    /// validation.
    pub fn to_discrete_stats(&self, channel: &dyn DiscreteChannel) -> Result<DiscreteSuffStats> {
        if self.masked {
            return Err(Error::ShardMismatch(
                "a masked sketch cannot be converted alone; aggregate the full cohort".to_string(),
            ));
        }
        let mut stats = self.expected_discrete(channel)?;
        self.check_exact_counts()?;
        stats.install_counts(&self.counts, self.count)?;
        Ok(stats)
    }

    /// Validates every echo without converting counts — the check a
    /// coordinator runs on *masked* shares, whose counts cannot be
    /// interpreted yet but whose header must still authenticate.
    pub(crate) fn validate_continuous(
        &self,
        noise: &dyn NoiseDensity,
        partition: Partition,
    ) -> Result<()> {
        self.expected_continuous(noise, partition).map(|_| ())
    }

    /// Discrete counterpart of [`Self::validate_continuous`].
    pub(crate) fn validate_discrete(&self, channel: &dyn DiscreteChannel) -> Result<()> {
        self.expected_discrete(channel).map(|_| ())
    }

    /// A copy of this sketch with the masked flag cleared — the seed of
    /// a cohort aggregation (the caller then accumulates the remaining
    /// shares wrapping, which cancels the masks).
    pub(crate) fn clone_as_unmasked(&self) -> WireSketch {
        WireSketch { masked: false, ..self.clone() }
    }

    /// Accumulates another share's words into this one with wrapping
    /// arithmetic — the secure-aggregation sum. Lengths must already be
    /// validated equal (both passed the same geometry checks).
    pub(crate) fn accumulate_wrapping(&mut self, other: &WireSketch) {
        debug_assert_eq!(self.counts.len(), other.counts.len(), "validated geometry");
        self.count = self.count.wrapping_add(other.count);
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.wrapping_add(b);
        }
    }
}

fn geometry_mismatch(expected: Partition, what: &str) -> Error {
    Error::ShardMismatch(format!("geometry echo declares {what}; receiver expects {expected:?}"))
}

/// Bounds-checked little-endian reader over the message body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            Error::WireCorrupt(format!(
                "truncated: field of {n} bytes at offset {} overruns the message",
                self.pos
            ))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("exact slice")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("exact slice")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("exact slice")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomize::{NoiseModel, RandomizedResponse};

    fn part(cells: usize) -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
    }

    fn continuous_sketch() -> (NoiseModel, Partition, SuffStats) {
        let noise = NoiseModel::gaussian(10.0).unwrap();
        let partition = part(10);
        let stats =
            SuffStats::from_values(&noise, partition, &[5.0, 42.0, 42.5, 99.0, -3.0]).unwrap();
        (noise, partition, stats)
    }

    #[test]
    fn continuous_roundtrip_is_exact() {
        let (noise, partition, stats) = continuous_sketch();
        let wire = WireSketch::from_stats(&stats, 2, 7, 5).unwrap();
        let bytes = wire.encode();
        let back = WireSketch::decode(&bytes).unwrap();
        assert_eq!(back, wire);
        assert_eq!(back.to_stats(&noise, partition).unwrap(), stats);
        // Encoding is deterministic.
        assert_eq!(bytes, back.encode());
    }

    #[test]
    fn discrete_roundtrip_is_exact() {
        let channel = RandomizedResponse::new(4, 0.7).unwrap();
        let stats = DiscreteSuffStats::from_states(&channel, &[0, 1, 1, 3, 2, 2, 2]).unwrap();
        let wire = WireSketch::from_discrete_stats(&stats, 0, 3, 2).unwrap();
        let back = WireSketch::decode(&wire.encode()).unwrap();
        assert_eq!(back, wire);
        assert_eq!(back.to_discrete_stats(&channel).unwrap(), stats);
    }

    #[test]
    fn version_bump_is_reported_before_anything_else_in_a_valid_frame() {
        let (_, _, stats) = continuous_sketch();
        let mut bytes = WireSketch::from_stats(&stats, 0, 0, 1).unwrap().encode();
        // Forge a future-version frame with a *valid* checksum: bump the
        // version field, then re-frame.
        bytes[4] = 2;
        let body_len = bytes.len() - 8;
        let ck = wire_checksum(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&ck.to_le_bytes());
        assert_eq!(
            WireSketch::decode(&bytes),
            Err(Error::WireVersionMismatch { found: 2, supported: WIRE_VERSION })
        );
    }

    #[test]
    fn fingerprint_and_partition_echo_mismatches_are_shard_mismatch() {
        let (noise, partition, stats) = continuous_sketch();
        let wire = WireSketch::from_stats(&stats, 0, 0, 1).unwrap();
        // Different channel, same geometry.
        let other = NoiseModel::uniform(10.0).unwrap();
        assert!(matches!(wire.to_stats(&other, partition), Err(Error::ShardMismatch(_))));
        // Same channel, different partition.
        assert!(matches!(wire.to_stats(&noise, part(12)), Err(Error::ShardMismatch(_))));
        // Kind confusion: continuous payload offered to a discrete path.
        let channel = RandomizedResponse::new(4, 0.7).unwrap();
        assert!(matches!(wire.to_discrete_stats(&channel), Err(Error::ShardMismatch(_))));
        // The matching pair still works.
        assert!(wire.to_stats(&noise, partition).is_ok());
    }

    #[test]
    fn count_total_mismatch_is_rejected_at_decode() {
        let (_, _, stats) = continuous_sketch();
        let mut wire = WireSketch::from_stats(&stats, 0, 0, 1).unwrap();
        wire.count += 1;
        let bytes = wire.encode();
        assert!(matches!(WireSketch::decode(&bytes), Err(Error::WireCorrupt(_))));
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let (_, _, stats) = continuous_sketch();
        let bytes = WireSketch::from_stats(&stats, 0, 0, 1).unwrap().encode();
        assert!(matches!(WireSketch::decode(&[]), Err(Error::WireCorrupt(_))));
        assert!(matches!(
            WireSketch::decode(&bytes[..bytes.len() - 1]),
            Err(Error::WireCorrupt(_))
        ));
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(WireSketch::decode(&longer), Err(Error::WireCorrupt(_))));
    }

    #[test]
    fn masked_share_refuses_lone_conversion() {
        let (noise, partition, stats) = continuous_sketch();
        let mut wire = WireSketch::from_stats(&stats, 0, 4, 3).unwrap();
        wire.mask(0xFEED).unwrap();
        assert!(wire.masked());
        let bytes = wire.encode();
        let back = WireSketch::decode(&bytes).unwrap();
        assert_eq!(back, wire);
        assert!(matches!(back.to_stats(&noise, partition), Err(Error::ShardMismatch(_))));
        // Double-masking is refused.
        assert!(wire.mask(0xFEED).is_err());
    }

    #[test]
    fn membership_is_validated_at_construction_and_decode() {
        let (_, _, stats) = continuous_sketch();
        assert!(WireSketch::from_stats(&stats, 0, 0, 0).is_err());
        assert!(WireSketch::from_stats(&stats, 3, 0, 3).is_err());
        assert!(WireSketch::from_stats(&stats, 2, 0, 3).is_ok());
    }
}
