//! Recycling pool for batch buffers: the no-allocation half of the
//! ingest hot path.
//!
//! Every admitted batch travels producer → mailbox → shard worker and
//! its buffer comes straight back to the pool, so a service in steady
//! state allocates nothing per batch: the working set is bounded by
//! (batches in flight) ≤ shards × mailbox capacity + producers. The pool
//! counts allocations and reuses so that bound is *observable* —
//! [`PoolStats::allocated`] flatlining while [`PoolStats::reused`] grows
//! is the steady-state signature the stress tests assert on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The free list is a plain stack: every critical section is a single
/// push or pop, so the guarded data is valid even if a holder panicked
/// (e.g. a fault-injected worker crash mid-recycle). Clear the poison
/// instead of cascading panics into every other thread touching the
/// pool.
fn lock_free_list(mutex: &Mutex<Vec<Vec<f64>>>) -> MutexGuard<'_, Vec<Vec<f64>>> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared, thread-safe pool of `Vec<f64>` batch buffers.
///
/// Cloning is cheap and shares the same pool. The free list is a single
/// mutex-guarded stack: it is touched once per batch (not per record),
/// so contention is negligible next to the bucketing work each batch
/// funds.
#[derive(Clone)]
pub struct BatchPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    free: Mutex<Vec<Vec<f64>>>,
    batch_capacity: usize,
    max_pooled: usize,
    allocated: AtomicU64,
    reused: AtomicU64,
}

/// Lifetime counters of a [`BatchPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers ever allocated fresh (checkouts the free list could not
    /// serve). Bounded by batches-in-flight in steady state.
    pub allocated: u64,
    /// Checkouts served by recycling a returned buffer.
    pub reused: u64,
    /// Buffers currently parked in the free list.
    pub pooled: usize,
}

impl BatchPool {
    /// A pool handing out buffers with `batch_capacity` reserved slots,
    /// keeping at most `max_pooled` idle buffers parked (returns beyond
    /// that are simply freed, so a burst cannot pin memory forever).
    pub fn new(batch_capacity: usize, max_pooled: usize) -> Self {
        BatchPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                batch_capacity,
                max_pooled,
                allocated: AtomicU64::new(0),
                reused: AtomicU64::new(0),
            }),
        }
    }

    /// Slots reserved in every buffer this pool hands out.
    pub fn batch_capacity(&self) -> usize {
        self.inner.batch_capacity
    }

    /// An empty buffer: recycled when one is parked, freshly allocated
    /// otherwise.
    pub fn checkout(&self) -> Vec<f64> {
        let recycled = lock_free_list(&self.inner.free).pop();
        match recycled {
            Some(buf) => {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.allocated.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.inner.batch_capacity)
            }
        }
    }

    /// Returns a buffer to the pool (cleared, contents discarded). Over-
    /// capacity returns and oversized buffers are dropped instead of
    /// parked.
    pub fn recycle(&self, mut buf: Vec<f64>) {
        buf.clear();
        let mut free = lock_free_list(&self.inner.free);
        if free.len() < self.inner.max_pooled {
            free.push(buf);
        }
    }

    /// Lifetime counters; see [`PoolStats`].
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocated: self.inner.allocated.load(Ordering::Relaxed),
            reused: self.inner.reused.load(Ordering::Relaxed),
            pooled: lock_free_list(&self.inner.free).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycle_roundtrip_reuses_buffers() {
        let pool = BatchPool::new(16, 8);
        let mut a = pool.checkout();
        assert_eq!(a.capacity(), 16);
        a.extend_from_slice(&[1.0, 2.0, 3.0]);
        pool.recycle(a);
        let b = pool.checkout();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), 16, "recycled buffers keep their storage");
        let stats = pool.stats();
        assert_eq!(stats.allocated, 1);
        assert_eq!(stats.reused, 1);
    }

    #[test]
    fn pool_size_is_bounded() {
        let pool = BatchPool::new(4, 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        for buf in bufs {
            pool.recycle(buf);
        }
        let stats = pool.stats();
        assert_eq!(stats.allocated, 5);
        assert_eq!(stats.pooled, 2, "returns beyond max_pooled are freed, not parked");
    }

    #[test]
    fn clones_share_one_pool() {
        let pool = BatchPool::new(4, 4);
        let clone = pool.clone();
        clone.recycle(pool.checkout());
        assert_eq!(pool.stats().pooled, 1);
        let _ = clone.checkout();
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let pool = BatchPool::new(8, 4);
        // Warm up with two in-flight buffers, then churn.
        let (a, b) = (pool.checkout(), pool.checkout());
        pool.recycle(a);
        pool.recycle(b);
        for _ in 0..100 {
            let buf = pool.checkout();
            pool.recycle(buf);
        }
        let stats = pool.stats();
        assert_eq!(stats.allocated, 2, "steady-state churn must not allocate");
        assert_eq!(stats.reused, 100);
    }
}
