//! Append-only write-ahead log of drained delta sketches: exact,
//! torn-tail-tolerant durability for the serve plane.
//!
//! # Why a sketch WAL is exact
//!
//! [`SuffStats`] merges are associative, commutative, *integer*
//! operations, so durability needs no record-level log: persisting the
//! per-cycle **delta sketch** (the merge of everything the re-solver
//! drained that cycle) and replaying `checkpoint ⊕ deltas` reproduces
//! the in-memory total **bit-for-bit**. The recovery algebra is one
//! line:
//!
//! ```text
//!   recover(file) = last_checkpoint ⊕ delta_{k+1} ⊕ ... ⊕ delta_n
//!                 = total at the moment frame n was appended
//! ```
//!
//! # Frame layout
//!
//! The file starts with the 8-byte magic `PPDMWAL1`, then frames:
//!
//! ```text
//!   ┌──────┬────────────┬──────────────────────────────────────────┐
//!   │ kind │  len (u32) │ payload: WireSketch::encode bytes        │
//!   │ 1 B  │  LE        │ (own magic, version, geometry echo,      │
//!   │      │            │  counts, trailing FNV-1a-64 checksum)    │
//!   └──────┴────────────┴──────────────────────────────────────────┘
//!   kind 0x01 = delta (merge into the running state)
//!   kind 0x02 = checkpoint (replace the running state)
//! ```
//!
//! The payload *is* the federate wire encoding ([`WireSketch`], party 0
//! of a cohort of 1, `round` = frame sequence number), so the WAL
//! inherits the wire's strict fail-closed decode: version check, full
//! structural validation, and checksum-before-parse. A frame is either
//! perfectly valid or the log ends there.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a torn final frame: a truncated header, a
//! length pointing past EOF, or a payload whose checksum no longer
//! matches. [`recover`] replays the longest valid prefix, **truncates
//! the file to that prefix**, and reports how many bytes it cut — so a
//! restarted service appends to a clean log. Everything before the tear
//! is untouched; durability loss is bounded by one resolve interval
//! (the records drained since the last successful append).

use std::fs::OpenOptions;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::federate::wire::WireSketch;
use crate::randomize::NoiseDensity;
use crate::reconstruct::streaming::SuffStats;

/// Leading file magic; rejects feeding a non-WAL file to [`recover`].
pub const WAL_MAGIC: [u8; 8] = *b"PPDMWAL1";

const FRAME_DELTA: u8 = 0x01;
const FRAME_CHECKPOINT: u8 = 0x02;
/// kind byte + u32 length prefix.
const FRAME_HEADER_LEN: usize = 5;

/// Durability knobs of an [`IngestService`](super::IngestService).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Log file path; created (with its magic header) if missing,
    /// appended to if present.
    pub path: PathBuf,
    /// Delta frames between automatic checkpoints (a checkpoint frame
    /// holds the full cumulative sketch, so recovery replays at most
    /// this many deltas). `0` disables periodic checkpoints; shutdown
    /// always writes a final one.
    pub checkpoint_interval: u64,
    /// Whether to `fsync` after every append. Off by default: the WAL
    /// then survives process crashes but not power loss mid-page, which
    /// is the right trade for a cache-like posterior service.
    pub sync: bool,
}

impl WalConfig {
    /// A config with the default cadence (checkpoint every 64 deltas,
    /// no per-append fsync).
    pub fn new(path: impl Into<PathBuf>) -> WalConfig {
        WalConfig { path: path.into(), checkpoint_interval: 64, sync: false }
    }
}

fn io_err(verb: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("wal {verb} {}: {e}", path.display()))
}

/// The appending end of a WAL, owned by the re-solver.
pub struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    sync: bool,
    checkpoint_interval: u64,
    deltas_since_checkpoint: u64,
    bytes: u64,
    frames: u64,
    seq: u32,
}

impl WalWriter {
    /// Opens (or creates) the log at `config.path` for appending. An
    /// existing file must start with [`WAL_MAGIC`]; run [`recover`]
    /// first if it may have a torn tail.
    pub fn open(config: &WalConfig) -> Result<WalWriter> {
        let path = &config.path;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        let end = file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", path, e))?;
        if end == 0 {
            file.write_all(&WAL_MAGIC).map_err(|e| io_err("write header", path, e))?;
        } else {
            let mut header = [0u8; 8];
            file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seek", path, e))?;
            file.read_exact(&mut header).map_err(|e| io_err("read header", path, e))?;
            if header != WAL_MAGIC {
                return Err(Error::Io(format!("{} is not a ppdm wal file", path.display())));
            }
            file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", path, e))?;
        }
        Ok(WalWriter {
            file,
            path: path.clone(),
            sync: config.sync,
            checkpoint_interval: config.checkpoint_interval,
            deltas_since_checkpoint: 0,
            bytes: end.max(WAL_MAGIC.len() as u64),
            frames: 0,
            seq: 0,
        })
    }

    fn append(&mut self, kind: u8, sketch: &SuffStats) -> Result<u64> {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        let payload = WireSketch::from_stats(sketch, 0, seq, 1)?.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.push(kind);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame).map_err(|e| io_err("append", &self.path, e))?;
        if self.sync {
            self.file.sync_data().map_err(|e| io_err("sync", &self.path, e))?;
        }
        self.bytes += frame.len() as u64;
        self.frames += 1;
        Ok(frame.len() as u64)
    }

    /// Appends one delta frame (a drained cycle's merged sketch).
    pub fn append_delta(&mut self, delta: &SuffStats) -> Result<u64> {
        let written = self.append(FRAME_DELTA, delta)?;
        self.deltas_since_checkpoint += 1;
        Ok(written)
    }

    /// Appends a checkpoint frame holding the full cumulative sketch and
    /// resets the delta-since-checkpoint counter.
    pub fn append_checkpoint(&mut self, total: &SuffStats) -> Result<u64> {
        let written = self.append(FRAME_CHECKPOINT, total)?;
        self.deltas_since_checkpoint = 0;
        Ok(written)
    }

    /// Whether the periodic checkpoint cadence is due.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_interval > 0 && self.deltas_since_checkpoint >= self.checkpoint_interval
    }

    /// Forces buffered appends to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| io_err("sync", &self.path, e))
    }

    /// Bytes in the log, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Frames appended by this writer (not counting pre-existing ones).
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

/// What [`recover`] reconstructed from a log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// The replayed sketch: bit-identical to the service's in-memory
    /// total at the moment the last valid frame was appended.
    pub merged: SuffStats,
    /// Valid frames replayed (deltas + checkpoints).
    pub frames: u64,
    /// Checkpoint frames among them.
    pub checkpoints: u64,
    /// Bytes cut off the tail (0 for a cleanly closed log).
    pub truncated_bytes: u64,
    /// Bytes retained (header + valid frames) — the file's size after
    /// recovery.
    pub wal_bytes: u64,
}

/// Replays the log at `path` into a merged [`SuffStats`] and truncates
/// any torn tail in place.
///
/// A missing file recovers to the empty sketch. Replay stops at the
/// first structurally invalid frame — truncated header, length past
/// EOF, unknown kind, or a payload failing the wire decode (bad magic,
/// checksum mismatch, malformed structure) — and the file is truncated
/// to the valid prefix so a subsequent [`WalWriter::open`] appends
/// cleanly.
///
/// # Errors
///
/// [`Error::Io`] when the file cannot be read, has a *complete but
/// wrong* leading magic (it is some other file — refusing beats wiping
/// it), or cannot be truncated; [`Error::ShardMismatch`] /
/// [`Error::WireCorrupt`] when a checksum-valid frame carries a sketch
/// for a different noise channel or partition geometry (the log belongs
/// to a different service configuration — that is a caller bug, not a
/// torn tail, and is never silently truncated).
pub fn recover(path: &Path, noise: &dyn NoiseDensity, partition: Partition) -> Result<WalRecovery> {
    let template = SuffStats::new(noise, partition)?;
    if !path.exists() {
        return Ok(WalRecovery {
            merged: template,
            frames: 0,
            checkpoints: 0,
            truncated_bytes: 0,
            wal_bytes: 0,
        });
    }
    let bytes = std::fs::read(path).map_err(|e| io_err("read", path, e))?;
    if bytes.len() >= WAL_MAGIC.len() && bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(Error::Io(format!("{} is not a ppdm wal file", path.display())));
    }

    let mut merged = template;
    let mut frames = 0u64;
    let mut checkpoints = 0u64;
    // A file shorter than its header is a torn header: valid prefix is
    // empty and the whole file is cut.
    let mut valid_len = if bytes.len() < WAL_MAGIC.len() { 0 } else { WAL_MAGIC.len() };
    let mut offset = valid_len;
    while valid_len > 0 && offset + FRAME_HEADER_LEN <= bytes.len() {
        let kind = bytes[offset];
        let len = u32::from_le_bytes(
            bytes[offset + 1..offset + FRAME_HEADER_LEN].try_into().expect("4 bytes"),
        ) as usize;
        let payload_start = offset + FRAME_HEADER_LEN;
        let Some(payload_end) = payload_start.checked_add(len) else { break };
        if payload_end > bytes.len() {
            break; // length points past EOF: torn tail
        }
        if kind != FRAME_DELTA && kind != FRAME_CHECKPOINT {
            break; // unknown kind: corruption starts here
        }
        let Ok(wire) = WireSketch::decode(&bytes[payload_start..payload_end]) else {
            break; // checksum/structure failure: frame is damaged
        };
        // Past the checksum gate, a mismatched geometry is a semantic
        // error (wrong service config), not tail damage: propagate.
        let sketch = wire.to_stats(noise, partition)?;
        match kind {
            FRAME_DELTA => merged.merge_from(&sketch)?,
            _ => {
                merged = sketch;
                checkpoints += 1;
            }
        }
        frames += 1;
        offset = payload_end;
        valid_len = offset;
    }

    let truncated = bytes.len() as u64 - valid_len as u64;
    if truncated > 0 {
        let file =
            OpenOptions::new().write(true).open(path).map_err(|e| io_err("open", path, e))?;
        file.set_len(valid_len as u64).map_err(|e| io_err("truncate", path, e))?;
    }
    Ok(WalRecovery {
        merged,
        frames,
        checkpoints,
        truncated_bytes: truncated,
        wal_bytes: valid_len as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::randomize::NoiseModel;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn part() -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), 12).unwrap()
    }

    fn channel() -> NoiseModel {
        NoiseModel::gaussian(8.0).unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ppdm_wal_test_{}_{n}_{tag}.wal", std::process::id()))
    }

    fn sketch(noise: &NoiseModel, values: &[f64]) -> SuffStats {
        SuffStats::from_values(noise, part(), values).unwrap()
    }

    #[test]
    fn missing_file_recovers_empty() {
        let path = temp_path("missing");
        let rec = recover(&path, &channel(), part()).unwrap();
        assert!(rec.merged.is_empty());
        assert_eq!(rec.frames, 0);
        assert_eq!(rec.wal_bytes, 0);
    }

    #[test]
    fn deltas_replay_to_the_exact_merge() {
        let noise = channel();
        let path = temp_path("deltas");
        let a = sketch(&noise, &[10.0, 20.0, 30.0]);
        let b = sketch(&noise, &[55.0, 66.0]);
        {
            let mut writer = WalWriter::open(&WalConfig::new(&path)).unwrap();
            writer.append_delta(&a).unwrap();
            writer.append_delta(&b).unwrap();
            assert_eq!(writer.frames(), 2);
        }
        let rec = recover(&path, &noise, part()).unwrap();
        let mut expected = a.clone();
        expected.merge_from(&b).unwrap();
        assert_eq!(rec.merged, expected, "replay is the exact merge");
        assert_eq!(rec.frames, 2);
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_supersedes_earlier_frames() {
        let noise = channel();
        let path = temp_path("ckpt");
        let junk = sketch(&noise, &[1.0, 2.0]);
        let total = sketch(&noise, &[40.0, 50.0, 60.0]);
        let tail = sketch(&noise, &[70.0]);
        {
            let mut writer = WalWriter::open(&WalConfig::new(&path)).unwrap();
            writer.append_delta(&junk).unwrap();
            writer.append_checkpoint(&total).unwrap();
            writer.append_delta(&tail).unwrap();
        }
        let rec = recover(&path, &noise, part()).unwrap();
        let mut expected = total.clone();
        expected.merge_from(&tail).unwrap();
        assert_eq!(rec.merged, expected, "checkpoint replaces, deltas after it merge");
        assert_eq!(rec.checkpoints, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_valid_prefix() {
        let noise = channel();
        let path = temp_path("torn");
        let a = sketch(&noise, &[10.0, 20.0]);
        let b = sketch(&noise, &[80.0, 90.0]);
        let boundary;
        {
            let mut writer = WalWriter::open(&WalConfig::new(&path)).unwrap();
            writer.append_delta(&a).unwrap();
            boundary = writer.bytes();
            writer.append_delta(&b).unwrap();
        }
        // Tear the second frame: cut 3 bytes off the end.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 3).unwrap();
        drop(file);

        let rec = recover(&path, &noise, part()).unwrap();
        assert_eq!(rec.merged, a, "only the intact prefix replays");
        assert_eq!(rec.frames, 1);
        assert_eq!(rec.wal_bytes, boundary);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), boundary, "file was truncated");
        // The truncated log accepts further appends and stays exact.
        {
            let mut writer = WalWriter::open(&WalConfig::new(&path)).unwrap();
            writer.append_delta(&b).unwrap();
        }
        let rec = recover(&path, &noise, part()).unwrap();
        let mut expected = a.clone();
        expected.merge_from(&b).unwrap();
        assert_eq!(rec.merged, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_refused_not_wiped() {
        let path = temp_path("magic");
        std::fs::write(&path, b"definitely not a wal file").unwrap();
        assert!(matches!(recover(&path, &channel(), part()), Err(Error::Io(_))));
        assert!(WalWriter::open(&WalConfig::new(&path)).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a wal file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_geometry_is_a_hard_error() {
        let noise = channel();
        let path = temp_path("geom");
        {
            let mut writer = WalWriter::open(&WalConfig::new(&path)).unwrap();
            writer.append_delta(&sketch(&noise, &[10.0])).unwrap();
        }
        let other = Partition::new(Domain::new(0.0, 100.0).unwrap(), 7).unwrap();
        assert!(
            recover(&path, &noise, other).is_err(),
            "a checksum-valid frame for another geometry must not be silently truncated"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_cadence_is_tracked() {
        let noise = channel();
        let path = temp_path("cadence");
        let config = WalConfig { checkpoint_interval: 2, ..WalConfig::new(&path) };
        let mut writer = WalWriter::open(&config).unwrap();
        let d = sketch(&noise, &[33.0]);
        writer.append_delta(&d).unwrap();
        assert!(!writer.checkpoint_due());
        writer.append_delta(&d).unwrap();
        assert!(writer.checkpoint_due());
        writer.append_checkpoint(&d).unwrap();
        assert!(!writer.checkpoint_due(), "a checkpoint resets the cadence");
        drop(writer);
        std::fs::remove_file(&path).ok();
    }
}
