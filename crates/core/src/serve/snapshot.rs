//! Epoch-stamped posterior publication with wait-free readers.
//!
//! The solve plane publishes one [`PosteriorSnapshot`] per resolve epoch;
//! ingest-side readers must be able to observe the latest posterior
//! without ever blocking behind the publisher (or each other). The crate
//! forbids `unsafe`, which rules out the classic `AtomicPtr` +
//! hazard-pointer RCU cell — instead the publication cell is a
//! *single-writer linked list of immutable nodes*:
//!
//! ```text
//!   node(e=1) ──next──▶ node(e=2) ──next──▶ node(e=3)   ◀── publisher tail
//!      ▲                              ▲
//!   reader A cursor               reader B cursor
//! ```
//!
//! Each node's `next` pointer is a [`OnceLock<Arc<Node>>`]: written
//! exactly once by the single publisher, read with a plain atomic
//! acquire-load by any number of readers. A [`SnapshotReader::refresh`]
//! is therefore **wait-free**: it chases `next` pointers (one atomic load
//! each, at most epochs-behind of them, with no loop retried on
//! contention) and never takes a lock. A snapshot, once obtained, is an
//! `Arc` the publisher will never mutate — readers can hold it across an
//! arbitrary number of later epochs and it stays internally consistent;
//! there is no torn state to observe.
//!
//! Reclamation is automatic: a node is dropped when the last cursor
//! holding it advances past, which bounds memory by how far the slowest
//! reader lags (each node holds one posterior vector). The only lock in
//! the structure — a [`Mutex`] around the latest node — is touched by the
//! publisher once per epoch and by *new-reader creation* only, never by
//! refresh/read on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::stats::Histogram;

/// The cell's locks guard data that is valid after any partial
/// operation (a pointer swap, nothing multi-step), so a panic on a
/// holder — e.g. an injected fault in the publisher — must not cascade
/// into every future reader. Poisoning is cleared, not propagated.
fn lock_latest(mutex: &Mutex<Arc<Node>>) -> MutexGuard<'_, Arc<Node>> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One published posterior: the reconstruction the background re-solver
/// produced from everything drained up to `epoch`, immutable once
/// published.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorSnapshot {
    /// Publication epoch, starting at 1; strictly monotonic per cell.
    pub epoch: u64,
    /// Number of perturbed records the posterior reflects (the drained
    /// sketch's total at solve time).
    pub records: u64,
    /// The reconstructed original-distribution estimate.
    pub histogram: Histogram,
    /// EM iterations the (warm-started) solve took.
    pub iterations: usize,
    /// Whether the solve met its stopping rule before the iteration cap.
    pub converged: bool,
    /// Whether this posterior is degraded: its solve failed (this is a
    /// republication of an older posterior, honestly labeled) or
    /// overran the service's solve deadline. Consumers that must not
    /// act on stale or late data check this flag.
    pub degraded: bool,
}

/// One link in the publication list. `snap` is `None` only in the
/// pre-first-publish sentinel node (epoch 0).
struct Node {
    snap: Option<Arc<PosteriorSnapshot>>,
    epoch: u64,
    next: OnceLock<Arc<Node>>,
}

impl Drop for Node {
    /// Unlinks successors iteratively. A reader that lagged thousands of
    /// epochs drops a thousands-long chain when its cursor moves; the
    /// default recursive drop would overflow the stack, so each node
    /// takes ownership of its successor and the loop walks until it hits
    /// a node some live cursor still holds.
    fn drop(&mut self) {
        let mut next = self.next.take();
        while let Some(node) = next {
            match Arc::try_unwrap(node) {
                Ok(mut inner) => next = inner.next.take(),
                // Another cursor still holds this node; its eventual drop
                // continues the walk from there.
                Err(_) => break,
            }
        }
    }
}

/// State shared by the cell, its publisher, and its readers.
struct CellShared {
    /// Epoch of the most recently published snapshot (0 before the
    /// first); the cheap staleness probe for code that does not want to
    /// chase the list.
    epoch: AtomicU64,
    /// The most recent node, for creating new readers. Off the read hot
    /// path: refresh never touches it.
    latest: Mutex<Arc<Node>>,
}

/// Handle on a publication cell: creates readers and answers staleness
/// probes. Cloneable and `Send + Sync`; the matching single
/// [`SnapshotPublisher`] is handed out exactly once by [`SnapshotCell::new`].
#[derive(Clone)]
pub struct SnapshotCell {
    shared: Arc<CellShared>,
}

impl SnapshotCell {
    /// A fresh cell (no snapshot yet, epoch 0) and its unique publisher.
    pub fn new() -> (SnapshotCell, SnapshotPublisher) {
        let sentinel = Arc::new(Node { snap: None, epoch: 0, next: OnceLock::new() });
        let shared =
            Arc::new(CellShared { epoch: AtomicU64::new(0), latest: Mutex::new(sentinel.clone()) });
        (SnapshotCell { shared: shared.clone() }, SnapshotPublisher { tail: sentinel, shared })
    }

    /// Epoch of the latest published snapshot; 0 before the first.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The latest snapshot right now, or `None` before the first publish.
    /// Takes the creation lock — use a [`SnapshotReader`] on hot paths.
    pub fn latest(&self) -> Option<Arc<PosteriorSnapshot>> {
        lock_latest(&self.shared.latest).snap.clone()
    }

    /// A new reader positioned at the latest snapshot.
    pub fn reader(&self) -> SnapshotReader {
        let cursor = lock_latest(&self.shared.latest).clone();
        SnapshotReader { cursor, shared: self.shared.clone() }
    }
}

/// The unique writing end of a [`SnapshotCell`]. Not `Clone`: single-writer
/// is what lets `next` pointers be write-once.
pub struct SnapshotPublisher {
    tail: Arc<Node>,
    shared: Arc<CellShared>,
}

impl SnapshotPublisher {
    /// Publishes the next snapshot, stamping it with the next epoch
    /// (returned). Readers chasing `next` pointers observe the fully
    /// constructed snapshot or nothing — never a partial write.
    ///
    /// The epoch counter is bumped *before* the node is linked, so
    /// [`SnapshotCell::epoch`] is a conservative upper bound on every
    /// reachable snapshot: lag probes may transiently over-report by one
    /// mid-publish, but a snapshot in hand is never newer than the
    /// counter claims.
    pub fn publish(
        &mut self,
        records: u64,
        histogram: Histogram,
        iterations: usize,
        converged: bool,
        degraded: bool,
    ) -> u64 {
        // Self-heal after an interrupted publish: if the holder panicked
        // (and was caught by a supervisor) between linking a node and
        // advancing `tail`, the cursor is one node stale — writing its
        // `next` again would violate write-once. Walk to the true tail
        // first; under normal operation the loop runs zero iterations.
        while let Some(next) = self.tail.next.get() {
            self.tail = next.clone();
        }
        let epoch = self.tail.epoch + 1;
        let snap = Arc::new(PosteriorSnapshot {
            epoch,
            records,
            histogram,
            iterations,
            converged,
            degraded,
        });
        let node = Arc::new(Node { snap: Some(snap), epoch, next: OnceLock::new() });
        self.shared.epoch.store(epoch, Ordering::Release);
        self.tail
            .next
            .set(node.clone())
            .unwrap_or_else(|_| unreachable!("single publisher writes each `next` exactly once"));
        *lock_latest(&self.shared.latest) = node.clone();
        self.tail = node;
        epoch
    }

    /// Epoch of the latest published snapshot; 0 before the first.
    pub fn epoch(&self) -> u64 {
        self.tail.epoch
    }
}

/// A wait-free, epoch-pinned view into a [`SnapshotCell`].
///
/// The reader's cursor stays on the snapshot it last observed until
/// [`Self::refresh`] is called, so a consumer can do a batch of work
/// against one consistent posterior and advance on its own schedule.
#[derive(Clone)]
pub struct SnapshotReader {
    cursor: Arc<Node>,
    shared: Arc<CellShared>,
}

impl SnapshotReader {
    /// Advances to the newest published snapshot and returns it (`None`
    /// only before the first publish). Wait-free: one atomic load per
    /// epoch advanced, no locks, no retries.
    pub fn refresh(&mut self) -> Option<Arc<PosteriorSnapshot>> {
        while let Some(next) = self.cursor.next.get() {
            self.cursor = next.clone();
        }
        self.cursor.snap.clone()
    }

    /// The snapshot at the cursor, without advancing.
    pub fn current(&self) -> Option<Arc<PosteriorSnapshot>> {
        self.cursor.snap.clone()
    }

    /// Epoch at the cursor; 0 before the first observed publish.
    pub fn epoch(&self) -> u64 {
        self.cursor.epoch
    }

    /// How many epochs the cursor lags the newest publication. The
    /// observability half of the staleness contract: `lag == 0` means
    /// this reader holds the latest posterior.
    pub fn epochs_behind(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire).saturating_sub(self.cursor.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, Partition};

    fn hist(mass: f64) -> Histogram {
        let p = Partition::new(Domain::new(0.0, 10.0).unwrap(), 2).unwrap();
        Histogram::from_mass(p, vec![mass, mass]).unwrap()
    }

    #[test]
    fn empty_cell_reads_none_at_epoch_zero() {
        let (cell, _publisher) = SnapshotCell::new();
        assert_eq!(cell.epoch(), 0);
        assert!(cell.latest().is_none());
        let mut reader = cell.reader();
        assert_eq!(reader.epoch(), 0);
        assert!(reader.refresh().is_none());
        assert_eq!(reader.epochs_behind(), 0);
    }

    #[test]
    fn publish_advances_epochs_and_readers_observe_in_order() {
        let (cell, mut publisher) = SnapshotCell::new();
        let mut reader = cell.reader();
        assert_eq!(publisher.publish(10, hist(5.0), 3, true, false), 1);
        assert_eq!(publisher.publish(20, hist(10.0), 2, true, false), 2);
        assert_eq!(cell.epoch(), 2);
        // The stale reader still sees nothing until it refreshes...
        assert!(reader.current().is_none());
        assert_eq!(reader.epochs_behind(), 2);
        // ...then lands on the newest snapshot.
        let snap = reader.refresh().unwrap();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.records, 20);
        assert_eq!(reader.epochs_behind(), 0);
        // A new reader starts at the latest epoch.
        assert_eq!(cell.reader().epoch(), 2);
    }

    #[test]
    fn pinned_snapshot_survives_later_publishes() {
        let (cell, mut publisher) = SnapshotCell::new();
        publisher.publish(10, hist(1.0), 1, true, false);
        let mut reader = cell.reader();
        let pinned = reader.refresh().unwrap();
        for i in 0..100 {
            publisher.publish(10 + i, hist(i as f64), 1, true, false);
        }
        // The pinned Arc is immutable and fully intact regardless of how
        // far publication has moved on.
        assert_eq!(pinned.epoch, 1);
        assert_eq!(pinned.records, 10);
        assert_eq!(reader.refresh().unwrap().epoch, 101);
    }

    #[test]
    fn degraded_flag_travels_with_the_snapshot() {
        let (cell, mut publisher) = SnapshotCell::new();
        publisher.publish(10, hist(1.0), 2, true, false);
        publisher.publish(10, hist(1.0), 0, false, true);
        let mut reader = cell.reader();
        let snap = reader.refresh().unwrap();
        assert!(snap.degraded, "the degraded republication is labeled");
        assert!(!snap.converged);
        publisher.publish(20, hist(2.0), 3, true, false);
        assert!(!reader.refresh().unwrap().degraded, "a clean solve clears the label");
    }

    #[test]
    fn deep_lag_drops_iteratively_without_overflowing() {
        let (cell, mut publisher) = SnapshotCell::new();
        let reader = cell.reader(); // pins the sentinel; the whole chain stays live
        for _ in 0..200_000 {
            publisher.publish(1, hist(1.0), 1, true, false);
        }
        // Dropping the lagging reader releases a 200k-node chain; the
        // iterative Drop must not recurse.
        drop(reader);
        assert_eq!(cell.epoch(), 200_000);
    }
}
