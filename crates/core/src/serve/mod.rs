//! The serving layer: high-throughput perturbed-record ingest decoupled
//! from background reconstruction.
//!
//! Everything before this module is a synchronous library — a caller
//! blocks on a full EM solve per reconstruction. At the scale AS00
//! targets ("heavy traffic from millions of users"), ingest and solving
//! must be decoupled: records arrive continuously at millions per
//! second, while the posterior only needs refreshing every few dozen
//! milliseconds. The serving layer exploits the one structural fact that
//! makes this safe: [`SuffStats`](crate::reconstruct::SuffStats)
//! sketches are *exactly mergeable* (integer bucket counts, associative
//! and commutative), so shard-private accumulation followed by a merged
//! solve is **bit-identical** to having bucketed every record into one
//! monolithic sketch.
//!
//! ```text
//!                 ingest plane                        solve plane
//!           ┌────────────────────────┐        ┌─────────────────────────┐
//! producers │ try_ingest ──▶ mailbox ├─▶ shard│  every resolve_interval:│
//!  (K × M   │  (bounded; `Full` ⇒    │  worker│   drain-swap sketches   │
//!  threads) │   Backpressure, no     │  owns  │   merge exact deltas    │
//!           │   queueing, no loss)   │SuffStats│  warm-started EM solve │
//!           └────────────────────────┘        │   publish snapshot ──┐  │
//!                    ▲      buffers recycle   └──────────────────────┼──┘
//!                    └──── [`BatchPool`] ◀───────────┘               ▼
//!                                              [`SnapshotCell`] (wait-free
//!                                               epoch-pinned readers)
//! ```
//!
//! The pieces:
//!
//! - [`IngestService`] / [`IngestHandle`]: shard workers behind bounded
//!   mailboxes with explicit [`Backpressure`](crate::Error::Backpressure)
//!   admission control and a zero-allocation steady-state hot path.
//! - [`SnapshotCell`] / [`SnapshotReader`]: single-writer, wait-free
//!   publication of epoch-stamped [`PosteriorSnapshot`]s (safe code
//!   only — see [`snapshot`] for how the `AtomicPtr`-free design works).
//! - [`BatchPool`]: the recycling buffer pool both planes draw from.
//! - [`wal`]: the append-only delta log behind
//!   [`IngestService::recover`]'s bit-exact crash recovery, and the
//!   supervision story around it — every worker and the re-solver
//!   restart under `catch_unwind` with capped backoff (see
//!   [`service`]'s module docs), with [`HealthReport`] rolling up the
//!   degradation signals.
//!
//! See `docs/ARCHITECTURE.md` ("Serving layer" and "Fault tolerance &
//! durability") for the full contract discussion: backpressure
//! semantics, staleness bounds, the WAL recovery algebra, and why this
//! is plain OS threads rather than an async runtime.

pub mod pool;
pub mod service;
pub mod snapshot;
pub mod wal;

pub use pool::{BatchPool, PoolStats};
pub use service::{
    sites, HealthReport, IngestHandle, IngestService, ServeConfig, ServeReport, ServiceStats,
};
pub use snapshot::{PosteriorSnapshot, SnapshotCell, SnapshotPublisher, SnapshotReader};
pub use wal::{WalConfig, WalRecovery, WalWriter};

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;
    use crate::domain::{Domain, Partition};
    use crate::error::Error;
    use crate::randomize::{NoiseDensity, NoiseModel};
    use crate::reconstruct::ReconstructionEngine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn part(cells: usize) -> Partition {
        Partition::new(Domain::new(0.0, 100.0).unwrap(), cells).unwrap()
    }

    fn noise() -> Arc<dyn NoiseDensity> {
        Arc::new(NoiseModel::gaussian(10.0).unwrap())
    }

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let channel = NoiseModel::gaussian(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        channel.perturb_all(&xs, &mut rng)
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            mailbox_capacity: 8,
            batch_capacity: 64,
            max_pooled: 32,
            resolve_interval: Duration::from_millis(5),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn ingest_solve_shutdown_roundtrip() {
        let service = IngestService::spawn(noise(), part(20), quick_config()).unwrap();
        let mut handle = service.handle();
        let observed = sample(4_000, 1);
        for batch in observed.chunks(64) {
            loop {
                match handle.try_ingest(batch) {
                    Ok(_) => break,
                    Err(Error::Backpressure { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected ingest error: {e}"),
                }
            }
        }
        // The background re-solver publishes within a few intervals.
        let mut reader = service.reader();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while reader.refresh().is_none() {
            assert!(std::time::Instant::now() < deadline, "no snapshot published in 10s");
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = service.shutdown().unwrap();
        assert_eq!(report.merged.count(), 4_000, "every admitted record is in the merge");
        let snap = report.final_snapshot.expect("final snapshot exists");
        assert_eq!(snap.records, 4_000, "the final solve covers everything");
        assert_eq!(report.stats.records_behind, 0);
        assert!(report.stats.epoch >= 1);
        assert!(report.solve_error.is_none());
    }

    #[test]
    fn merged_sketch_equals_monolithic_ingest() {
        let service = IngestService::spawn(noise(), part(24), quick_config()).unwrap();
        let mut handle = service.handle();
        let observed = sample(2_500, 2);
        for batch in observed.chunks(100) {
            while let Err(Error::Backpressure { .. }) = handle.try_ingest(batch) {
                std::thread::yield_now();
            }
        }
        let report = service.shutdown().unwrap();
        let mut monolithic = report.merged.clone();
        monolithic.clear();
        monolithic.ingest(&observed).unwrap();
        assert_eq!(report.merged.counts(), monolithic.counts(), "bit-identical sketches");
        assert_eq!(report.merged.count(), monolithic.count());
    }

    #[test]
    fn backpressure_is_reported_and_lossless() {
        // One shard, one-slot mailbox, and no consumer progress while we
        // flood: admission must start refusing, and every refusal must
        // leave counters consistent.
        let config = ServeConfig {
            shards: 1,
            mailbox_capacity: 1,
            resolve_interval: Duration::from_secs(3600),
            ..quick_config()
        };
        let service = IngestService::spawn(noise(), part(10), config).unwrap();
        let mut handle = service.handle();
        let batch = vec![50.0; 32];
        let mut saw_backpressure = false;
        for _ in 0..10_000 {
            match handle.try_ingest(&batch) {
                Ok(_) => {}
                Err(Error::Backpressure { shard }) => {
                    assert_eq!(shard, 0);
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_backpressure, "a 1-slot mailbox must refuse a sustained flood");
        let stats = service.stats();
        assert_eq!(stats.rejected_batches, 1);
        let report = service.shutdown().unwrap();
        assert_eq!(
            report.merged.count(),
            report.stats.admitted_records,
            "refused batches leave no residue; admitted ones are all there"
        );
    }

    #[test]
    fn invalid_values_are_rejected_before_admission() {
        let service = IngestService::spawn(noise(), part(10), quick_config()).unwrap();
        let mut handle = service.handle();
        assert!(matches!(handle.try_ingest(&[1.0, f64::NAN]), Err(Error::InvalidMass(_))));
        let report = service.shutdown().unwrap();
        assert_eq!(report.merged.count(), 0);
    }

    #[test]
    fn ingest_after_shutdown_reports_service_stopped() {
        let service = IngestService::spawn(noise(), part(10), quick_config()).unwrap();
        let mut handle = service.handle();
        handle.try_ingest(&[10.0, 20.0]).unwrap();
        let _ = service.shutdown().unwrap();
        assert!(matches!(handle.try_ingest(&[30.0]), Err(Error::ServiceStopped)));
    }

    #[test]
    fn resolver_shares_one_kernel_across_epochs() {
        let engine = Arc::new(ReconstructionEngine::new());
        let service =
            IngestService::spawn_with_engine(noise(), part(20), quick_config(), engine.clone())
                .unwrap();
        let mut handle = service.handle();
        let observed = sample(3_000, 3);
        // Feed slowly enough to span several resolve intervals, so the
        // re-solver runs multiple warm epochs.
        for batch in observed.chunks(300) {
            while let Err(Error::Backpressure { .. }) = handle.try_ingest(batch) {
                std::thread::yield_now();
            }
            std::thread::sleep(Duration::from_millis(7));
        }
        let report = service.shutdown().unwrap();
        assert!(report.stats.solves >= 2, "expected multiple epochs, got {}", report.stats.solves);
        assert_eq!(engine.kernel_builds(), 1, "one geometry, one kernel build across all epochs");
        let cache = engine.cache_stats();
        assert!(
            cache.hits >= report.stats.solves as usize - 1,
            "every epoch after the first must hit the cache: {cache:?}"
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        let bad = ServeConfig { shards: 0, ..quick_config() };
        assert!(IngestService::spawn(noise(), part(10), bad).is_err());
        let bad = ServeConfig { mailbox_capacity: 0, ..quick_config() };
        assert!(IngestService::spawn(noise(), part(10), bad).is_err());
        // Identity-like channels without a fingerprint are rejected by
        // the sketch constructor (tested in streaming); a fingerprinted
        // channel is accepted.
        assert!(IngestService::spawn(noise(), part(10), quick_config()).is_ok());
    }

    #[test]
    fn steady_state_ingest_recycles_buffers() {
        let config = ServeConfig { resolve_interval: Duration::from_millis(2), ..quick_config() };
        let service = IngestService::spawn(noise(), part(10), config).unwrap();
        let mut handle = service.handle();
        let batch = vec![42.0; 64];
        for _ in 0..2_000 {
            while let Err(Error::Backpressure { .. }) = handle.try_ingest(&batch) {
                std::thread::yield_now();
            }
        }
        let report = service.shutdown().unwrap();
        let pool = report.stats.pool;
        assert!(
            pool.allocated < 100,
            "steady state must recycle, not allocate: {pool:?} over 2000 batches"
        );
        assert!(pool.reused > 1_000, "most checkouts come from the pool: {pool:?}");
    }
}
