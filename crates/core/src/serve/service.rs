//! The ingest service: shard workers behind bounded mailboxes plus the
//! background re-solver.
//!
//! # Planes
//!
//! **Ingest plane.** [`IngestService::spawn`] starts N shard workers,
//! each owning one private [`SuffStats`] sketch and fed by its own
//! *bounded* MPSC mailbox ([`std::sync::mpsc::sync_channel`]) of
//! perturbed record batches. Producers call
//! [`IngestHandle::try_ingest`], which copies the batch into a recycled
//! buffer ([`BatchPool`]) and `try_send`s it round-robin. A full mailbox
//! is an explicit [`Error::Backpressure`]: nothing is queued, nothing is
//! lost, and the caller decides whether to retry, shed, or slow down —
//! there are **no unbounded queues anywhere** in the service, so memory
//! is bounded by `shards × mailbox_capacity` batches regardless of how
//! hard producers push.
//!
//! **Solve plane.** One background re-solver thread wakes every
//! [`ServeConfig::resolve_interval`], swaps each worker's sketch for an
//! empty one (the drain round-trips sketches through
//! [`SuffStats::clear`], so steady-state resolving allocates nothing),
//! merges the deltas into its running total — exact, order-independent
//! integer merges — and runs a *warm-started* EM solve against the
//! shared kernel cache. The resulting posterior is published as an
//! epoch-stamped [`PosteriorSnapshot`] through the wait-free
//! [`SnapshotCell`]; readers are never blocked by ingest or solving.
//!
//! # Staleness contract
//!
//! A published snapshot reflects every record drained up to its epoch.
//! Staleness is bounded by the resolve cadence and *observable*:
//! [`ServiceStats::records_behind`] counts admitted-but-not-yet-solved
//! records, [`ServiceStats::staleness`] is the time since the re-solver
//! last completed a cycle, and [`SnapshotReader::epochs_behind`] tells a
//! reader how far its pinned epoch lags publication.
//!
//! # Why threads, not async
//!
//! The hot path is CPU-bound bucketing, not I/O waiting: a worker either
//! has a batch to bucket or parks on its mailbox, and the re-solver
//! either sleeps out its interval or runs EM. OS threads express this
//! directly with zero added dependencies (the workspace builds offline);
//! an async runtime would add scheduling machinery precisely where
//! blocking is the desired behavior.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::domain::Partition;
use crate::error::{Error, Result};
use crate::randomize::NoiseDensity;
use crate::reconstruct::streaming::SuffStats;
use crate::reconstruct::{ReconstructionConfig, ReconstructionEngine};

use super::pool::{BatchPool, PoolStats};
use super::snapshot::{PosteriorSnapshot, SnapshotCell, SnapshotPublisher, SnapshotReader};

/// Tuning knobs of an [`IngestService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard workers (and mailboxes). Each shard owns a private sketch.
    pub shards: usize,
    /// Batches each mailbox holds before `try_ingest` reports
    /// [`Error::Backpressure`].
    pub mailbox_capacity: usize,
    /// Record slots reserved per pooled batch buffer.
    pub batch_capacity: usize,
    /// Idle buffers the recycling pool keeps parked.
    pub max_pooled: usize,
    /// Re-solver cadence: how often shard sketches are drained, merged,
    /// solved, and published.
    pub resolve_interval: Duration,
    /// EM parameters for the background solves. The bucketed update is
    /// used regardless of `mode` — sketches carry no per-observation
    /// rows. The `parallel` policy routes straight through: the
    /// re-solver's warm solves are single-job calls, so under the
    /// default `Auto` a big enough problem engages the block-parallel
    /// E-step whenever the rayon pool is free (the re-solver runs on its
    /// own OS thread, outside any pool worker).
    pub reconstruction: ReconstructionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            mailbox_capacity: 64,
            batch_capacity: 1024,
            max_pooled: 256,
            resolve_interval: Duration::from_millis(50),
            reconstruction: ReconstructionConfig::default(),
        }
    }
}

/// What shard workers receive: batches on the hot path, sketch swaps on
/// the resolve path.
enum ShardMsg {
    /// A pooled buffer of perturbed records to bucket.
    Batch(Vec<f64>),
    /// Swap the worker's sketch for `fresh` and send the full one back.
    /// The reply sender is owned by the message alone, so a worker that
    /// exits without replying disconnects the channel instead of hanging
    /// the re-solver.
    Drain { fresh: SuffStats, reply: SyncSender<SuffStats> },
    /// Hand the sketch back and exit.
    Stop { reply: SyncSender<SuffStats> },
}

enum ResolverCtl {
    /// Run one final drain + solve + publish, then exit.
    Finish,
}

/// Lifetime counters shared by handles, workers, and the re-solver.
struct Counters {
    admitted_batches: AtomicU64,
    admitted_records: AtomicU64,
    rejected_batches: AtomicU64,
    ingested_records: AtomicU64,
    solved_records: AtomicU64,
    solves: AtomicU64,
    solve_errors: AtomicU64,
    /// Nanoseconds after service start when the re-solver last completed
    /// a full drain cycle (staleness probe).
    last_cycle_nanos: AtomicU64,
    /// Wall-clock nanoseconds of the most recent background solve (the
    /// `reconstruct_stats` call alone, not the drain or publish around
    /// it).
    solve_nanos_last: AtomicU64,
    /// Longest background solve observed, in nanoseconds.
    solve_nanos_max: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Counters {
            admitted_batches: AtomicU64::new(0),
            admitted_records: AtomicU64::new(0),
            rejected_batches: AtomicU64::new(0),
            ingested_records: AtomicU64::new(0),
            solved_records: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            solve_errors: AtomicU64::new(0),
            last_cycle_nanos: AtomicU64::new(0),
            solve_nanos_last: AtomicU64::new(0),
            solve_nanos_max: AtomicU64::new(0),
        }
    }
}

/// A point-in-time view of the service's counters; every field is
/// monotone except the derived staleness gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Batches `try_ingest` admitted into a mailbox.
    pub admitted_batches: u64,
    /// Records inside admitted batches.
    pub admitted_records: u64,
    /// Batches refused with [`Error::Backpressure`].
    pub rejected_batches: u64,
    /// Records shard workers have bucketed into their sketches.
    pub ingested_records: u64,
    /// Records covered by the latest published snapshot.
    pub solved_records: u64,
    /// Admitted records the published posterior does not yet reflect —
    /// the record half of the staleness bound.
    pub records_behind: u64,
    /// Latest published epoch (0 before the first publish).
    pub epoch: u64,
    /// Background solves completed.
    pub solves: u64,
    /// Background solves that failed (the service keeps running; the
    /// last error surfaces in [`ServeReport::solve_error`]).
    pub solve_errors: u64,
    /// Age of the published posterior coverage — the time half of the
    /// staleness bound. Once a snapshot exists (`epoch >= 1`) this is the
    /// time since the re-solver last completed a drain cycle
    /// (≈ `resolve_interval` in steady state); before the first publish
    /// it is the time since the service started, because a service that
    /// has never published is maximally stale, not fresh.
    pub staleness: Duration,
    /// Wall-clock cost of the most recent background solve — the
    /// `reconstruct_stats` call alone, excluding the drain and publish
    /// around it. Zero until the first solve completes.
    pub solve_duration_last: Duration,
    /// The longest background solve observed over the service lifetime.
    /// Zero until the first solve completes.
    pub solve_duration_max: Duration,
    /// Recycling-pool counters.
    pub pool: PoolStats,
}

/// Everything the service hands back at shutdown.
pub struct ServeReport {
    /// The exact merge of every record ever bucketed by any shard —
    /// including records ingested after the final background solve. A
    /// cold solve of this sketch is bit-identical to a monolithic solve
    /// over the same records.
    pub merged: SuffStats,
    /// The last snapshot published, if any solve succeeded.
    pub final_snapshot: Option<Arc<PosteriorSnapshot>>,
    /// Counters at shutdown.
    pub stats: ServiceStats,
    /// The last background solve error, if any cycle failed.
    pub solve_error: Option<Error>,
}

/// A producer's clonable, mutable handle into the ingest plane.
///
/// Handles rotate round-robin over shards independently;
/// [`IngestService::handle`] staggers their starting shards so K
/// producers spread evenly instead of marching in lockstep.
#[derive(Clone)]
pub struct IngestHandle {
    mailboxes: Arc<[SyncSender<ShardMsg>]>,
    pool: BatchPool,
    counters: Arc<Counters>,
    next_shard: usize,
}

impl IngestHandle {
    /// Admits one batch of perturbed records, or refuses it without side
    /// effects. Returns the shard that accepted the batch.
    ///
    /// The hot path does no allocation in steady state: the batch is
    /// copied into a recycled buffer and handed off by pointer. On
    /// [`Error::Backpressure`] (target mailbox full) the buffer returns
    /// to the pool and **no record is enqueued** — the caller owns the
    /// retry policy. Rotation still advances, so an immediate retry
    /// targets the next shard.
    ///
    /// # Errors
    ///
    /// [`Error::Backpressure`] when the target mailbox is full;
    /// [`Error::ServiceStopped`] when the shard workers have exited;
    /// [`Error::InvalidMass`] for non-finite values (checked *before*
    /// admission so a bad record can never poison a shard sketch).
    pub fn try_ingest(&mut self, values: &[f64]) -> Result<usize> {
        if values.is_empty() {
            return Ok(self.next_shard);
        }
        if let Some(bad) = values.iter().find(|w| !w.is_finite()) {
            return Err(Error::InvalidMass(format!("observation {bad} is not finite")));
        }
        let shard = self.next_shard;
        self.next_shard = (shard + 1) % self.mailboxes.len();
        let mut buf = self.pool.checkout();
        buf.extend_from_slice(values);
        match self.mailboxes[shard].try_send(ShardMsg::Batch(buf)) {
            Ok(()) => {
                self.counters.admitted_batches.fetch_add(1, Ordering::Relaxed);
                self.counters.admitted_records.fetch_add(values.len() as u64, Ordering::Relaxed);
                Ok(shard)
            }
            Err(TrySendError::Full(ShardMsg::Batch(buf))) => {
                self.pool.recycle(buf);
                self.counters.rejected_batches.fetch_add(1, Ordering::Relaxed);
                Err(Error::Backpressure { shard })
            }
            Err(TrySendError::Disconnected(ShardMsg::Batch(buf))) => {
                self.pool.recycle(buf);
                Err(Error::ServiceStopped)
            }
            Err(_) => unreachable!("a failed send returns the message it was given"),
        }
    }
}

/// What the re-solver thread returns when told to finish.
struct ResolveSummary {
    /// Running merge of everything drained over the service's lifetime.
    total: SuffStats,
    last_error: Option<Error>,
}

/// The running service; see the [module docs](self) for the two planes.
///
/// Dropping the service without [`IngestService::shutdown`] detaches the
/// threads: they exit on their own once every [`IngestHandle`] is gone,
/// but the merged sketch and final report are lost.
pub struct IngestService {
    mailboxes: Arc<[SyncSender<ShardMsg>]>,
    pool: BatchPool,
    counters: Arc<Counters>,
    cell: SnapshotCell,
    workers: Vec<JoinHandle<()>>,
    resolver: Option<JoinHandle<ResolveSummary>>,
    ctl: SyncSender<ResolverCtl>,
    handle_seq: AtomicUsize,
    template: SuffStats,
    started: Instant,
}

impl IngestService {
    /// Spawns the shard workers and the background re-solver, solving on
    /// a private [`ReconstructionEngine`].
    pub fn spawn(
        noise: Arc<dyn NoiseDensity>,
        partition: Partition,
        config: ServeConfig,
    ) -> Result<IngestService> {
        Self::spawn_with_engine(noise, partition, config, Arc::new(ReconstructionEngine::new()))
    }

    /// Spawns the service against a caller-supplied engine, so multiple
    /// services (or foreground callers) share one kernel cache.
    pub fn spawn_with_engine(
        noise: Arc<dyn NoiseDensity>,
        partition: Partition,
        config: ServeConfig,
        engine: Arc<ReconstructionEngine>,
    ) -> Result<IngestService> {
        if config.shards == 0 {
            return Err(Error::ShardMismatch("an ingest service needs at least one shard".into()));
        }
        if config.mailbox_capacity == 0 {
            return Err(Error::ShardMismatch("mailbox capacity must be at least 1".into()));
        }
        // Binds the geometry and rejects unfingerprinted channels up
        // front (warm solves need the fingerprint to match sketches).
        let template = SuffStats::new(noise.as_ref(), partition)?;
        let pool = BatchPool::new(config.batch_capacity.max(1), config.max_pooled);
        let counters = Arc::new(Counters::new());
        let (cell, publisher) = SnapshotCell::new();
        let started = Instant::now();

        let mut mailboxes = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel::<ShardMsg>(config.mailbox_capacity);
            mailboxes.push(tx);
            let stats = template.clone();
            let pool = pool.clone();
            let counters = counters.clone();
            let worker = std::thread::Builder::new()
                .name(format!("ppdm-shard-{shard}"))
                .spawn(move || shard_worker(rx, stats, pool, counters))
                .expect("spawning a shard worker thread failed");
            workers.push(worker);
        }
        let mailboxes: Arc<[SyncSender<ShardMsg>]> = mailboxes.into();

        let (ctl, ctl_rx) = sync_channel::<ResolverCtl>(1);
        let resolver = {
            let mailboxes = mailboxes.clone();
            let counters = counters.clone();
            let template = template.clone();
            let recon = config.reconstruction;
            let interval = config.resolve_interval;
            std::thread::Builder::new()
                .name("ppdm-resolver".into())
                .spawn(move || {
                    resolver_loop(
                        ctl_rx, mailboxes, template, noise, engine, recon, interval, publisher,
                        counters, started,
                    )
                })
                .expect("spawning the re-solver thread failed")
        };

        Ok(IngestService {
            mailboxes,
            pool,
            counters,
            cell,
            workers,
            resolver: Some(resolver),
            ctl,
            handle_seq: AtomicUsize::new(0),
            template,
            started,
        })
    }

    /// A new producer handle, its round-robin start staggered across
    /// shards.
    pub fn handle(&self) -> IngestHandle {
        let seq = self.handle_seq.fetch_add(1, Ordering::Relaxed);
        IngestHandle {
            mailboxes: self.mailboxes.clone(),
            pool: self.pool.clone(),
            counters: self.counters.clone(),
            next_shard: seq % self.mailboxes.len(),
        }
    }

    /// A wait-free reader over the published posterior snapshots.
    pub fn reader(&self) -> SnapshotReader {
        self.cell.reader()
    }

    /// The latest published snapshot, or `None` before the first solve.
    pub fn latest(&self) -> Option<Arc<PosteriorSnapshot>> {
        self.cell.latest()
    }

    /// Current counters; cheap enough for a monitoring loop.
    pub fn stats(&self) -> ServiceStats {
        let admitted_records = self.counters.admitted_records.load(Ordering::Relaxed);
        let solved_records = self.counters.solved_records.load(Ordering::Relaxed);
        let last_cycle = self.counters.last_cycle_nanos.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_nanos() as u64;
        let epoch = self.cell.epoch();
        // Until the first publish there is no posterior to be fresh:
        // report the full service age. Empty resolver cycles stamp
        // `last_cycle_nanos` without publishing anything, so without this
        // guard a service that has never solved would claim near-zero
        // staleness.
        let staleness = if epoch == 0 {
            Duration::from_nanos(elapsed)
        } else {
            Duration::from_nanos(elapsed.saturating_sub(last_cycle))
        };
        ServiceStats {
            admitted_batches: self.counters.admitted_batches.load(Ordering::Relaxed),
            admitted_records,
            rejected_batches: self.counters.rejected_batches.load(Ordering::Relaxed),
            ingested_records: self.counters.ingested_records.load(Ordering::Relaxed),
            solved_records,
            records_behind: admitted_records.saturating_sub(solved_records),
            epoch,
            solves: self.counters.solves.load(Ordering::Relaxed),
            solve_errors: self.counters.solve_errors.load(Ordering::Relaxed),
            staleness,
            solve_duration_last: Duration::from_nanos(
                self.counters.solve_nanos_last.load(Ordering::Relaxed),
            ),
            solve_duration_max: Duration::from_nanos(
                self.counters.solve_nanos_max.load(Ordering::Relaxed),
            ),
            pool: self.pool.stats(),
        }
    }

    /// Stops the service: final drain + solve + publish, then worker
    /// shutdown. Returns the [`ServeReport`] whose `merged` sketch is the
    /// exact union of everything any shard ever bucketed.
    ///
    /// Outstanding [`IngestHandle`]s keep working until the final drain
    /// completes; afterwards their `try_ingest` reports
    /// [`Error::ServiceStopped`].
    pub fn shutdown(mut self) -> Result<ServeReport> {
        // Phase 1: the re-solver runs one last drain + solve + publish
        // and exits with the lifetime merge.
        let _ = self.ctl.send(ResolverCtl::Finish);
        let summary = self
            .resolver
            .take()
            .expect("resolver joined exactly once")
            .join()
            .expect("re-solver thread panicked");
        let ResolveSummary { mut total, last_error } = summary;

        // Phase 2: stop the workers and fold in whatever trickled in
        // between the final drain and now, so `merged` misses nothing.
        for mailbox in self.mailboxes.iter() {
            let (reply, rx) = sync_channel::<SuffStats>(1);
            if mailbox.send(ShardMsg::Stop { reply }).is_err() {
                continue;
            }
            if let Ok(leftover) = rx.recv() {
                if !leftover.is_empty() {
                    total.merge_from(&leftover)?;
                }
            }
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("shard worker thread panicked");
        }

        let stats = self.stats();
        Ok(ServeReport {
            merged: total,
            final_snapshot: self.cell.latest(),
            stats,
            solve_error: last_error,
        })
    }

    /// The empty sketch template bound to this service's channel and
    /// partition (useful for building compatible reference sketches in
    /// tests).
    pub fn template(&self) -> &SuffStats {
        &self.template
    }
}

/// The shard worker: buckets batches into its private sketch and hands
/// the sketch over on drain/stop.
fn shard_worker(
    rx: Receiver<ShardMsg>,
    mut stats: SuffStats,
    pool: BatchPool,
    counters: Arc<Counters>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(buf) => {
                // Values were validated at admission, so this cannot
                // fail; the guard keeps a future validation gap from
                // silently corrupting counters.
                if stats.ingest(&buf).is_ok() {
                    counters.ingested_records.fetch_add(buf.len() as u64, Ordering::Relaxed);
                }
                pool.recycle(buf);
            }
            ShardMsg::Drain { fresh, reply } => {
                let full = std::mem::replace(&mut stats, fresh);
                let _ = reply.send(full);
            }
            ShardMsg::Stop { reply } => {
                let _ = reply.send(stats);
                return;
            }
        }
    }
    // All senders dropped without a Stop: the service was leaked or is
    // mid-drop; there is nobody to hand the sketch to.
}

/// The re-solver: drain → merge → warm solve → publish, every interval.
#[allow(clippy::too_many_arguments)]
fn resolver_loop(
    ctl: Receiver<ResolverCtl>,
    mailboxes: Arc<[SyncSender<ShardMsg>]>,
    template: SuffStats,
    noise: Arc<dyn NoiseDensity>,
    engine: Arc<ReconstructionEngine>,
    config: ReconstructionConfig,
    interval: Duration,
    mut publisher: SnapshotPublisher,
    counters: Arc<Counters>,
    started: Instant,
) -> ResolveSummary {
    let mut total = template.clone();
    // Sketches cycle drain → merge → clear → reuse, so steady-state
    // resolving allocates nothing beyond this initial pool.
    let mut spare: Vec<SuffStats> = Vec::with_capacity(mailboxes.len());
    let mut warm: Option<Vec<f64>> = None;
    let mut last_error: Option<Error> = None;
    loop {
        let finish = match ctl.recv_timeout(interval) {
            Ok(ResolverCtl::Finish) => true,
            Err(RecvTimeoutError::Timeout) => false,
            // The service itself is gone; wind down.
            Err(RecvTimeoutError::Disconnected) => true,
        };

        // Send every drain before collecting any reply, so the shards
        // swap sketches concurrently. Each Drain carries its own reply
        // sender: if a worker exits without replying, the channel
        // disconnects and the recv below returns instead of hanging.
        let mut pending = Vec::with_capacity(mailboxes.len());
        for mailbox in mailboxes.iter() {
            let fresh = spare.pop().unwrap_or_else(|| template.clone());
            let (reply, rx) = sync_channel::<SuffStats>(1);
            match mailbox.send(ShardMsg::Drain { fresh, reply }) {
                Ok(()) => pending.push(rx),
                Err(send_error) => {
                    if let ShardMsg::Drain { fresh, .. } = send_error.0 {
                        spare.push(fresh);
                    }
                }
            }
        }
        for rx in pending {
            if let Ok(mut delta) = rx.recv() {
                if !delta.is_empty() {
                    if let Err(e) = total.merge_from(&delta) {
                        counters.solve_errors.fetch_add(1, Ordering::Relaxed);
                        last_error = Some(e);
                    }
                }
                delta.clear();
                spare.push(delta);
            }
        }

        // Solve only when the drain surfaced new records; the published
        // snapshot already covers everything else.
        if total.count() > counters.solved_records.load(Ordering::Relaxed) {
            let solve_started = Instant::now();
            let solved = engine.reconstruct_stats(noise.as_ref(), &total, &config, warm.as_deref());
            let solve_nanos = solve_started.elapsed().as_nanos() as u64;
            counters.solve_nanos_last.store(solve_nanos, Ordering::Relaxed);
            counters.solve_nanos_max.fetch_max(solve_nanos, Ordering::Relaxed);
            match solved {
                Ok(recon) => {
                    warm = Some(recon.histogram.probabilities());
                    counters.solved_records.store(total.count(), Ordering::Relaxed);
                    counters.solves.fetch_add(1, Ordering::Relaxed);
                    publisher.publish(
                        total.count(),
                        recon.histogram,
                        recon.iterations,
                        recon.converged,
                    );
                }
                Err(e) => {
                    counters.solve_errors.fetch_add(1, Ordering::Relaxed);
                    last_error = Some(e);
                }
            }
        }
        counters.last_cycle_nanos.store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if finish {
            return ResolveSummary { total, last_error };
        }
    }
}
